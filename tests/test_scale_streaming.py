"""Scale regression: streaming mode runs 100k nodes in bounded memory.

Trace mode stores every logical-clock checkpoint for every node, which is
exactly what large networks cannot afford — so the engine *refuses* to
record a trace above a configurable node cap instead of slowly drowning.
Streaming mode (``record_trace=False``) has no cap: the skew fold holds
O(nodes + edges) state and prunes consumed record segments as its
frontier advances.

The 100k-node test is ``slow``-marked (tier-1 excludes it; CI opts in
with ``-m slow``).  Its thresholds are deliberately loose — an
order-of-magnitude guard against O(events) memory or quadratic fold
regressions, not a micro-benchmark: the run allocates ~0.4 GB and ~20 s
locally, and the test asserts < 1.2 GB / < 240 s.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ReproError, SimulationError
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.engine import DEFAULT_TRACE_NODE_CAP, SimulationEngine
from repro.sim.runner import run_execution, run_execution_streaming
from repro.topology.generators import line

pytestmark = pytest.mark.parity

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)


def _models(n: int):
    return TwoGroupDrift(0.05, list(range(n // 2))), ConstantDelay(1.0)


class TestTraceNodeCap:
    def test_trace_mode_refuses_above_cap(self):
        drift, delay = _models(9)
        with pytest.raises(SimulationError, match="trace node cap"):
            run_execution(
                line(9), AoptAlgorithm(PARAMS), drift, delay, 10.0,
                trace_node_cap=8,
            )

    def test_refusal_is_a_repro_error_and_names_the_way_out(self):
        drift, delay = _models(9)
        with pytest.raises(ReproError, match="record_trace=False"):
            SimulationEngine(
                line(9), AoptAlgorithm(PARAMS), drift, delay, 10.0,
                trace_node_cap=8,
            )

    def test_streaming_mode_ignores_the_cap(self):
        drift, delay = _models(12)
        topology = line(12)
        engine = SimulationEngine(
            topology, AoptAlgorithm(PARAMS), drift, delay, 10.0,
            initiators=topology.nodes,
            record_trace=False, trace_node_cap=8,
        )
        result = engine.run_streaming()
        assert result.events_processed > 0
        assert result.global_skew.value >= 0.0

    def test_default_cap_value(self):
        assert DEFAULT_TRACE_NODE_CAP == 50_000

    def test_at_cap_is_allowed(self):
        drift, delay = _models(8)
        trace = run_execution(
            line(8), AoptAlgorithm(PARAMS), drift, delay, 10.0,
            initiators=line(8).nodes, trace_node_cap=8,
        )
        assert trace.events_processed > 0


@pytest.mark.slow
class TestHundredThousandNodes:
    WALL_CEILING_SECONDS = 240.0
    PEAK_ALLOC_CEILING_BYTES = 1_200 * 1024 * 1024

    def test_line_100k_streaming_bounded(self):
        n = 100_000
        topology = line(n)
        drift, delay = _models(n)
        started = time.perf_counter()
        tracemalloc.start()
        try:
            result = run_execution_streaming(
                topology, AoptAlgorithm(PARAMS), drift, delay, 6.0,
                initiators=topology.nodes,
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        wall = time.perf_counter() - started

        assert result.events_processed > 1_000_000
        # Two constant-rate drift groups on a line: the worst skew is the
        # two groups drifting apart at 2ε until the rate rule catches up.
        assert result.global_skew.value > 0.0
        assert result.local_skew.value > 0.0
        assert result.final_spread >= 0.0
        assert wall < self.WALL_CEILING_SECONDS, (
            f"100k-node streaming run took {wall:.1f}s "
            f"(ceiling {self.WALL_CEILING_SECONDS}s)"
        )
        assert peak < self.PEAK_ALLOC_CEILING_BYTES, (
            f"100k-node streaming run peaked at {peak / 1e6:.0f} MB "
            f"allocated (ceiling {self.PEAK_ALLOC_CEILING_BYTES / 1e6:.0f} "
            f"MB) — is the fold or the pruner holding O(events) state?"
        )
