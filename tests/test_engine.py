"""Unit tests for the simulation engine."""

import pytest

from repro.core.interfaces import Algorithm, AlgorithmNode
from repro.errors import SimulationError
from repro.sim.delays import ConstantDelay, FunctionDelay
from repro.sim.drift import ConstantDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line, star


class Recorder(AlgorithmNode):
    """Scripted node used to probe engine behaviour."""

    def __init__(self):
        self.events = []

    def on_start(self, ctx):
        self.events.append(("start", ctx.hardware()))

    def on_message(self, ctx, sender, payload):
        self.events.append(("msg", sender, payload))

    def on_alarm(self, ctx, name):
        self.events.append(("alarm", name, ctx.hardware()))


class ScriptedAlgorithm(Algorithm):
    """Runs a user function inside each callback for white-box tests."""

    allows_jumps = False
    name = "scripted"

    def __init__(self, on_start=None, on_message=None, on_alarm=None):
        self._hooks = (on_start, on_message, on_alarm)
        self.nodes = {}

    def make_node(self, node_id, neighbors):
        on_start, on_message, on_alarm = self._hooks
        outer = self

        class _Node(Recorder):
            def on_start(self, ctx):
                super().on_start(ctx)
                if on_start:
                    on_start(self, ctx)

            def on_message(self, ctx, sender, payload):
                super().on_message(ctx, sender, payload)
                if on_message:
                    on_message(self, ctx, sender, payload)

            def on_alarm(self, ctx, name):
                super().on_alarm(ctx, name)
                if on_alarm:
                    on_alarm(self, ctx, name)

        node = _Node()
        outer.nodes[node_id] = node
        return node


def run(topology, algorithm, horizon=10.0, delay=0.5, **kwargs):
    engine = SimulationEngine(
        topology,
        algorithm,
        ConstantDrift(0.01),
        ConstantDelay(delay),
        horizon,
        **kwargs,
    )
    return engine, engine.run()


class TestInitialization:
    def test_default_initiator_is_first_node(self):
        algo = ScriptedAlgorithm(
            on_start=lambda node, ctx: ctx.send_all(("hello",))
        )
        _, trace = run(line(3), algo)
        assert trace.start_times[0] == 0.0
        assert trace.start_times[1] == pytest.approx(0.5)
        assert trace.start_times[2] == pytest.approx(1.0)

    def test_explicit_initiators(self):
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.send_all(("x",)))
        engine = SimulationEngine(
            line(3), algo, ConstantDrift(0.01), ConstantDelay(0.5), 10.0,
            initiators={2: 1.5},
        )
        trace = engine.run()
        assert trace.start_times[2] == 1.5
        assert trace.start_times[0] == pytest.approx(2.5)

    def test_unstarted_nodes_raise(self):
        algo = ScriptedAlgorithm()  # never sends, so others never start
        with pytest.raises(SimulationError, match="never initialized"):
            run(line(3), algo)

    def test_no_initiators_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine(
                line(2), ScriptedAlgorithm(), ConstantDrift(0.01),
                ConstantDelay(0.1), 10.0, initiators=[],
            )

    def test_message_wakes_then_delivers(self):
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.send_all(("x",)))
        _, _trace = run(line(2), algo)
        woken = algo.nodes[1]
        assert woken.events[0][0] == "start"
        assert woken.events[1][0] == "msg"


class TestMessaging:
    def test_delivery_after_delay(self):
        received_at = []

        def on_message(node, ctx, sender, payload):
            received_at.append(ctx.hardware())

        algo = ScriptedAlgorithm(
            on_start=lambda node, ctx: ctx.send_all(("x",)) if ctx.node_id == 0 else None,
            on_message=on_message,
        )
        run(line(2), algo, delay=0.5)
        # Receiver's hardware started at delivery, so reads 0 at delivery.
        assert received_at[0] == pytest.approx(0.0)

    def test_send_to_non_neighbor_rejected(self):
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.send_to(2, ("x",)))
        with pytest.raises(SimulationError, match="non-neighbor"):
            run(line(3), algo)

    def test_counters(self):
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.send_all(("x",)))
        _, trace = run(star(4), algo)
        assert trace.messages_sent[0] == 3
        # Each leaf starts upon receipt and sends back to the hub.
        assert trace.messages_received[0] == 3
        assert trace.total_messages() == 6

    def test_record_messages(self):
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.send_all(("x",)))
        _, trace = run(line(2), algo, record_messages=True)
        assert len(trace.message_log) == 2
        assert trace.message_log[0].sender == 0
        assert trace.message_log[0].delay == pytest.approx(0.5)

    def test_payload_bits_charged(self):
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.send_all((1.0, 2.0)))
        _, trace = run(line(2), algo)
        assert trace.bits_sent[0] == 128


@pytest.mark.faults
class TestDropAccounting:
    """Exact bookkeeping of messages the delay model refuses to deliver."""

    def test_single_message_drop_counted(self):
        from repro.faults.hashing import stable_uniform
        from repro.sim.delays import LossyDelay

        # The one message sent is (0 -> 1, send_time=0.0, seq=0); pick a
        # loss probability just above its hash value so the drop verdict
        # is deterministic.
        u = stable_uniform(0, "loss", 0, 1, 0.0, 0)
        algo = ScriptedAlgorithm(
            on_start=lambda node, ctx: (
                ctx.send_all(("x",)) if ctx.node_id == 0 else None
            )
        )
        engine = SimulationEngine(
            line(2), algo, ConstantDrift(0.01),
            LossyDelay(ConstantDelay(0.5), loss=min(u * 1.01, 0.999)),
            10.0, initiators={0: 0.0, 1: 0.0},
        )
        trace = engine.run()
        assert trace.messages_dropped == 1
        assert trace.messages_sent[0] == 1  # a dropped send still counts as sent
        assert sum(trace.messages_received.values()) == 0

    def test_sent_equals_delivered_plus_dropped(self):
        from repro.sim.delays import LossyDelay

        def on_message(node, ctx, sender, payload):
            if payload[0] < 20:
                ctx.send_all((payload[0] + 1,))

        algo = ScriptedAlgorithm(
            on_start=lambda node, ctx: ctx.send_all((0,)),
            on_message=on_message,
        )
        engine = SimulationEngine(
            line(3), algo, ConstantDrift(0.01),
            LossyDelay(ConstantDelay(0.3), loss=0.3, seed=7),
            60.0, initiators={0: 0.0, 1: 0.0, 2: 0.0},
        )
        trace = engine.run()
        sent = sum(trace.messages_sent.values())
        delivered = sum(trace.messages_received.values())
        # ConstantDelay inner model: nothing can still be in flight at a
        # horizon this far past the last send, so accounting is exact.
        assert trace.messages_dropped > 0
        assert sent == delivered + trace.messages_dropped


class TestAlarms:
    def test_alarm_fires_at_hardware_value(self):
        fired = []

        def on_start(node, ctx):
            ctx.send_all(("x",))
            ctx.set_alarm("ping", 2.0)

        def on_alarm(node, ctx, name):
            fired.append((ctx.node_id, name, ctx.hardware()))

        algo = ScriptedAlgorithm(on_start=on_start, on_alarm=on_alarm)
        run(line(2), algo)
        assert any(
            name == "ping" and hw == pytest.approx(2.0) for _, name, hw in fired
        )

    def test_rearm_supersedes(self):
        fired = []

        def on_start(node, ctx):
            ctx.send_all(("x",))
            if ctx.node_id == 0:
                ctx.set_alarm("ping", 2.0)
                ctx.set_alarm("ping", 4.0)  # replaces the first

        algo = ScriptedAlgorithm(
            on_start=on_start,
            on_alarm=lambda node, ctx, name: fired.append(ctx.hardware()),
        )
        run(line(2), algo)
        assert len(fired) == 1
        assert fired[0] == pytest.approx(4.0)

    def test_cancel_alarm(self):
        fired = []

        def on_start(node, ctx):
            ctx.send_all(("x",))
            if ctx.node_id == 0:
                ctx.set_alarm("ping", 2.0)
                ctx.cancel_alarm("ping")

        algo = ScriptedAlgorithm(
            on_start=on_start,
            on_alarm=lambda node, ctx, name: fired.append(name),
        )
        run(line(2), algo)
        assert fired == []

    def test_past_alarm_fires_immediately(self):
        fired = []

        def on_message(node, ctx, sender, payload):
            ctx.set_alarm("now", 0.0)  # hardware already past 0 at node 0? no: == 0

        def on_alarm(node, ctx, name):
            fired.append((ctx.node_id, ctx.hardware()))

        algo = ScriptedAlgorithm(
            on_start=lambda node, ctx: ctx.send_all(("x",)),
            on_message=on_message,
            on_alarm=on_alarm,
        )
        run(line(2), algo)
        assert fired  # fired despite target being in the (local) past

    def test_alarm_before_start_rejected(self):
        class Premature(Algorithm):
            allows_jumps = False
            name = "premature"

            def make_node(self, node_id, neighbors):
                return Recorder()

        engine = SimulationEngine(
            line(2), Premature(), ConstantDrift(0.01), ConstantDelay(0.1), 5.0
        )
        with pytest.raises(SimulationError):
            engine._set_alarm(engine._runtimes[1], "x", 1.0)


class TestLogicalClockControl:
    def test_rate_multiplier(self):
        def on_start(node, ctx):
            ctx.send_all(("x",))
            ctx.set_rate_multiplier(2.0)

        algo = ScriptedAlgorithm(on_start=on_start)
        _, trace = run(line(2), algo)
        assert trace.logical[0].value(4.0) == pytest.approx(
            2 * trace.hardware[0].value(4.0)
        )

    def test_invalid_multiplier_rejected(self):
        algo = ScriptedAlgorithm(
            on_start=lambda node, ctx: ctx.set_rate_multiplier(0.0)
        )
        with pytest.raises(SimulationError):
            run(line(2), algo)

    def test_jump_requires_declaration(self):
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.jump_logical(5.0))
        with pytest.raises(SimulationError, match="allows_jumps"):
            run(line(2), algo)

    def test_jump_allowed_when_declared(self):
        def on_start(node, ctx):
            ctx.send_all(("x",))
            if ctx.node_id == 0:
                ctx.jump_logical(5.0)

        algo = ScriptedAlgorithm(on_start=on_start)
        algo.allows_jumps = True
        _, trace = run(line(2), algo)
        assert trace.logical[0].value(0.0) == pytest.approx(5.0)


class TestSafetyLimits:
    def test_engine_single_use(self):
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.send_all(("x",)))
        engine, _ = run(line(2), algo)
        with pytest.raises(SimulationError):
            engine.run()

    def test_max_events_cap(self):
        def on_message(node, ctx, sender, payload):
            ctx.send_all(payload)  # infinite ping-pong

        algo = ScriptedAlgorithm(
            on_start=lambda node, ctx: ctx.send_all(("x",)),
            on_message=on_message,
        )
        engine = SimulationEngine(
            line(2), algo, ConstantDrift(0.01),
            FunctionDelay(lambda *a: 0.0001, max_delay=1.0),
            1000.0, max_events=500,
        )
        with pytest.raises(SimulationError, match="exceeded"):
            engine.run()

    def test_invalid_horizon_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine(
                line(2), ScriptedAlgorithm(), ConstantDrift(0.01),
                ConstantDelay(0.1), 0.0,
            )

    def test_probe_recorded(self):
        def on_start(node, ctx):
            ctx.send_all(("x",))
            ctx.probe("marker", 42)

        algo = ScriptedAlgorithm(on_start=on_start)
        _, trace = run(line(2), algo)
        probes = trace.probes_named("marker")
        assert len(probes) == 2
        assert probes[0].value == 42
