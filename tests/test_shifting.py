"""Tests for the shifting/indistinguishability machinery."""

import pytest

from repro.adversary.shifting import (
    corrected_delay,
    local_time_message_pattern,
    patterns_match,
)
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.clock import HardwareClock
from repro.sim.delays import ConstantDelay
from repro.sim.drift import ConstantDrift
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.runner import run_execution
from repro.topology.generators import line


def clock(segments, start=0.0):
    return HardwareClock(PiecewiseConstantRate.from_segments(segments), start)


class TestCorrectedDelay:
    def test_identity_when_unshifted(self):
        reference = clock([(0.0, 1.0)])
        assert corrected_delay(
            5.0, 0.7, reference, reference, reference, reference
        ) == pytest.approx(0.7)

    def test_shifted_receiver_absorbs_delay(self):
        """If the receiver is ahead, the actual delay shrinks."""
        reference = clock([(0.0, 1.0)])
        shifted_receiver = clock([(0.0, 1.1)])  # 10% ahead
        value = corrected_delay(
            10.0, 1.0, reference, reference, reference, shifted_receiver
        )
        # Reference delivery at local time 11; shifted receiver reads 11 at
        # real time 10: delay 0.
        assert value == pytest.approx(0.0)

    def test_shifted_sender_extends_delay(self):
        """If the sender is ahead, the actual delay grows."""
        reference = clock([(0.0, 1.0)])
        shifted_sender = clock([(0.0, 1.1)])
        value = corrected_delay(
            10.0, 0.0, reference, reference, shifted_sender, reference
        )
        # Sender-local send time 11 -> reference send at t=11, delivery at
        # receiver local 11 -> actual delivery at t=11: delay 1.
        assert value == pytest.approx(1.0)


class TestPatternExtraction:
    def test_pattern_in_local_coordinates(self, params):
        trace = run_execution(
            line(2),
            AoptAlgorithm(params),
            ConstantDrift(params.epsilon, rate=1 - params.epsilon),
            ConstantDelay(0.5, max_delay=params.delay_bound),
            30.0,
            record_messages=True,
        )
        pattern = local_time_message_pattern(trace)
        assert pattern
        sender, receiver, send_local, deliver_local, payload = pattern[0]
        message = trace.message_log[0]
        assert sender == message.sender
        assert send_local == pytest.approx(
            trace.hardware[message.sender].value(message.send_time)
        )

    def test_identical_runs_match(self, params):
        def one_run():
            return run_execution(
                line(3),
                AoptAlgorithm(params),
                ConstantDrift(params.epsilon),
                ConstantDelay(0.5, max_delay=params.delay_bound),
                40.0,
                record_messages=True,
            )

        ok, detail = patterns_match(one_run(), one_run())
        assert ok, detail

    def test_different_delays_mismatch(self, params):
        def run_with_delay(delay):
            return run_execution(
                line(3),
                AoptAlgorithm(params),
                ConstantDrift(params.epsilon),
                ConstantDelay(delay, max_delay=params.delay_bound),
                40.0,
                record_messages=True,
            )

        ok, _detail = patterns_match(run_with_delay(0.2), run_with_delay(0.8))
        assert not ok

    def test_rate_scaling_is_indistinguishable(self, params):
        """The classic shift: scaling all rates and delays together is
        invisible (the basis of Theorem 7.2's E1 vs E2)."""
        slow = run_execution(
            line(3),
            AoptAlgorithm(params),
            ConstantDrift(params.epsilon, rate=1 - params.epsilon),
            ConstantDelay(0.5, max_delay=params.delay_bound),
            60.0,
            record_messages=True,
        )
        factor = (1 - params.epsilon) / (1 + params.epsilon)
        fast = run_execution(
            line(3),
            AoptAlgorithm(params),
            ConstantDrift(params.epsilon, rate=1 + params.epsilon),
            ConstantDelay(0.5 * factor, max_delay=params.delay_bound),
            60.0,
            record_messages=True,
        )
        ok, detail = patterns_match(fast, slow, allow_prefix=True)
        assert ok, detail
