"""Fault-tolerance suite: backends, retries, leases, manifests, caching.

Covers the campaign-execution stack from the bottom up:

* :class:`~repro.exec.retry.RetryPolicy` — bounded attempts,
  deterministic digest-keyed backoff jitter, SIGALRM timeouts, budget
  pre-charging (``attempts_used``) and the ``on_attempt`` persistence
  hook;
* :class:`~repro.exec.manifest.CampaignManifest` — canonical JSON
  round-trips, atomic saves, version refusal, monotone attempt counts;
* :class:`~repro.exec.backend.WorkQueue` — create-exclusive lease
  claims, stale-lease reclamation against the filesystem clock, corrupt
  spec entries;
* backend equivalence — serial, process-pool, and work-queue executions
  of the same specs are byte-identical (pickled summaries compared
  exactly);
* crash recovery — a chaos-killed campaign resumes from its manifest to
  the byte-identical result, and a failing spec escalates to quarantine
  exactly once its retry budget is spent;
* :class:`~repro.exec.cache.ResultCache` corruption quarantine and the
  pool's hard-terminate-on-interrupt guarantee.

The multi-process cases here use small spec batches so the whole module
stays in tier-1; the large-campaign chaos acceptance lives in
``tests/test_backend_chaos.py`` (marked ``slow``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ConfigurationError
from repro.exec import ExecutionSpec, SweepExecutor
from repro.exec.backend import (
    ChaosConfig,
    SerialBackend,
    WorkQueue,
    WorkQueueBackend,
    drain_queue,
    filesystem_now,
    resolve_backend,
)
from repro.exec.cache import ResultCache
from repro.exec.manifest import MANIFEST_VERSION, CampaignManifest, ManifestEntry
from repro.exec.retry import RetryPolicy, run_with_retry
from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.drift import TwoGroupDrift
from repro.topology.generators import line

pytestmark = pytest.mark.backend

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
HORIZON = 20.0


def _specs(count: int, horizon: float = HORIZON):
    return [
        ExecutionSpec(
            line(4), AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0, 1]), ConstantDelay(1.0),
            horizon, seed=i, label=f"s{i}",
        )
        for i in range(count)
    ]


class AlwaysFailingDelay(DelayModel):
    """Raises on every message — a permanently poisonous spec.

    Module-level so it pickles into fork/spawn workers.
    """

    def __init__(self):
        super().__init__(1.0)

    def delay(self, sender, receiver, send_time, seq) -> float:
        raise RuntimeError("injected permanent failure")


def _failing_spec(seed: int = 0):
    return ExecutionSpec(
        line(4), AoptAlgorithm(PARAMS),
        TwoGroupDrift(0.05, [0, 1]), AlwaysFailingDelay(),
        HORIZON, seed=seed, label=f"poison{seed}",
    )


class _StubSpec:
    """Just enough spec surface for run_with_retry with a custom runner."""

    label = "stub"

    def __init__(self, digest: str = "ab" * 32):
        self._digest = digest

    def digest(self) -> str:
        return self._digest


def _assert_byte_identical(serial, other):
    assert len(serial) == len(other)
    for s, o in zip(serial, other):
        assert s.index == o.index
        assert s.error == o.error
        assert pickle.dumps(s.summary) == pickle.dumps(o.summary), (
            f"summary mismatch for {s.spec.label}"
        )


# ---------------------------------------------------------------------------
# RetryPolicy / run_with_retry
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.1,
                             backoff_factor=2.0, backoff_max=1.0, jitter=0.5)
        digest = "c3" * 32
        for attempt in (1, 2, 3):
            first = policy.backoff_seconds(digest, attempt)
            assert first == policy.backoff_seconds(digest, attempt)
            base = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            assert base * 0.5 <= first <= base

    def test_backoff_decorrelates_across_digests(self):
        policy = RetryPolicy(jitter=0.5)
        a = policy.backoff_seconds("aa" * 32, 1)
        b = policy.backoff_seconds("bb" * 32, 1)
        assert a != b

    def test_jitter_zero_is_pure_exponential(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0,
                             backoff_max=5.0, jitter=0.0)
        assert policy.backoff_seconds("ab" * 32, 3) == 0.05 * 4

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_retry_recovers_from_transient_failures(self):
        calls = []
        waits = []

        def runner(spec):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return 42

        outcome = run_with_retry(
            _StubSpec(), RetryPolicy(max_retries=3),
            runner=runner, sleep=waits.append,
        )
        assert outcome.ok
        assert outcome.result == 42
        assert outcome.attempts == 3
        assert len(waits) == 2  # slept between the failed attempts only

    def test_budget_exhaustion_reports_attempt_count(self):
        def runner(spec):
            raise RuntimeError("always")

        outcome = run_with_retry(
            _StubSpec(), RetryPolicy(max_retries=2),
            runner=runner, sleep=lambda s: None,
        )
        assert not outcome.ok
        assert outcome.attempts == 3
        assert "(after 3 attempts)" in outcome.error

    def test_single_attempt_failure_keeps_bare_error(self):
        def runner(spec):
            raise RuntimeError("boom")

        outcome = run_with_retry(_StubSpec(), RetryPolicy(max_retries=0),
                                 runner=runner)
        assert outcome.error == "RuntimeError: boom"

    def test_precharged_budget_is_honored(self):
        calls = []

        def runner(spec):
            calls.append(1)
            return 1

        policy = RetryPolicy(max_retries=1)  # 2 attempts total
        outcome = run_with_retry(
            _StubSpec(), policy, runner=runner, attempts_used=2,
        )
        assert not outcome.ok
        assert "retry budget exhausted" in outcome.error
        assert not calls  # never even ran

    def test_on_attempt_fires_before_each_attempt(self):
        seen = []

        def runner(spec):
            # The hook must have persisted the current attempt already.
            assert len(seen) >= 1
            if len(seen) < 2:
                raise RuntimeError("transient")
            return "ok"

        outcome = run_with_retry(
            _StubSpec(), RetryPolicy(max_retries=2),
            runner=runner, on_attempt=seen.append, sleep=lambda s: None,
        )
        assert outcome.ok
        assert seen == [1, 2]

    def test_timeout_kills_runaway_attempt(self):
        def runner(spec):
            time.sleep(10.0)
            return "unreachable"

        outcome = run_with_retry(
            _StubSpec(), RetryPolicy(max_retries=0, timeout=0.2),
            runner=runner,
        )
        assert not outcome.ok
        assert outcome.timeouts == 1
        assert "SpecTimeoutError" in outcome.error


# ---------------------------------------------------------------------------
# CampaignManifest
# ---------------------------------------------------------------------------


class TestCampaignManifest:
    def test_round_trip(self, tmp_path):
        specs = _specs(3)
        path = tmp_path / "campaign.json"
        manifest = CampaignManifest.for_specs(
            specs, meta={"command": "test"}, path=path
        )
        manifest.mark(specs[0].digest(), "done", attempts=1)
        manifest.mark(specs[1].digest(), "quarantined", attempts=3)
        manifest.save()

        loaded = CampaignManifest.load(path)
        assert loaded.digests() == [spec.digest() for spec in specs]
        assert loaded.state(specs[0].digest()) == "done"
        assert loaded.state(specs[1].digest()) == "quarantined"
        assert loaded.state(specs[2].digest()) == "pending"
        assert loaded.attempts(specs[1].digest()) == 3
        assert loaded.meta == {"command": "test"}
        assert loaded.unfinished() == [specs[2].digest()]
        assert not loaded.complete
        assert loaded.counts() == {
            "pending": 1, "leased": 0, "done": 1, "quarantined": 1,
        }

    def test_canonical_json_is_stable(self, tmp_path):
        specs = _specs(2)
        manifest = CampaignManifest.for_specs(specs, meta={"k": 1})
        text = manifest.to_json()
        assert text == manifest.to_json()
        payload = json.loads(text)
        assert payload["manifest"] == "repro-campaign"
        assert payload["version"] == MANIFEST_VERSION
        # No wall-clock contamination: the manifest is a pure function of
        # campaign progress.
        assert "time" not in text and "date" not in text

    def test_save_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        manifest = CampaignManifest.for_specs(
            _specs(2), path=tmp_path / "m.json"
        )
        manifest.save()
        leftovers = [p for p in os.listdir(tmp_path) if p != "m.json"]
        assert leftovers == []

    def test_load_rejects_version_mismatch(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = CampaignManifest.for_specs(_specs(1), path=path)
        manifest.save()
        payload = json.loads(path.read_text())

        payload["version"] = MANIFEST_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="version"):
            CampaignManifest.load(path)

        payload["version"] = MANIFEST_VERSION
        payload["cache_version"] = -1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="cache/digest"):
            CampaignManifest.load(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("not json at all {")
        with pytest.raises(ConfigurationError):
            CampaignManifest.load(path)
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ConfigurationError, match="not a repro campaign"):
            CampaignManifest.load(path)

    def test_unknown_state_rejected(self):
        manifest = CampaignManifest([ManifestEntry(digest="d")])
        with pytest.raises(ConfigurationError):
            manifest.mark("d", "exploded")

    def test_attempts_are_monotone(self):
        manifest = CampaignManifest()
        manifest.mark("d", "leased", attempts=3)
        manifest.mark("d", "pending", attempts=1)  # late, stale report
        assert manifest.attempts("d") == 3


# ---------------------------------------------------------------------------
# WorkQueue lease protocol
# ---------------------------------------------------------------------------


class TestWorkQueueLeases:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.ensure()
        assert queue.try_claim("k", "a", ttl=60.0)
        assert not queue.try_claim("k", "b", ttl=60.0)
        queue.release("k")
        assert queue.try_claim("k", "b", ttl=60.0)

    def test_stale_lease_is_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.ensure()
        assert queue.try_claim("k", "dead-worker", ttl=1.0)
        lease = queue.lease_path("k")
        # Backdate the lease far past the TTL, as if its heartbeat died.
        past = os.stat(lease).st_mtime - 3600.0
        os.utime(lease, (past, past))
        assert queue.try_claim("k", "survivor", ttl=1.0)
        assert queue.reclaim_count() == 1

    def test_fresh_lease_is_not_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.ensure()
        assert queue.try_claim("k", "alive", ttl=60.0)
        assert not queue.try_claim("k", "thief", ttl=60.0)
        assert queue.reclaim_count() == 0

    def test_filesystem_clock_agrees_with_lease_mtimes(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.ensure()
        queue.try_claim("k", "w", ttl=60.0)
        drift = filesystem_now(tmp_path) - os.stat(queue.lease_path("k")).st_mtime
        assert abs(drift) < 30.0  # same clock, modulo test wall time

    def test_spec_round_trip_and_corruption(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.ensure()
        spec = _specs(1)[0]
        queue.enqueue("key1", spec)
        assert queue.keys() == ["key1"]
        loaded = queue.load_spec("key1")
        assert loaded.digest() == spec.digest()
        # Truncate the entry: load_spec degrades to None, never raises.
        with open(queue.spec_path("key1"), "wb") as handle:
            handle.write(b"\x80")
        assert queue.load_spec("key1") is None

    def test_attempt_counter_round_trip(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.ensure()
        assert queue.read_attempts("k") == 0
        queue.write_attempts("k", 2)
        assert queue.read_attempts("k") == 2

    def test_result_records_validate_their_key(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.ensure()
        queue.write_result("k", {"summary": None, "error": "x"})
        assert queue.read_result("k")["error"] == "x"
        # A record copied under the wrong key is rejected.
        os.replace(queue.result_path("k"), queue.result_path("other"))
        assert queue.read_result("other") is None


# ---------------------------------------------------------------------------
# Backend equivalence & resolution
# ---------------------------------------------------------------------------


class TestBackendEquivalence:
    def test_serial_pool_and_work_queue_byte_identical(self, tmp_path):
        specs = _specs(4)
        serial = SweepExecutor(workers=1, backend="serial").run(specs)
        pooled = SweepExecutor(workers=2).run(specs)
        queued = SweepExecutor(
            workers=2,
            backend=WorkQueueBackend(tmp_path / "q", lease_ttl=10.0),
        ).run(specs)
        _assert_byte_identical(serial, pooled)
        _assert_byte_identical(serial, queued)

    def test_drain_queue_standalone_worker(self, tmp_path):
        # Any process sharing the filesystem can drain the queue directly
        # (the multi-host path, exercised here in-process).
        specs = _specs(2)
        queue = WorkQueue(tmp_path / "q")
        queue.ensure()
        for spec in specs:
            queue.enqueue(spec.digest(), spec)
        stats = drain_queue(tmp_path / "q", lease_ttl=10.0)
        assert stats == {"claimed": 2, "completed": 2}
        for spec in specs:
            record = queue.read_result(spec.digest())
            assert record["error"] is None
            assert record["summary"] is not None

    def test_resolve_backend_names(self, tmp_path):
        assert resolve_backend(None).name == "process-pool"
        assert resolve_backend("auto").name == "process-pool"
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("work-queue", queue_dir=tmp_path).name == (
            "work-queue"
        )
        backend = SerialBackend()
        assert resolve_backend(backend) is backend
        with pytest.raises(ConfigurationError, match="queue directory"):
            resolve_backend("work-queue")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend("carrier-pigeon")


# ---------------------------------------------------------------------------
# Crash recovery: chaos kill + manifest resume (small-scale)
# ---------------------------------------------------------------------------


class TestWorkQueueRecovery:
    def test_killed_campaign_resumes_byte_identical(self, tmp_path):
        specs = _specs(6)
        serial = SweepExecutor(workers=1, backend="serial").run(specs)
        manifest = CampaignManifest.for_specs(
            specs, path=tmp_path / "m.json"
        )
        retry = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)

        # Every worker SIGKILLs itself after its second claim, with no
        # respawns: the campaign is left deliberately incomplete.
        chaos = ChaosConfig(kill_fraction=1.0, kill_after=1, respawn=False)
        interrupted = SweepExecutor(
            workers=2, retry=retry,
            backend=WorkQueueBackend(
                tmp_path / "q", lease_ttl=1.0, chaos=chaos
            ),
        ).run(specs, manifest=manifest)
        assert len(interrupted) < len(specs)
        assert not manifest.complete

        resumed = SweepExecutor(
            workers=2, retry=retry,
            backend=WorkQueueBackend(tmp_path / "q", lease_ttl=1.0),
        ).run(specs, manifest=CampaignManifest.load(tmp_path / "m.json"))
        _assert_byte_identical(serial, resumed)

        final = CampaignManifest.load(tmp_path / "m.json")
        assert final.complete
        assert final.counts()["done"] == len(specs)
        for digest in final.digests():
            assert final.attempts(digest) <= retry.attempts_allowed

    def test_chaos_with_respawn_converges(self, tmp_path):
        specs = _specs(4)
        serial = SweepExecutor(workers=1, backend="serial").run(specs)
        chaos = ChaosConfig(kill_fraction=1.0, kill_after=0, respawn=True)
        executor = SweepExecutor(
            workers=2, retry=RetryPolicy(max_retries=3, backoff_base=0.0),
            backend=WorkQueueBackend(
                tmp_path / "q", lease_ttl=1.0, chaos=chaos
            ),
        )
        outcomes = executor.run(specs)
        _assert_byte_identical(serial, outcomes)
        # The killed workers' leases were reclaimed, and the metrics saw it.
        assert executor.last_metrics.lease_reclaims >= 1

    def test_quarantine_escalation_after_budget(self, tmp_path):
        spec = _failing_spec()
        manifest = CampaignManifest.for_specs(
            [spec], path=tmp_path / "m.json"
        )
        retry = RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0)
        executor = SweepExecutor(workers=1, backend="serial", retry=retry)
        outcomes = executor.run([spec], manifest=manifest)
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert manifest.state(spec.digest()) == "quarantined"

        # A resumed campaign refuses to re-run the quarantined spec.
        loaded = CampaignManifest.load(tmp_path / "m.json")
        calls = executor.last_metrics.executed
        outcomes = executor.run([spec], manifest=loaded)
        assert not outcomes[0].ok
        assert "quarantined by campaign manifest" in outcomes[0].error
        assert executor.last_metrics.executed == 0
        assert calls == 1

    def test_interrupted_certify_reports_incomplete(self, tmp_path):
        # An interrupted certification campaign must refuse to certify:
        # unchecked scenarios are unfinished work, not passing checks.
        from repro.cert import certify

        retry = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
        chaos = ChaosConfig(kill_fraction=1.0, kill_after=0, respawn=False)
        interrupted = certify(
            theorems=["thm-5.5-global-skew"],
            budget=4,
            seed=0,
            shrink=False,
            manifest_path=str(tmp_path / "m.json"),
            executor=SweepExecutor(
                workers=2, retry=retry,
                backend=WorkQueueBackend(
                    tmp_path / "q", lease_ttl=1.0, chaos=chaos
                ),
            ),
        )
        assert interrupted.unfinished > 0
        assert not interrupted.complete
        assert "RESULT: INCOMPLETE" in interrupted.format_text()
        assert interrupted.as_dict()["unfinished"] == interrupted.unfinished

        resumed = certify(
            theorems=["thm-5.5-global-skew"],
            budget=4,
            seed=0,
            shrink=False,
            manifest_path=str(tmp_path / "m.json"),
            resume=True,
            executor=SweepExecutor(
                workers=2, retry=retry,
                backend=WorkQueueBackend(tmp_path / "q", lease_ttl=1.0),
            ),
        )
        assert resumed.complete
        assert resumed.unfinished == 0
        assert resumed.scenarios_run == 4
        assert "RESULT: CERTIFIED" in resumed.format_text()

    def test_metrics_count_attempts_and_retries(self):
        specs = _specs(2) + [_failing_spec()]
        retry = RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0)
        executor = SweepExecutor(workers=1, backend="serial", retry=retry)
        outcomes = executor.run(specs)
        metrics = executor.last_metrics
        assert len(outcomes) == 3
        assert metrics.attempts == 4  # 1 + 1 + 2 (poison retried once)
        assert metrics.retries == 1
        assert metrics.failed == 1
        assert metrics.unfinished == 0


# ---------------------------------------------------------------------------
# ResultCache corruption quarantine (satellite)
# ---------------------------------------------------------------------------


class TestCacheCorruptionQuarantine:
    def _summary(self):
        spec = _specs(1, horizon=5.0)[0]
        return spec.digest(), spec.run_summary()

    def test_truncated_entry_quarantined_not_reread(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest, summary = self._summary()
        cache.put(digest, summary)
        path = cache.path_for(digest)

        # Truncate the entry mid-pickle, as a crashed host would.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])

        assert cache.get(digest) is None
        assert cache.corrupt == 1
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists()  # kept for post-mortem
        assert not path.exists()  # poisoned bytes never re-read

        # The next lookup is a clean miss, and a re-put heals the entry.
        assert cache.get(digest) is None
        assert cache.misses == 1
        assert cache.corrupt == 1
        cache.put(digest, summary)
        assert pickle.dumps(cache.get(digest)) == pickle.dumps(summary)

    def test_mismatched_digest_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest, summary = self._summary()
        cache.put(digest, summary)
        # Copy the valid entry under a different digest: content/key
        # mismatch must quarantine, not serve.
        other = "0" * len(digest)
        target = cache.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(cache.path_for(digest).read_bytes())
        assert cache.get(other) is None
        assert cache.corrupt == 1
        assert target.with_name(target.name + ".corrupt").exists()

    def test_put_survives_interruption_without_partial_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest, summary = self._summary()

        real_replace = os.replace

        def exploding_replace(src, dst, **kw):
            raise KeyboardInterrupt()

        os.replace = exploding_replace
        try:
            with pytest.raises(KeyboardInterrupt):
                cache.put(digest, summary)
        finally:
            os.replace = real_replace
        # Neither a visible entry nor a leaked temp file.
        assert cache.get(digest) is None
        assert cache.orphan_tmp_files() == []


# ---------------------------------------------------------------------------
# Pool interrupt hygiene (satellite)
# ---------------------------------------------------------------------------


class TestPoolInterrupt:
    def test_keyboard_interrupt_hard_terminates_pool(self, monkeypatch):
        specs = _specs(4)
        executor = SweepExecutor(workers=2)

        real_submit = ProcessPoolExecutor.submit
        submitted = []

        def interrupting_submit(pool, fn, *args, **kwargs):
            if submitted:
                raise KeyboardInterrupt()
            submitted.append(1)
            return real_submit(pool, fn, *args, **kwargs)

        terminated = []
        real_terminate = SweepExecutor._terminate_pool

        def spying_terminate(pool):
            terminated.append(pool)
            real_terminate(pool)

        monkeypatch.setattr(ProcessPoolExecutor, "submit", interrupting_submit)
        monkeypatch.setattr(
            SweepExecutor, "_terminate_pool", staticmethod(spying_terminate)
        )

        with pytest.raises(KeyboardInterrupt):
            executor.run(specs)

        assert terminated, "interrupt must hard-terminate the pool"
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and multiprocessing.active_children():
            time.sleep(0.05)
        assert not multiprocessing.active_children(), (
            "worker processes must not outlive an interrupted sweep"
        )
