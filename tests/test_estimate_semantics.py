"""Unit tests of Algorithm 2's estimate-update semantics (lines 5-7).

A fresher message may *lower* the extrapolated estimate L_v^w (fresh
information is more accurate), while the raw guard ℓ_v^w rejects stale
out-of-order values.  Tested at the node level with a scripted context.
"""

import pytest

from repro.core.interfaces import NodeContext
from repro.core.node import AoptNode
from repro.core.params import SyncParams


class ScriptedContext(NodeContext):
    """Minimal driveable context for node-level unit tests."""

    def __init__(self, node_id=0, neighbors=(1,)):
        self.node_id = node_id
        self.neighbors = tuple(neighbors)
        self.hw = 0.0
        self.lg = 0.0
        self.rho = 1.0
        self.sent = []
        self.alarms = {}

    def hardware(self):
        return self.hw

    def logical(self):
        return self.lg

    def set_rate_multiplier(self, rho):
        self.rho = rho

    def rate_multiplier(self):
        return self.rho

    def jump_logical(self, value):
        self.lg = value

    def send_to(self, neighbor, payload):
        self.sent.append((neighbor, payload))

    def send_all(self, payload):
        self.sent.append(("all", payload))

    def set_alarm(self, name, hardware_value):
        self.alarms[name] = hardware_value

    def cancel_alarm(self, name):
        self.alarms.pop(name, None)

    def probe(self, name, value):
        pass

    def advance(self, dt_hw, logical_rate=None):
        self.hw += dt_hw
        self.lg += dt_hw * (logical_rate if logical_rate is not None else self.rho)


@pytest.fixture
def node(params):
    n = AoptNode(0, (1,), params)
    ctx = ScriptedContext()
    n.on_start(ctx)
    return n, ctx


class TestEstimateUpdates:
    def test_fresh_larger_value_adopted(self, node):
        n, ctx = node
        n.on_message(ctx, 1, (5.0, 0.0))
        assert n.estimate_of(1, ctx.hw) == pytest.approx(5.0)

    def test_estimate_extrapolates_at_hardware_rate(self, node):
        n, ctx = node
        n.on_message(ctx, 1, (5.0, 0.0))
        ctx.advance(3.0)
        assert n.estimate_of(1, ctx.hw) == pytest.approx(8.0)

    def test_fresher_message_can_lower_estimate(self, node):
        """The extrapolation overshot a slow neighbor; fresh info corrects
        the estimate downward (§4.2: 'more recent and thus more accurate')."""
        n, ctx = node
        n.on_message(ctx, 1, (5.0, 0.0))
        ctx.advance(4.0)  # extrapolated estimate now 9.0
        n.on_message(ctx, 1, (6.5, 0.0))  # neighbor actually ran slow
        assert n.estimate_of(1, ctx.hw) == pytest.approx(6.5)

    def test_stale_out_of_order_value_rejected(self, node):
        """ℓ_v^w guards against reordered old messages: a value at or
        below the largest *received* one never updates the estimate."""
        n, ctx = node
        n.on_message(ctx, 1, (5.0, 0.0))
        ctx.advance(1.0)
        n.on_message(ctx, 1, (4.0, 0.0))  # stale: below ℓ = 5.0
        assert n.estimate_of(1, ctx.hw) == pytest.approx(6.0)  # 5.0 + 1.0

    def test_raw_guard_is_strict(self, node):
        n, ctx = node
        n.on_message(ctx, 1, (5.0, 0.0))
        ctx.advance(1.0)
        n.on_message(ctx, 1, (5.0, 0.0))  # duplicate: not strictly larger
        assert n.estimate_of(1, ctx.hw) == pytest.approx(6.0)


class TestMarkBookkeeping:
    def test_adopting_lmax_moves_next_mark(self, node, params):
        n, ctx = node
        mark = 3 * params.h0
        n.on_message(ctx, 1, (0.5, mark))
        assert n._next_mark == pytest.approx(mark + params.h0)
        # The adoption triggered an immediate forward.
        assert any(payload[1] == mark for _, payload in ctx.sent)

    def test_send_alarm_targets_mark_gap(self, node, params):
        n, ctx = node
        mark = 2 * params.h0
        n.on_message(ctx, 1, (0.5, mark))
        from repro.core.node import SEND_ALARM

        gap = n._next_mark - n.l_max(ctx.hw)
        assert ctx.alarms[SEND_ALARM] == pytest.approx(ctx.hw + gap)

    def test_smaller_lmax_not_adopted(self, node, params):
        n, ctx = node
        n.on_message(ctx, 1, (0.5, 3 * params.h0))
        before = n.l_max(ctx.hw)
        n.on_message(ctx, 1, (0.6, params.h0))
        assert n.l_max(ctx.hw) == pytest.approx(before)
