"""Unit tests for drift models."""

import pytest

from repro.errors import ScheduleError
from repro.sim.drift import (
    AlternatingDrift,
    ConstantDrift,
    ExplicitDrift,
    PerNodeDrift,
    RandomWalkDrift,
    TwoGroupDrift,
)
from repro.sim.rates import PiecewiseConstantRate


class TestConstantDrift:
    def test_default_rate_one(self):
        model = ConstantDrift(0.05)
        assert model.rate_function("any", 100.0).rate_at(50.0) == 1.0

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ScheduleError):
            ConstantDrift(1.0)
        with pytest.raises(ScheduleError):
            ConstantDrift(-0.1)

    def test_validation_rejects_out_of_bounds_rate(self):
        model = ConstantDrift(0.05, rate=1.2)
        with pytest.raises(ScheduleError):
            model.validated_rate_function("any", 100.0)


class TestPerNodeDrift:
    def test_mapping_and_default(self):
        model = PerNodeDrift(0.1, {"a": 1.1}, default=0.95)
        assert model.rate_function("a", 10.0).rate_at(0.0) == 1.1
        assert model.rate_function("b", 10.0).rate_at(0.0) == 0.95


class TestTwoGroupDrift:
    def test_groups(self):
        model = TwoGroupDrift(0.05, fast_nodes=["a", "b"])
        assert model.rate_function("a", 10.0).rate_at(0.0) == 1.05
        assert model.rate_function("c", 10.0).rate_at(0.0) == 0.95


class TestAlternatingDrift:
    def test_antiphase(self):
        model = AlternatingDrift(0.1, period=2.0, phases={"even": 0, "odd": 1})
        even = model.rate_function("even", 10.0)
        odd = model.rate_function("odd", 10.0)
        assert even.rate_at(0.5) == 1.1
        assert odd.rate_at(0.5) == 0.9
        assert even.rate_at(2.5) == 0.9
        assert odd.rate_at(2.5) == 1.1

    def test_invalid_period_rejected(self):
        with pytest.raises(ScheduleError):
            AlternatingDrift(0.1, period=-1.0)

    def test_within_bounds(self):
        model = AlternatingDrift(0.07, period=1.0)
        model.validated_rate_function("n", 50.0)


class TestRandomWalkDrift:
    def test_deterministic_per_node_and_seed(self):
        a = RandomWalkDrift(0.1, step_period=1.0, step_size=0.02, seed=3)
        b = RandomWalkDrift(0.1, step_period=1.0, step_size=0.02, seed=3)
        assert (
            a.rate_function("n1", 20.0).segments
            == b.rate_function("n1", 20.0).segments
        )

    def test_different_nodes_differ(self):
        model = RandomWalkDrift(0.1, step_period=1.0, step_size=0.02, seed=3)
        assert (
            model.rate_function("n1", 20.0).segments
            != model.rate_function("n2", 20.0).segments
        )

    def test_stays_within_bounds(self):
        model = RandomWalkDrift(0.05, step_period=0.5, step_size=0.5, seed=9)
        model.validated_rate_function("n", 100.0)

    def test_invalid_step_period_rejected(self):
        with pytest.raises(ScheduleError):
            RandomWalkDrift(0.1, step_period=0.0, step_size=0.1)


class TestExplicitDrift:
    def test_explicit_and_default(self):
        schedule = PiecewiseConstantRate([0.0, 5.0], [1.05, 0.95])
        model = ExplicitDrift(0.05, {"a": schedule})
        assert model.rate_function("a", 10.0).rate_at(6.0) == 0.95
        assert model.rate_function("b", 10.0).rate_at(6.0) == 1.0
