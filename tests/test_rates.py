"""Unit tests for piecewise-constant rate functions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.sim.rates import PiecewiseConstantRate, alternating_rate, constant_rate


class TestConstruction:
    def test_empty_segments_rejected(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate([0.0, 1.0], [1.0])

    def test_unsorted_times_rejected(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate([0.0, 2.0, 1.0], [1.0, 1.0, 1.0])

    def test_duplicate_times_rejected(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate([0.0, 1.0, 1.0], [1.0, 1.0, 1.0])

    def test_non_finite_rate_rejected(self):
        with pytest.raises(ScheduleError):
            PiecewiseConstantRate([0.0], [math.inf])

    def test_constant_constructor(self):
        rate = PiecewiseConstantRate.constant(1.5)
        assert rate.rate_at(0.0) == 1.5
        assert rate.rate_at(1000.0) == 1.5

    def test_from_segments(self):
        rate = PiecewiseConstantRate.from_segments([(0.0, 1.0), (5.0, 2.0)])
        assert rate.segments == [(0.0, 1.0), (5.0, 2.0)]

    def test_constant_rate_helper(self):
        assert constant_rate(0.9).rate_at(3.0) == 0.9


class TestQueries:
    def test_rate_at_segment_boundaries(self):
        rate = PiecewiseConstantRate([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert rate.rate_at(0.0) == 1.0
        assert rate.rate_at(0.999) == 1.0
        assert rate.rate_at(1.0) == 2.0  # right-continuous
        assert rate.rate_at(2.0) == 3.0
        assert rate.rate_at(100.0) == 3.0  # last rate extends

    def test_rate_before_domain_rejected(self):
        rate = PiecewiseConstantRate([1.0], [1.0])
        with pytest.raises(ScheduleError):
            rate.rate_at(0.5)

    def test_min_max_rate(self):
        rate = PiecewiseConstantRate([0.0, 1.0], [0.9, 1.1])
        assert rate.min_rate() == 0.9
        assert rate.max_rate() == 1.1

    def test_domain_start(self):
        assert PiecewiseConstantRate([3.0], [1.0]).domain_start == 3.0


class TestIntegration:
    def test_integral_single_segment(self):
        rate = PiecewiseConstantRate.constant(2.0)
        assert rate.integral(0.0, 3.0) == pytest.approx(6.0)

    def test_integral_across_segments(self):
        rate = PiecewiseConstantRate([0.0, 1.0, 2.0], [1.0, 2.0, 0.5])
        # 1*1 + 2*1 + 0.5*2 = 4.0 over [0, 4]
        assert rate.integral(0.0, 4.0) == pytest.approx(4.0)

    def test_integral_partial_segments(self):
        rate = PiecewiseConstantRate([0.0, 1.0], [1.0, 3.0])
        assert rate.integral(0.5, 1.5) == pytest.approx(0.5 + 1.5)

    def test_integral_zero_width(self):
        rate = PiecewiseConstantRate([0.0, 1.0], [1.0, 3.0])
        assert rate.integral(1.0, 1.0) == 0.0

    def test_integral_reversed_bounds_rejected(self):
        rate = PiecewiseConstantRate.constant(1.0)
        with pytest.raises(ScheduleError):
            rate.integral(2.0, 1.0)


class TestAdvance:
    def test_advance_simple(self):
        rate = PiecewiseConstantRate.constant(2.0)
        assert rate.advance(1.0, 4.0) == pytest.approx(3.0)

    def test_advance_zero(self):
        rate = PiecewiseConstantRate.constant(2.0)
        assert rate.advance(5.0, 0.0) == 5.0

    def test_advance_negative_rejected(self):
        rate = PiecewiseConstantRate.constant(1.0)
        with pytest.raises(ScheduleError):
            rate.advance(0.0, -1.0)

    def test_advance_across_segments(self):
        rate = PiecewiseConstantRate([0.0, 2.0], [1.0, 4.0])
        # From t=1: 1 unit at rate 1 until t=2, then 4 units at rate 4.
        assert rate.advance(1.0, 5.0) == pytest.approx(3.0)

    def test_advance_through_zero_rate_rejected(self):
        rate = PiecewiseConstantRate([0.0, 1.0], [1.0, 0.0])
        with pytest.raises(ScheduleError):
            rate.advance(0.0, 2.0)

    @given(
        rates=st.lists(st.floats(0.5, 2.0), min_size=1, max_size=6),
        t0=st.floats(0.0, 5.0),
        amount=st.floats(0.0, 50.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_advance_inverts_integral(self, rates, t0, amount):
        times = [float(i) for i in range(len(rates))]
        rate = PiecewiseConstantRate(times, rates)
        t1 = rate.advance(t0, amount)
        assert t1 >= t0
        assert rate.integral(t0, t1) == pytest.approx(amount, abs=1e-9)


class TestStructure:
    def test_breakpoints_in(self):
        rate = PiecewiseConstantRate([0.0, 1.0, 2.0, 3.0], [1.0] * 4)
        assert list(rate.breakpoints_in(0.5, 2.5)) == [1.0, 2.0]

    def test_breakpoints_exclude_endpoints(self):
        rate = PiecewiseConstantRate([0.0, 1.0, 2.0], [1.0] * 3)
        assert list(rate.breakpoints_in(1.0, 2.0)) == []

    def test_check_bounds_passes(self):
        rate = PiecewiseConstantRate([0.0, 1.0], [0.95, 1.05])
        rate.check_bounds(0.9, 1.1)

    def test_check_bounds_fails(self):
        rate = PiecewiseConstantRate([0.0, 1.0], [0.95, 1.2])
        with pytest.raises(ScheduleError):
            rate.check_bounds(0.9, 1.1)

    def test_scaled(self):
        rate = PiecewiseConstantRate([0.0, 1.0], [1.0, 2.0]).scaled(0.5)
        assert rate.rate_at(0.0) == 0.5
        assert rate.rate_at(1.5) == 1.0


class TestAlternatingRate:
    def test_alternates(self):
        rate = alternating_rate(0.9, 1.1, period=1.0, horizon=3.0)
        assert rate.rate_at(0.0) == 1.1
        assert rate.rate_at(1.5) == 0.9
        assert rate.rate_at(2.5) == 1.1

    def test_settles_to_low_after_horizon(self):
        rate = alternating_rate(0.9, 1.1, period=1.0, horizon=3.0)
        assert rate.rate_at(100.0) == 0.9

    def test_invalid_period_rejected(self):
        with pytest.raises(ScheduleError):
            alternating_rate(0.9, 1.1, period=0.0, horizon=3.0)
