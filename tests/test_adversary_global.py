"""Tests for the Theorem 7.2 adversary (global skew lower bound)."""

import pytest

from repro.adversary.global_bound import (
    run_global_lower_bound,
    theorem72_schedules,
)
from repro.adversary.shifting import patterns_match
from repro.baselines import MaxForwardAlgorithm
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ScheduleError
from repro.sim.runner import run_execution
from repro.topology.generators import line, ring

EPSILON = 0.05
DELAY = 1.0


def aopt(**overrides):
    return AoptAlgorithm(SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY, **overrides))


class TestScheduleConstruction:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ScheduleError):
            theorem72_schedules(line(4), 0, "E9", EPSILON, DELAY)

    def test_invalid_eps_tilde_rejected(self):
        with pytest.raises(ScheduleError):
            theorem72_schedules(line(4), 0, "E3", EPSILON, DELAY, eps_tilde=1.0)

    @pytest.mark.parametrize("variant", ["E1", "E2", "E3"])
    def test_drift_within_model(self, variant):
        schedules = theorem72_schedules(line(5), 0, variant, EPSILON, DELAY)
        for node in range(5):
            schedules.drift.validated_rate_function(node, 500.0)

    @pytest.mark.parametrize("variant", ["E1", "E2", "E3"])
    def test_delays_within_model(self, variant):
        schedules = theorem72_schedules(line(5), 0, variant, EPSILON, DELAY)
        for sender, receiver in ((1, 0), (0, 1), (3, 4), (4, 3)):
            for t in (0.0, 10.0, 100.0):
                value = schedules.delay.validated_delay(sender, receiver, t, 0)
                assert 0.0 <= value <= DELAY

    def test_rho_exact_knowledge_negative(self):
        schedules = theorem72_schedules(line(5), 0, "E3", EPSILON, DELAY)
        assert schedules.rho < 0
        assert schedules.rho_sup == pytest.approx(-EPSILON)


class TestIndistinguishability:
    """E1, E2 and E3 must present identical local-time message patterns."""

    @pytest.mark.parametrize("other", ["E2", "E3"])
    def test_aopt_cannot_distinguish(self, other):
        topology = line(4)
        reference = theorem72_schedules(topology, 0, "E1", EPSILON, DELAY)
        candidate = theorem72_schedules(topology, 0, other, EPSILON, DELAY)
        horizon = min(reference.t0, candidate.t0) * 0.5
        traces = []
        for schedules in (reference, candidate):
            traces.append(
                run_execution(
                    topology,
                    aopt(),
                    schedules.drift,
                    schedules.delay,
                    horizon,
                    initiators=list(topology.nodes),
                    record_messages=True,
                )
            )
        ok, detail = patterns_match(
            traces[0], traces[1], tolerance=1e-6, allow_prefix=True
        )
        assert ok, detail


class TestForcedSkew:
    def test_exact_knowledge_forces_one_minus_eps_dt(self):
        """Corollary 7.3 second part: skew (1 − ε)·D·T is unavoidable."""
        result = run_global_lower_bound(line(9), aopt(), EPSILON, DELAY)
        assert result.forced_skew == pytest.approx(result.predicted, rel=1e-6)
        assert result.predicted == pytest.approx(
            (1 + result.rho) * 8 * DELAY, rel=1e-9
        )

    def test_inaccurate_delay_knowledge_forces_more(self):
        """Theorem 7.2: with c1 < 1 the forced skew rises toward (1+ε)DT."""
        loose = aopt(delay_bound_hat=DELAY / 0.6)
        result = run_global_lower_bound(
            line(9), loose, EPSILON, DELAY, delay_ratio=0.6
        )
        exact = run_global_lower_bound(line(9), aopt(), EPSILON, DELAY)
        assert result.forced_skew > exact.forced_skew
        assert result.forced_skew == pytest.approx(result.predicted, rel=1e-6)
        assert result.theoretical == pytest.approx((1 + EPSILON) * 8 * DELAY)

    def test_forced_skew_below_upper_bound(self, params):
        """Consistency: the forced skew stays below Theorem 5.5's G."""
        result = run_global_lower_bound(line(7), aopt(), EPSILON, DELAY)
        upper = global_skew_bound(
            SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY), 6
        )
        assert result.forced_skew <= upper + 1e-7

    def test_works_on_rings(self):
        result = run_global_lower_bound(ring(8), aopt(), EPSILON, DELAY)
        # Ring diameter from v0 is 4.
        assert result.predicted == pytest.approx((1 + result.rho) * 4 * DELAY)
        assert result.forced_skew == pytest.approx(result.predicted, rel=1e-5)

    def test_jump_algorithms_also_forced(self):
        """The bound holds for any envelope-respecting algorithm, even with
        unbounded rates (jumps)."""
        result = run_global_lower_bound(
            line(7), MaxForwardAlgorithm(send_period=2.0), EPSILON, DELAY
        )
        # Max-forward is not exactly envelope-optimal; it must still suffer
        # a skew within a constant factor of the prediction.
        assert result.forced_skew > 0.5 * result.predicted
