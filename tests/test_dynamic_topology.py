"""Dynamic-topology model: schedules, engine semantics, parity, workers.

The :class:`~repro.topology.dynamic.TopologySchedule` is the first-class
dynamic-graph model (``docs/DYNAMIC.md``): timed edge appear/disappear,
node join/leave, partitions that re-merge.  These tests pin

* the schedule builder and :class:`CompiledTopologySchedule` query
  semantics (half-open ``[at, until)`` intervals, churn determinism);
* the engine semantics — absent edges lose messages, absent nodes
  neither send nor receive, joiners integrate via their first message
  (§4.2) exactly like a network merge;
* byte-exact parity of the fast engine against the reference engine and
  of streaming mode (``record_trace=False``) against the trace oracle,
  across merge and partition scenarios;
* workers=N == workers=1 byte-identity when a schedule rides the spec.
"""

import pickle

import pytest

from tests.test_engine_parity import canonical_summary_json

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ScheduleError
from repro.exec import ExecutionSpec, SweepExecutor
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import TwoGroupDrift
from repro.topology.dynamic import CompiledTopologySchedule, TopologySchedule
from repro.topology.generators import line, ring
from repro.variants.kllo_dynamic import KlloDynamicAlgorithm

pytestmark = pytest.mark.dynamic

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)


# ---------------------------------------------------------------------------
# Schedule builder + compiled queries
# ---------------------------------------------------------------------------


class TestScheduleBuilder:
    def test_edge_outage_interval_is_half_open(self):
        schedule = TopologySchedule().edge_disappears(0, 1, at=5.0, until=9.0)
        compiled = CompiledTopologySchedule(schedule)
        assert not compiled.is_edge_absent(0, 1, 4.999)
        assert compiled.is_edge_absent(0, 1, 5.0)
        assert compiled.is_edge_absent(0, 1, 8.999)
        assert not compiled.is_edge_absent(0, 1, 9.0)
        # Undirected: both orientations agree.
        assert compiled.is_edge_absent(1, 0, 7.0)

    def test_edge_appears_is_absence_from_zero(self):
        schedule = TopologySchedule().edge_appears(3, 4, at=80.0)
        compiled = CompiledTopologySchedule(schedule)
        assert compiled.is_edge_absent(3, 4, 0.0)
        assert compiled.is_edge_absent(3, 4, 79.999)
        assert not compiled.is_edge_absent(3, 4, 80.0)

    def test_partition_and_merge_cover_the_cut(self):
        cut = [(2, 3), (7, 0)]
        part = CompiledTopologySchedule(
            TopologySchedule().partition(cut, at=10.0, until=20.0)
        )
        merge = CompiledTopologySchedule(TopologySchedule().merge(cut, at=15.0))
        for u, v in cut:
            assert part.is_edge_absent(u, v, 12.0)
            assert not part.is_edge_absent(u, v, 20.0)
            assert merge.is_edge_absent(u, v, 14.999)
            assert not merge.is_edge_absent(u, v, 15.0)

    def test_node_leave_rejoin_and_join(self):
        schedule = TopologySchedule().leaves(2, at=4.0, until=6.0).joins(5, at=3.0)
        compiled = CompiledTopologySchedule(schedule)
        assert not compiled.is_node_absent(2, 3.999)
        assert compiled.is_node_absent(2, 4.0)
        assert not compiled.is_node_absent(2, 6.0)
        assert compiled.is_node_absent(5, 0.0)
        assert not compiled.is_node_absent(5, 3.0)
        assert compiled.next_presence(5, 1.0) == 3.0
        assert compiled.absence_in(2, 0.0, 10.0) == pytest.approx(2.0)

    def test_boundaries_and_last_change_time(self):
        schedule = (
            TopologySchedule()
            .edge_disappears(0, 1, at=5.0, until=9.0)
            .leaves(3, at=7.0, until=30.0)
        )
        assert schedule.boundaries(10.0) == [5.0, 7.0, 9.0]
        assert schedule.last_change_time(10.0) == 9.0
        assert schedule.last_change_time() == 30.0
        assert schedule.last_change_time(4.0) == 0.0
        assert TopologySchedule().is_empty
        assert not schedule.is_empty

    def test_negative_times_rejected(self):
        with pytest.raises(ScheduleError):
            TopologySchedule().edge_disappears(0, 1, at=-1.0)
        with pytest.raises(ScheduleError):
            TopologySchedule().leaves(0, at=-0.5)

    def test_churn_is_deterministic_and_order_free(self):
        edges = line(5).edges()
        a = TopologySchedule.churn(edges, 0.05, 4.0, 100.0, seed=9)
        b = TopologySchedule.churn(list(reversed(edges)), 0.05, 4.0, 100.0, seed=9)
        assert sorted(a.edge_events) == sorted(b.edge_events)
        other = TopologySchedule.churn(edges, 0.05, 4.0, 100.0, seed=10)
        assert sorted(a.edge_events) != sorted(other.edge_events)

    def test_churn_outages_all_heal_and_respect_start(self):
        schedule = TopologySchedule.churn(
            line(6).edges(), 0.1, 3.0, 80.0, start=20.0, seed=1
        )
        downs = [e for e in schedule.edge_events if e[2] == "edge-down"]
        ups = [e for e in schedule.edge_events if e[2] == "edge-up"]
        assert downs and len(downs) == len(ups)
        assert min(t for t, _, _ in downs) >= 20.0

    def test_churn_validates_rates(self):
        with pytest.raises(ScheduleError):
            TopologySchedule.churn(line(3).edges(), 0.0, 4.0, 100.0)
        with pytest.raises(ScheduleError):
            TopologySchedule.churn(line(3).edges(), 0.1, -1.0, 100.0)


class TestScheduleDigest:
    def _spec(self, schedule):
        return ExecutionSpec(
            line(4), AoptAlgorithm(PARAMS), TwoGroupDrift(0.05, [0, 1]),
            ConstantDelay(1.0), 40.0, topology_schedule=schedule,
        )

    def test_identical_schedules_digest_identically(self):
        build = lambda: TopologySchedule().partition([(1, 2)], 10.0, 20.0)
        assert self._spec(build()).digest() == self._spec(build()).digest()

    def test_any_event_change_shifts_the_digest(self):
        base = self._spec(TopologySchedule().partition([(1, 2)], 10.0, 20.0))
        moved = self._spec(TopologySchedule().partition([(1, 2)], 10.0, 20.5))
        assert base.digest() != moved.digest()


# ---------------------------------------------------------------------------
# Engine semantics
# ---------------------------------------------------------------------------


def _run(spec):
    return spec.run()


class TestEngineSemantics:
    def test_absent_edge_loses_messages(self):
        # The only edge of a line-2 goes down for [5, 15): every send in
        # that window is accounted as lost-to-link (not delivered late),
        # while traffic outside the window flows normally.
        spec = ExecutionSpec(
            line(2), AoptAlgorithm(PARAMS), TwoGroupDrift(0.05, [0]),
            ConstantDelay(1.0), 25.0,
            topology_schedule=TopologySchedule().edge_disappears(
                0, 1, at=5.0, until=15.0
            ),
        )
        trace, _ = spec.run(record_events=True)
        assert 0 < trace.messages_lost_link < trace.total_messages()
        outage_sends = [
            e for e in trace.event_log
            if e[0] == "send" and 5.0 <= e[1] < 15.0
        ]
        assert outage_sends == []
        drops = [
            e for e in trace.event_log
            if e[0] == "drop" and e[3].get("reason") == "edge-absent"
        ]
        assert len(drops) == trace.messages_lost_link

    def test_absent_node_is_silent_and_deaf(self):
        # Node 1 (interior) leaves for [8, 14): the event log must show
        # no sends from it inside the window, and deliveries to it are
        # dropped with reason "absent".
        schedule = TopologySchedule().leaves(1, at=8.0, until=14.0)
        spec = ExecutionSpec(
            line(3), AoptAlgorithm(PARAMS), TwoGroupDrift(0.05, [0]),
            ConstantDelay(1.0), 30.0, topology_schedule=schedule,
        )
        trace, _ = spec.run(record_events=True)
        sends_while_absent = [
            e for e in trace.event_log
            if e[0] == "send" and e[2] == 1 and 8.0 <= e[1] < 14.0
        ]
        assert sends_while_absent == []
        absent_drops = [
            e for e in trace.event_log
            if e[0] == "drop" and e[2] == 1 and e[3].get("reason") == "absent"
        ]
        assert absent_drops
        leave_join = [e[0] for e in trace.event_log if e[0] in ("leave", "join")]
        assert leave_join == ["leave", "join"]

    def test_late_joiner_integrates_by_first_message(self):
        # §4.2: node 3 of a line-4 does not exist until t=15; afterwards
        # its neighbor's first message initializes it and it converges
        # into the common envelope.
        schedule = TopologySchedule().joins(3, at=15.0)
        spec = ExecutionSpec(
            line(4), AoptAlgorithm(PARAMS), TwoGroupDrift(0.05, [0, 1]),
            ConstantDelay(1.0), 120.0, topology_schedule=schedule,
            check_invariants=True, params=PARAMS,
        )
        trace, _ = spec.run(record_events=True)
        first_send = min(
            (e[1] for e in trace.event_log if e[0] == "send" and e[2] == 3),
            default=None,
        )
        assert first_send is not None and first_send >= 15.0
        # Once integrated, the joiner tracks the network: the tail obeys
        # the connected-graph bound instead of diverging.
        from repro.core.bounds import global_skew_bound

        assert trace.spread_at(trace.horizon) <= (
            global_skew_bound(PARAMS, 3) + 1e-7
        )

    def test_partition_diverges_then_remerge_reconverges(self):
        cut = [(2, 3)]
        schedule = TopologySchedule().partition(cut, at=20.0, until=120.0)
        spec = ExecutionSpec(
            line(6), KlloDynamicAlgorithm(PARAMS), TwoGroupDrift(0.05, [0, 1, 2]),
            ConstantDelay(1.0), 300.0, topology_schedule=schedule,
            check_invariants=True, params=PARAMS,
        )
        summary = spec.run_summary()
        # The halves drifted apart while cut but the stabilization
        # monitor (armed after the re-merge settles) stays clean.
        assert summary.global_skew > 2 * 0.05 * 60.0
        assert not summary.monitor_violations


# ---------------------------------------------------------------------------
# Parity: fast vs reference, trace vs streaming, workers
# ---------------------------------------------------------------------------


def _merge_spec(seed=0, record_trace=True):
    return ExecutionSpec(
        line(6), KlloDynamicAlgorithm(PARAMS), TwoGroupDrift(0.05, [0, 1, 2]),
        UniformDelay(0.2, 1.0, seed=seed), 160.0, seed=seed,
        initiators=[0, 5],
        topology_schedule=TopologySchedule().merge([(2, 3)], at=40.0),
        check_invariants=True, params=PARAMS, record_trace=record_trace,
        label=f"merge-{seed}",
    )


def _partition_spec(seed=0, record_trace=True):
    return ExecutionSpec(
        ring(6), KlloDynamicAlgorithm(PARAMS), TwoGroupDrift(0.05, [0, 1, 2]),
        UniformDelay(0.2, 1.0, seed=seed), 200.0, seed=seed,
        topology_schedule=(
            TopologySchedule()
            .partition([(2, 3), (5, 0)], at=30.0, until=90.0)
            .leaves(4, at=100.0, until=110.0)
        ),
        check_invariants=True, params=PARAMS, record_trace=record_trace,
        label=f"partition-{seed}",
    )


class TestDynamicParity:
    @pytest.mark.parametrize("build", [_merge_spec, _partition_spec])
    def test_fast_engine_matches_reference(self, build):
        from tests.test_engine_parity import _reference_summary

        reference, _ = _reference_summary(build())
        fast = build().run_summary()
        assert pickle.dumps(reference) == pickle.dumps(fast)

    @pytest.mark.parametrize("build", [_merge_spec, _partition_spec])
    def test_streaming_matches_trace_oracle(self, build):
        trace_summary = build(record_trace=True).run_summary()
        stream_summary = build(record_trace=False).run_summary()
        assert canonical_summary_json(trace_summary) == canonical_summary_json(
            stream_summary
        )

    def test_workers_byte_identical_with_schedule(self):
        specs = [_merge_spec(seed=i) for i in range(2)] + [
            _partition_spec(seed=i) for i in range(2)
        ]
        serial = SweepExecutor(workers=1, backend="serial").run(specs)
        pooled = SweepExecutor(workers=2).run(specs)
        assert len(serial) == len(pooled)
        for s, p in zip(serial, pooled):
            assert s.index == p.index and s.error is None and p.error is None
            assert pickle.dumps(s.summary) == pickle.dumps(p.summary)


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


class TestCliSurfaces:
    def test_sweep_churn_smoke(self, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--topology", "line", "--diameters", "3",
            "--algorithm", "kllo-dynamic", "--horizon", "60",
            "--churn", "0.02", "--churn-outage", "3.0",
            "--workers", "1", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "churn rate 0.02" in out

    def test_faults_short_horizon_surfaces_no_resync(self, capsys):
        # Satellite contract for time_to_resync's None branch: a horizon
        # that ends mid-recovery is reported, not dropped.
        from repro.cli import main

        code = main([
            "faults", "--topology", "line", "--nodes", "6",
            "--scenario", "partition", "--horizon", "40",
            "--fault-start", "10", "--fault-duration", "29",
            "--workers", "1", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT resynchronized within the horizon" in out
