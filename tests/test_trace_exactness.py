"""Deeper exactness properties of the trace evaluation.

These complement test_trace.py: the *local* skew and per-pair extrema are
cross-checked against dense sampling on randomized executions of the real
algorithm (not just hand-built records), and the convexity argument for
the spread is exercised at interior crossing points.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import UniformDelay
from repro.sim.drift import RandomWalkDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line, ring


def randomized_trace(seed: int, topology, horizon=60.0):
    params = SyncParams.recommended(epsilon=0.08, delay_bound=1.0)
    return run_execution(
        topology,
        AoptAlgorithm(params),
        RandomWalkDrift(0.08, step_period=3.0, step_size=0.05, seed=seed),
        UniformDelay(0.0, 1.0, seed=seed),
        horizon,
    )


class TestLocalSkewExactness:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_local_skew_dominates_dense_sampling(self, seed):
        trace = randomized_trace(seed, ring(5))
        reported = trace.local_skew().value
        rng = random.Random(seed)
        for _ in range(300):
            t = rng.uniform(0.0, trace.horizon)
            for a, b in trace.topology.edges():
                assert abs(trace.skew(a, b, t)) <= reported + 1e-9

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_pair_skew_dominates_dense_sampling(self, seed):
        trace = randomized_trace(seed, line(4))
        reported = trace.max_pair_skew(0, 3).value
        rng = random.Random(seed)
        for _ in range(300):
            t = rng.uniform(0.0, trace.horizon)
            assert abs(trace.skew(0, 3, t)) <= reported + 1e-9

    def test_extremum_time_is_attained(self):
        trace = randomized_trace(3, line(4))
        extremum = trace.global_skew()
        # Evaluating at the reported time reproduces the reported value
        # (up to the left/right limit choice).
        values = [trace.logical[n].value(extremum.time) for n in trace.logical]
        left = [trace.logical[n].value_left(extremum.time) for n in trace.logical]
        spread = max(max(values) - min(values), max(left) - min(left))
        assert spread == pytest.approx(extremum.value, abs=1e-9)

    def test_windowed_extrema_nest(self):
        """max over [a, b] ≤ max over [0, horizon] and windows tile."""
        trace = randomized_trace(5, line(5))
        full = trace.global_skew().value
        halves = [
            trace.global_skew(0.0, trace.horizon / 2).value,
            trace.global_skew(trace.horizon / 2, trace.horizon).value,
        ]
        assert max(halves) == pytest.approx(full, abs=1e-9)
        assert all(h <= full + 1e-12 for h in halves)


class TestSkewSymmetry:
    def test_pair_skew_symmetric(self):
        trace = randomized_trace(7, line(4))
        forward = trace.max_pair_skew(0, 3)
        backward = trace.max_pair_skew(3, 0)
        assert forward.value == pytest.approx(backward.value)

    def test_global_skew_at_least_local(self):
        trace = randomized_trace(9, ring(6))
        assert trace.global_skew().value >= trace.local_skew().value - 1e-12
