"""``repro certify`` CLI: exit codes, JSON golden, replay byte-identity.

Exit-code contract (mirrors ``repro lint``): 0 = every selected
certificate held, 1 = a violation was found (or a replayed artifact
reproduced — the build is in violation either way), 2 = usage error.

The golden test pins the full JSON report of the committed
planted-violation campaign (seed 0, budget 8, ``aopt-broken-rate``);
only the wall-clock ``duration_seconds`` and the machine-local artifact
directory are normalized.  The replay test round-trips the committed
repro artifact byte-for-byte.
"""

import json
import os

import pytest

from repro.cert import ReproArtifact, certify, replay_artifact
from repro.cli import main

pytestmark = pytest.mark.cert

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "cert")
ARTIFACT = os.path.join(FIXTURES, "repro-thm-5.5-global-skew.json")
GOLDEN = os.path.join(FIXTURES, "report-golden.json")


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        code = main([
            "certify", "--budget", "3", "--seed", "0", "--no-faults",
            "--theorems", "cond1-envelope", "cond2-rate-bounds",
        ])
        assert code == 0
        assert "RESULT: CERTIFIED" in capsys.readouterr().out

    def test_violation_exits_one(self, capsys):
        code = main([
            "certify", "--budget", "8", "--seed", "0",
            "--algorithm", "aopt-broken-rate",
            "--theorems", "thm-5.5-global-skew", "--no-shrink",
        ])
        assert code == 1
        assert "VIOLATIONS FOUND" in capsys.readouterr().out

    def test_unknown_certificate_exits_two(self, capsys):
        code = main(["certify", "--theorems", "thm-0.0-nonsense", "--budget", "2"])
        assert code == 2
        assert "unknown certificate" in capsys.readouterr().err

    def test_zero_budget_exits_two(self, capsys):
        code = main(["certify", "--budget", "0"])
        assert code == 2
        assert "--budget" in capsys.readouterr().err

    def test_missing_artifact_exits_two(self, capsys):
        code = main(["certify", "--replay", "/nonexistent/artifact.json"])
        assert code == 2
        assert "cannot load artifact" in capsys.readouterr().err

    def test_bad_flag_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["certify", "--frobnicate"])
        assert excinfo.value.code == 2

    def test_list_exits_zero(self, capsys):
        assert main(["certify", "--list"]) == 0
        out = capsys.readouterr().out
        assert "thm-5.5-global-skew" in out
        assert "docs/CERTIFICATION.md" in out


class TestJsonReport:
    def test_golden_report(self, tmp_path):
        report = certify(
            budget=8, seed=0, algorithm="aopt-broken-rate", shrink=True,
            artifact_dir=str(tmp_path),
        )
        data = report.as_dict()
        data["duration_seconds"] = 0.0
        for violation in data["violations"]:
            if violation["artifact_path"]:
                violation["artifact_path"] = os.path.basename(
                    violation["artifact_path"]
                )
        with open(GOLDEN) as handle:
            golden = json.load(handle)
        assert data == golden

    def test_cli_json_is_parseable(self, capsys):
        code = main([
            "certify", "--budget", "2", "--seed", "1", "--no-faults",
            "--theorems", "cond1-envelope", "--format", "json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["report"] == "certification"
        assert data["clean"] is True
        assert data["scenarios_run"] == 2

    def test_stats_schema(self):
        report = certify(
            budget=3, seed=2, theorems=["thm-5.5-global-skew"], shrink=False
        )
        data = report.as_dict()
        for entry in data["stats"]:
            assert set(entry) == {
                "certificate", "checks", "violations", "margin_percentiles"
            }
            if entry["margin_percentiles"] is not None:
                assert set(entry["margin_percentiles"]) == {
                    "min", "p5", "p50", "p95"
                }


class TestReplayRoundTrip:
    def test_committed_artifact_byte_identity(self):
        artifact = ReproArtifact.load(ARTIFACT)
        with open(ARTIFACT, "rb") as handle:
            on_disk = handle.read()
        assert artifact.to_json().encode("utf-8") == on_disk

    def test_committed_artifact_reproduces(self):
        result = replay_artifact(ReproArtifact.load(ARTIFACT))
        assert result.digest_match
        assert result.violation_match
        assert result.reproduced, result.summary_line()

    def test_cli_replay_reports_reproduction(self, capsys):
        code = main(["certify", "--replay", ARTIFACT])
        assert code == 1  # reproducing a violation means the build violates
        assert "REPRODUCED" in capsys.readouterr().out

    def test_cli_replay_json(self, capsys):
        code = main(["certify", "--replay", ARTIFACT, "--format", "json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["reproduced"] is True
        assert data["certificate"] == "thm-5.5-global-skew"

    def test_tampered_artifact_is_flagged(self, tmp_path):
        artifact = ReproArtifact.load(ARTIFACT)
        tampered = ReproArtifact(
            certificate=artifact.certificate,
            scenario=artifact.scenario.with_changes(horizon=99.0),
            spec_digest=artifact.spec_digest,
            violation=artifact.violation,
        )
        result = replay_artifact(tampered)
        assert not result.digest_match
        assert not result.reproduced
