"""Unit tests for topology generators and graph properties."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    Topology,
    binary_tree,
    complete_graph,
    diameter,
    grid,
    hypercube,
    line,
    random_connected,
    ring,
    star,
    torus,
)
from repro.topology.properties import (
    all_pairs_distances,
    bfs_distances,
    eccentricity,
    nodes_at_distance,
    shortest_path,
)


class TestTopologyClass:
    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology({})

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: (0,)})

    def test_unknown_neighbor_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: (1,)})

    def test_asymmetric_edge_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: (1,), 1: ()})

    def test_disconnected_rejected(self):
        with pytest.raises(TopologyError):
            Topology({0: (1,), 1: (0,), 2: (3,), 3: (2,)})

    def test_duplicate_neighbors_deduped(self):
        top = Topology({0: (1, 1), 1: (0,)})
        assert top.neighbors(0) == (1,)

    def test_edges_once_each(self):
        top = ring(4)
        assert len(top.edges()) == 4

    def test_contains_and_len(self):
        top = line(3)
        assert 1 in top
        assert 99 not in top
        assert len(top) == 3

    def test_from_edges(self):
        top = Topology.from_edges([("a", "b"), ("b", "c")])
        assert set(top.neighbors("b")) == {"a", "c"}

    def test_degree(self):
        top = star(5)
        assert top.degree(0) == 4
        assert top.max_degree() == 4


class TestGenerators:
    def test_line(self):
        top = line(5)
        assert len(top) == 5
        assert diameter(top) == 4

    def test_line_single_node(self):
        assert len(line(1)) == 1

    def test_line_invalid(self):
        with pytest.raises(TopologyError):
            line(0)

    def test_ring(self):
        top = ring(8)
        assert len(top) == 8
        assert diameter(top) == 4
        assert all(top.degree(v) == 2 for v in top.nodes)

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        top = star(6)
        assert diameter(top) == 2
        assert top.degree(0) == 5

    def test_complete(self):
        top = complete_graph(5)
        assert diameter(top) == 1
        assert len(top.edges()) == 10

    def test_grid(self):
        top = grid(3, 4)
        assert len(top) == 12
        assert diameter(top) == 2 + 3

    def test_torus(self):
        top = torus(4, 4)
        assert len(top) == 16
        assert diameter(top) == 4
        assert all(top.degree(v) == 4 for v in top.nodes)

    def test_binary_tree(self):
        top = binary_tree(3)
        assert len(top) == 15
        assert diameter(top) == 6

    def test_hypercube(self):
        top = hypercube(4)
        assert len(top) == 16
        assert diameter(top) == 4
        assert all(top.degree(v) == 4 for v in top.nodes)

    def test_random_connected_is_connected(self):
        for seed in range(5):
            top = random_connected(20, 0.05, seed=seed)
            assert len(top) == 20  # constructor would raise if disconnected

    def test_random_connected_deterministic(self):
        a = random_connected(15, 0.2, seed=4)
        b = random_connected(15, 0.2, seed=4)
        assert a.edges() == b.edges()

    def test_random_connected_invalid_p(self):
        with pytest.raises(TopologyError):
            random_connected(10, 1.5)


class TestProperties:
    def test_bfs_distances(self):
        top = line(5)
        distances = bfs_distances(top, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_unknown_source(self):
        with pytest.raises(TopologyError):
            bfs_distances(line(3), 99)

    def test_all_pairs(self):
        top = ring(5)
        distances = all_pairs_distances(top)
        assert distances[0][2] == 2
        assert distances[2][0] == 2

    def test_eccentricity(self):
        assert eccentricity(line(5), 2) == 2
        assert eccentricity(line(5), 0) == 4

    def test_shortest_path(self):
        path = shortest_path(line(6), 1, 4)
        assert path == [1, 2, 3, 4]

    def test_shortest_path_self(self):
        assert shortest_path(line(3), 1, 1) == [1]

    def test_nodes_at_distance(self):
        top = ring(6)
        assert set(nodes_at_distance(top, 0, 3)) == {3}
        assert set(nodes_at_distance(top, 0, 1)) == {1, 5}
