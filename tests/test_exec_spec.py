"""ExecutionSpec identity tests: pickling, digest stability, cache guard.

The digest is the key of the on-disk result cache, so these tests pin the
three properties that make caching safe:

* stability — the digest of an identically-constructed spec is the same
  in this process, after a pickle round-trip, and in a *fresh* Python
  process (no dependence on PYTHONHASHSEED or id()s);
* dict-order insensitivity — semantically unordered model parameters
  (per-node rate maps, phase maps) hash the same regardless of insertion
  order;
* sensitivity — changing *any* model parameter changes the digest (the
  cache-poisoning guard: a stale entry can never be returned for a spec
  that would compute something else).
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ConfigurationError
from repro.exec import ExecutionSpec, ResultCache, canonical_encoding
from repro.exec.summary import ExecutionSummary
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import AlternatingDrift, PerNodeDrift, TwoGroupDrift
from repro.topology.generators import line, ring

REPO_ROOT = Path(__file__).resolve().parent.parent

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)


def _make_reference_spec() -> ExecutionSpec:
    """One representative spec, constructed identically everywhere."""
    return ExecutionSpec(
        topology=line(5),
        algorithm=AoptAlgorithm(PARAMS),
        drift=TwoGroupDrift(0.05, [0, 1]),
        delay=UniformDelay(0.0, 1.0, seed=7),
        horizon=60.0,
        seed=7,
        label="reference",
    )


class TestPickleRoundTrip:
    def test_digest_survives_pickle(self):
        spec = _make_reference_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.digest() == spec.digest()
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_roundtripped_spec_runs_identically(self):
        spec = _make_reference_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert pickle.dumps(spec.run_summary()) == pickle.dumps(clone.run_summary())

    def test_replay_is_deterministic_despite_stateful_rng(self):
        """UniformDelay carries a live RNG; spec.run must not advance it."""
        spec = _make_reference_spec()
        first = spec.run_summary()
        second = spec.run_summary()
        assert first == second


class TestDigestStability:
    def test_identical_construction_same_digest(self):
        assert _make_reference_spec().digest() == _make_reference_spec().digest()

    def test_stable_across_processes(self):
        """A fresh interpreter (fresh hash seed) computes the same digest."""
        script = (
            "import sys; "
            f"sys.path.insert(0, {str(REPO_ROOT / 'src')!r}); "
            f"sys.path.insert(0, {str(REPO_ROOT)!r}); "
            "from tests.test_exec_spec import _make_reference_spec; "
            "print(_make_reference_spec().digest())"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, cwd=REPO_ROOT,
        )
        assert completed.stdout.strip() == _make_reference_spec().digest()

    def test_dict_order_insensitive(self):
        """Unordered model maps hash identically under reordering."""
        forward = {0: 1.04, 1: 0.96, 2: 1.0, 3: 0.97}
        backward = dict(reversed(list(forward.items())))
        assert list(forward) != list(backward)  # genuinely different order

        def spec_with(rates):
            return ExecutionSpec(
                topology=line(4),
                algorithm=AoptAlgorithm(PARAMS),
                drift=PerNodeDrift(0.05, rates),
                delay=ConstantDelay(1.0),
                horizon=40.0,
            )

        assert spec_with(forward).digest() == spec_with(backward).digest()

        phases_fwd = {0: 0, 1: 1, 2: 0, 3: 1}
        phases_bwd = dict(reversed(list(phases_fwd.items())))

        def spec_with_phases(phases):
            return ExecutionSpec(
                topology=line(4),
                algorithm=AoptAlgorithm(PARAMS),
                drift=AlternatingDrift(0.05, 10.0, phases),
                delay=ConstantDelay(1.0),
                horizon=40.0,
            )

        assert (
            spec_with_phases(phases_fwd).digest()
            == spec_with_phases(phases_bwd).digest()
        )

    def test_label_excluded_from_digest(self):
        a = _make_reference_spec()
        b = ExecutionSpec(
            topology=line(5),
            algorithm=AoptAlgorithm(PARAMS),
            drift=TwoGroupDrift(0.05, [0, 1]),
            delay=UniformDelay(0.0, 1.0, seed=7),
            horizon=60.0,
            seed=7,
            label="renamed",
        )
        assert a.digest() == b.digest()


class TestDigestSensitivity:
    """Every execution-relevant knob must perturb the digest."""

    def _variants(self):
        base = dict(
            topology=line(5),
            algorithm=AoptAlgorithm(PARAMS),
            drift=TwoGroupDrift(0.05, [0, 1]),
            delay=UniformDelay(0.0, 1.0, seed=7),
            horizon=60.0,
            seed=7,
        )
        other_params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0, mu=0.9)
        yield "topology", dict(base, topology=ring(5))
        yield "topology-size", dict(base, topology=line(6))
        yield "algorithm-params", dict(base, algorithm=AoptAlgorithm(other_params))
        yield "drift-groups", dict(base, drift=TwoGroupDrift(0.05, [0, 2]))
        yield "drift-epsilon", dict(base, drift=TwoGroupDrift(0.06, [0, 1]))
        yield "delay-seed", dict(base, delay=UniformDelay(0.0, 1.0, seed=8))
        yield "delay-range", dict(base, delay=UniformDelay(0.0, 0.9, seed=7))
        yield "horizon", dict(base, horizon=61.0)
        yield "seed", dict(base, seed=8)
        yield "initiators", dict(base, initiators=[4])
        yield "check-invariants", dict(
            base, check_invariants=True, params=PARAMS
        )

    def test_every_parameter_perturbs_digest(self):
        reference = _make_reference_spec().digest()
        seen = {reference}
        for name, kwargs in self._variants():
            digest = ExecutionSpec(**kwargs).digest()
            assert digest != reference, f"variant {name!r} did not change digest"
            assert digest not in seen, f"variant {name!r} collided"
            seen.add(digest)

    def test_initiator_order_is_execution_relevant(self):
        """Initiators are ordered (wake push order) — NOT order-insensitive."""
        base = dict(
            topology=line(5),
            algorithm=AoptAlgorithm(PARAMS),
            drift=TwoGroupDrift(0.05, [0, 1]),
            delay=ConstantDelay(1.0),
            horizon=40.0,
        )
        a = ExecutionSpec(**base, initiators={0: 0.0, 4: 0.0})
        b = ExecutionSpec(**base, initiators={4: 0.0, 0: 0.0})
        assert a.digest() != b.digest()

    def test_local_callables_rejected(self):
        from repro.sim.delays import FunctionDelay

        spec = ExecutionSpec(
            topology=line(3),
            algorithm=AoptAlgorithm(PARAMS),
            drift=TwoGroupDrift(0.05, [0]),
            delay=FunctionDelay(lambda s, r, t, q: 0.5, max_delay=1.0),
            horizon=20.0,
        )
        with pytest.raises(ConfigurationError):
            spec.digest()


class TestCanonicalEncoding:
    def test_float_int_distinguished(self):
        assert canonical_encoding(1) != canonical_encoding(1.0)

    def test_string_prefix_injective(self):
        assert canonical_encoding(("ab", "c")) != canonical_encoding(("a", "bc"))


class TestResultCache:
    def _summary(self, digest: str) -> ExecutionSummary:
        return ExecutionSummary(
            label="case", spec_digest=digest,
            global_skew=1.5, global_skew_time=10.0, global_skew_pair=(0, 4),
            local_skew=0.5, local_skew_time=12.0, local_skew_pair=(1, 2),
            final_spread=0.25, total_messages=100, total_bits=6400,
            events_processed=500, messages_dropped=0,
        )

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "ab" + "0" * 62
        assert cache.get(digest) is None
        cache.put(digest, self._summary(digest))
        assert cache.get(digest) == self._summary(digest)
        assert len(cache) == 1

    def test_wrong_digest_misses(self, tmp_path):
        """A changed spec digest can never see another spec's entry."""
        cache = ResultCache(tmp_path)
        digest = "cd" + "0" * 62
        cache.put(digest, self._summary(digest))
        assert cache.get("cd" + "1" * 62) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "ef" + "0" * 62
        cache.put(digest, self._summary(digest))
        cache.path_for(digest).write_bytes(b"not a pickle")
        assert cache.get(digest) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "01" + "0" * 62
        cache.put(digest, self._summary(digest))
        entry = pickle.loads(cache.path_for(digest).read_bytes())
        entry["version"] = -1
        cache.path_for(digest).write_bytes(pickle.dumps(entry))
        assert cache.get(digest) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for prefix in ("aa", "bb"):
            digest = prefix + "0" * 62
            cache.put(digest, self._summary(digest))
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_executor_round_trips_through_cache(self, tmp_path):
        from repro.exec import SweepExecutor

        cache = ResultCache(tmp_path)
        spec = _make_reference_spec()
        first = SweepExecutor(workers=1, cache=cache).run([spec])
        second = SweepExecutor(workers=1, cache=cache).run([spec])
        assert not first[0].cached and second[0].cached
        assert pickle.dumps(first[0].summary) == pickle.dumps(second[0].summary)
