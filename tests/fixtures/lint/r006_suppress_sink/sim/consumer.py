"""R006 fixture: sink-side suppression on the reported call line.

Only this consumer's finding is waived; a second, unsuppressed consumer
in the same package must still be flagged.
"""

from r006_suppress_sink.helper import raw_stamp

__all__ = ["spec_digest", "other_digest"]


def spec_digest(payload: dict) -> str:
    return f"{sorted(payload.items())}|{raw_stamp()}"  # reprolint: disable=R006 -- fixture: waived at the sink


def other_digest(payload: dict) -> str:
    return f"{sorted(payload.items())}|{raw_stamp()}"
