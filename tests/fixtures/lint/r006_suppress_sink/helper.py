"""R006 fixture: an unsuppressed wall-clock helper (sink-side variant)."""

import time

__all__ = ["raw_stamp"]


def raw_stamp() -> float:
    return time.time()
