"""R006 fixture package: re-exports the wall-clock helper.

The re-export is the point — consumers import ``stamp`` from the
package, so the analyzer must follow ``r006_pkg`` → ``r006_pkg.clock``
to resolve the chain.
"""

from .clock import stamp

__all__ = ["stamp"]
