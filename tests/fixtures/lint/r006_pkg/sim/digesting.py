"""R006 fixture: a sim-layer digest path reaching the clock helper.

Expected: exactly ONE R006 finding, at ``_encode``'s call to ``mark()``
— the frontier function.  ``spec_digest`` is also in scope, but fixing
``_encode`` fixes it too, so it must NOT be double-reported.  The chain
spans two modules (this one and ``r006_pkg/clock.py``) through a
package re-export plus an ``as``-alias.
"""

from r006_pkg import stamp as mark

__all__ = ["spec_digest"]


def _encode(payload: dict) -> str:
    return f"{sorted(payload.items())}|{mark()}"


def spec_digest(payload: dict) -> str:
    return _encode(payload)
