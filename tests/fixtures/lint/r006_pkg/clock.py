"""R006 fixture: the nondeterminism source, behind an import alias.

Deliberately *not* in a sim/exec/faults directory and not digest-named,
so the single-file R002 never fires here — only the interprocedural
pass can connect this read to the digest code that consumes it.
"""

from time import time as wall

__all__ = ["stamp"]


def stamp() -> float:
    return wall()
