"""Fixture: R005 — inconsistent public exports.

``__all__`` lists a duplicate and a name that does not resolve, and the
public ``straggler`` function is not exported at all.
"""

__all__ = ["helper", "helper", "missing_name"]


def helper():
    return 1


def straggler():
    return 2
