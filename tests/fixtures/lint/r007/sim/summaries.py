"""R007 fixture: order-sensitive reductions in a sim summary path.

Three violations (sum over a set, sum over .values(), an unpinned
np.sum) and one sanctioned fold that must stay silent.
"""

import numpy as np

__all__ = ["bad_set_fold", "bad_values_fold", "bad_numpy_fold", "pinned_fold"]


def bad_set_fold(skews) -> float:
    return sum({round(s, 9) for s in skews})


def bad_values_fold(per_node: dict) -> float:
    return sum(per_node.values())


def bad_numpy_fold(samples) -> float:
    return float(np.sum(samples))


def pinned_fold(per_node: dict) -> int:
    return sum(per_node.values())  # reprolint: exact-fold (integer counters; order-exact)
