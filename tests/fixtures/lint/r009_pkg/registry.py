"""R009 fixture: registers predicates the way ``repro.cert`` does.

``SkewCertificate`` need not resolve — any ``*Certificate(...)`` call
is a registration site, and its bare-name arguments are the predicates
held to the purity contract.  ``DemoCertificate``'s ``check_trace``
method is a predicate by virtue of the class name alone.
"""

from r009_pkg.predicates import impure_excess, pure_excess

__all__ = ["REGISTRY", "DemoCertificate"]

REGISTRY = {
    "impure": SkewCertificate(  # noqa: F821 -- fixture, never imported
        name="impure",
        trace_excess=impure_excess,
    ),
    "pure": SkewCertificate(  # noqa: F821 -- fixture, never imported
        name="pure",
        trace_excess=pure_excess,
    ),
}


class DemoCertificate:
    def check_trace(self, trace) -> bool:
        print("checking", trace)
        return True

    def bound(self, diameter: float) -> float:
        return 2.0 * diameter
