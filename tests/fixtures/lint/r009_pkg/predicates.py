"""R009 fixture: one impure and one pure certificate predicate."""

import random

__all__ = ["impure_excess", "pure_excess"]

_CALLS = 0


def impure_excess(trace, bound) -> float:
    global _CALLS
    _CALLS = _CALLS + 1
    with open("/tmp/cert-debug.log", "a") as handle:
        handle.write(repr(trace))
    jitter = random.Random(0).random()
    return bound + jitter


def pure_excess(trace, bound) -> float:
    worst = max((skew for _, skew in sorted(trace)), default=0.0)
    return worst - bound
