"""Fixture: the pre-fix shape of ``repro.adversary.shifting.patterns_match``.

PR 4's satellite fix sorted the edge intersection and the ``only_a`` /
``only_b`` diagnostics in ``patterns_match``; this copy preserves the
original unordered comparison so the self-test suite can demonstrate
that reverting that fix would make ``repro lint`` fail (three R003
findings: the two formatted sets and the iterated intersection).
"""

__all__ = ["patterns_match_unsorted"]


def patterns_match_unsorted(per_edge_a, per_edge_b):
    if set(per_edge_a) != set(per_edge_b):
        only_a = set(per_edge_a) - set(per_edge_b)
        only_b = set(per_edge_b) - set(per_edge_a)
        return False, f"edge sets differ (only_a={only_a}, only_b={only_b})"
    for edge in set(per_edge_a) & set(per_edge_b):
        if per_edge_a[edge] != per_edge_b[edge]:
            return False, f"edge {edge!r} differs"
    return True, "indistinguishable"
