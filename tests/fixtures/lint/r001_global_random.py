"""Fixture: R001 — module-global and unseeded randomness.

Each offence is minimal and representative: the shared global stream,
an unseeded ``Random``, and a from-import of a global-stream function.
"""

from random import uniform

import random

__all__ = ["jitter", "fresh_rng", "pick_width"]


def jitter(width):
    return random.uniform(-width, width)


def fresh_rng():
    return random.Random()


def pick_width(limit):
    return uniform(0.0, limit)
