"""Fixture: inline suppressions silence listed rules on their line only."""

import random

__all__ = ["legacy_jitter", "still_flagged"]


def legacy_jitter(width):
    return random.uniform(-width, width)  # reprolint: disable=R001


def still_flagged(width):
    return random.uniform(-width, width)
