"""R008 fixture: the genuine pre-fix lease/publish bodies.

``reclaim_lease`` is the pre-fix body of
``repro.exec.backend.WorkQueue._reclaim`` (bare ``os.rename``);
``publish_record`` writes then renames with no fsync; ``claim_lease``
creates the lease without ``O_EXCL``.  Reverting any of the PR's
atomic-IO fixes would reintroduce one of these shapes and fail the
lint gate.
"""

import os
import tempfile

__all__ = ["reclaim_lease", "publish_record", "claim_lease"]


def reclaim_lease(root: str, lease: str) -> bool:
    reclaimed_dir = os.path.join(root, "reclaimed")
    fd, tombstone = tempfile.mkstemp(
        dir=reclaimed_dir, prefix=os.path.basename(lease) + "."
    )
    os.close(fd)
    try:
        os.rename(lease, tombstone)
    except OSError:
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        return False
    return True


def publish_record(path: str, payload: str) -> None:
    tmp_name = path + ".tmp"
    with open(tmp_name, "w", encoding="utf-8") as handle:
        handle.write(payload)
    os.replace(tmp_name, path)


def claim_lease(path: str, owner: str) -> bool:
    try:
        fd = os.open(path, os.O_CREAT | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(owner)
    return True
