"""Fixture: R002 — wall-clock and environment reads in a ``sim`` layer.

The path (``.../r002/sim/wall_clock.py``) places this module inside a
replay-critical layer, so real-world reads must be flagged.
"""

import os
import time
from datetime import datetime

__all__ = ["stamp_events", "started_at", "configured_horizon"]


def stamp_events(events):
    return [(time.time(), event) for event in events]


def started_at():
    return datetime.now()


def configured_horizon():
    return float(os.environ.get("HORIZON", "100"))
