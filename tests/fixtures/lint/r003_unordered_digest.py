"""Fixture: R003 — unordered set iteration/formatting in digest code."""

import hashlib

__all__ = ["digest_names", "compare_edges"]


def digest_names(names):
    acc = hashlib.sha256()
    for name in set(names):
        acc.update(name.encode())
    return acc.hexdigest()


def compare_edges(edges_a, edges_b):
    missing = set(edges_a) - set(edges_b)
    return f"missing={missing}"
