"""Fixture: a fully compliant module — reprolint must report nothing.

Mirrors the project idioms the rules push toward: a per-component
seeded RNG, sorted set iteration inside digest code, and a complete
``__all__``.
"""

import hashlib
import random

__all__ = ["draw", "digest_of"]


def draw(seed, width):
    rng = random.Random(seed)
    return rng.uniform(-width, width)


def digest_of(names):
    acc = hashlib.sha256()
    for name in sorted(set(names)):
        acc.update(name.encode())
    return acc.hexdigest()
