"""Fixture: R004 — digest-coverage hazards, in both checked shapes.

``PartialSpec.digest`` forgets the ``seed`` field, so changing the seed
would not change the digest (a stale cache entry would be returned for a
spec that does not reproduce it).  ``LazySchedule`` is generically
encoded (digest-critical) but creates ``self._cache`` outside
``__init__``, so its canonical encoding depends on which queries ran.
"""

import hashlib
from dataclasses import dataclass

__all__ = ["PartialSpec", "LazySchedule"]


@dataclass(frozen=True)
class PartialSpec:
    topology: str
    horizon: float
    seed: int

    def digest(self):
        payload = f"{self.topology}:{self.horizon}"
        return hashlib.sha256(payload.encode()).hexdigest()


class LazySchedule:  # reprolint: digest-critical
    def __init__(self, seed):
        self.seed = seed
        self.events = []

    def boundaries(self):
        self._cache = sorted(self.events)
        return self._cache
