"""R006 fixture: consumes a source-suppressed helper — must stay silent."""

from r006_suppress_source.helper import sanctioned_stamp

__all__ = ["spec_digest"]


def spec_digest(payload: dict) -> str:
    return f"{sorted(payload.items())}|{sanctioned_stamp()}"
