"""R006 fixture: source-side suppression silences every chain.

The disable comment sits on the line that *reads* the clock, so the
read is sanctioned at its origin — no consumer anywhere may be flagged
for reaching it.
"""

import time

__all__ = ["sanctioned_stamp"]


def sanctioned_stamp() -> float:
    return time.time()  # reprolint: disable=R006 -- telemetry label, stripped before digests
