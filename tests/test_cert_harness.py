"""The certification harness certifying itself.

Covers the tentpole machinery end to end: deterministic scenario
sampling, scenario/spec round-trips, certificate evaluation on clean and
planted-violation executions, shrinker convergence to small
counterexamples, repro-artifact byte-identity, and cross-variant
differential agreement.
"""

import json

import pytest

from repro.cert import (
    CERTIFICATES,
    BrokenRateRuleAoptAlgorithm,
    CertScenario,
    ReproArtifact,
    certify,
    differential_certify,
    execution_certificates,
    generate_scenarios,
    replay_artifact,
    sample_scenario,
    shrink_scenario,
)
from repro.core.params import SyncParams

pytestmark = pytest.mark.cert


def check_scenario(scenario, certificate_name):
    """Run a scenario and evaluate one certificate against its summary."""
    summary = scenario.build_spec().run_summary()
    return CERTIFICATES[certificate_name].check_summary(
        summary, scenario.build_params(), scenario.diameter()
    )


def planted_scenario(seed=5, nodes=6, horizon=60.0):
    """A scenario the broken-rate variant provably fails (skew grows ~2εt)."""
    return CertScenario(
        topology_kind="line",
        nodes=nodes,
        algorithm="aopt-broken-rate",
        epsilon=0.1,
        delay_bound=0.5,
        horizon=horizon,
        seed=seed,
        drift_kind="two-group",
        delay_kind="constant",
    )


def violation_oracle(certificate_name):
    def evaluate(scenario):
        verdict = check_scenario(scenario, certificate_name)
        return None if verdict.satisfied else verdict

    return evaluate


class TestFuzzerDeterminism:
    def test_same_seed_same_stream(self):
        first = [s.canonical_json() for s in generate_scenarios(3, 12)]
        second = [s.canonical_json() for s in generate_scenarios(3, 12)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [s.canonical_json() for s in generate_scenarios(0, 12)]
        b = [s.canonical_json() for s in generate_scenarios(1, 12)]
        assert a != b

    def test_sample_is_random_access(self):
        stream = list(generate_scenarios(0, 8))
        assert sample_scenario(0, 5).canonical_json() == stream[5].canonical_json()

    def test_scenarios_compile_to_stable_digests(self):
        for index in range(6):
            scenario = sample_scenario(2, index)
            assert (
                scenario.build_spec().digest() == scenario.build_spec().digest()
            )

    def test_round_trip_through_dict(self):
        for index in range(8):
            scenario = sample_scenario(1, index)
            clone = CertScenario.from_dict(
                json.loads(json.dumps(scenario.as_dict()))
            )
            assert clone == scenario


class TestPlantedDiscrimination:
    """The planted bug is visible only to the skew certificates."""

    def test_broken_rate_violates_theorem_5_5(self):
        verdict = check_scenario(planted_scenario(), "thm-5.5-global-skew")
        assert not verdict.satisfied
        assert verdict.margin < 0

    def test_broken_rate_keeps_the_conditions(self):
        scenario = planted_scenario()
        for name in ("cond1-envelope", "cond2-rate-bounds", "monotonicity"):
            verdict = check_scenario(scenario, name)
            assert verdict.satisfied, f"{name}: {verdict.detail}"

    def test_intact_aopt_passes_the_same_scenario(self):
        scenario = planted_scenario().with_changes(algorithm="aopt")
        verdict = check_scenario(scenario, "thm-5.5-global-skew")
        assert verdict.satisfied, verdict.detail

    def test_planted_algorithm_is_distinctly_named(self):
        params = SyncParams.recommended(0.05, 1.0)
        assert BrokenRateRuleAoptAlgorithm(params).name == "aopt-broken-rate"


class TestShrinker:
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_converges_to_small_counterexample(self, seed):
        result = shrink_scenario(
            planted_scenario(seed=seed),
            violation_oracle("thm-5.5-global-skew"),
        )
        assert result.scenario.nodes <= 4
        assert result.scenario.horizon <= 20.0
        assert not result.verdict.satisfied
        assert result.scenario.topology_kind == "line"

    def test_shrinking_is_deterministic(self):
        first = shrink_scenario(
            planted_scenario(), violation_oracle("thm-5.5-global-skew")
        )
        second = shrink_scenario(
            planted_scenario(), violation_oracle("thm-5.5-global-skew")
        )
        assert first.scenario == second.scenario
        assert first.steps == second.steps
        assert first.evaluations == second.evaluations

    def test_faults_are_dropped_when_irrelevant(self):
        noisy = planted_scenario().with_changes(
            crash_events=((2, 30.0, 40.0), (4, 35.0, 45.0)),
            link_events=((0, 1, 20.0, 25.0),),
        )
        # The plant violates long before the first fault fires, so every
        # fault event is removable noise the ddmin pass must strip.
        result = shrink_scenario(noisy, violation_oracle("thm-5.5-global-skew"))
        assert not result.scenario.crash_events
        assert not result.scenario.link_events

    def test_requires_a_violating_start(self):
        clean = planted_scenario().with_changes(algorithm="aopt")
        with pytest.raises(ValueError):
            shrink_scenario(clean, violation_oracle("thm-5.5-global-skew"))

    def test_respects_evaluation_budget(self):
        budget = 5
        result = shrink_scenario(
            planted_scenario(),
            violation_oracle("thm-5.5-global-skew"),
            max_evals=budget,
        )
        assert result.evaluations <= budget
        assert not result.verdict.satisfied


class TestArtifacts:
    def test_round_trip_and_replay(self, tmp_path):
        result = shrink_scenario(
            planted_scenario(), violation_oracle("thm-5.5-global-skew")
        )
        artifact = ReproArtifact.from_verdict(
            result.scenario, result.verdict, result.steps
        )
        path = tmp_path / "repro.json"
        artifact.save(str(path))
        loaded = ReproArtifact.load(str(path))
        assert loaded == artifact
        assert loaded.to_json().encode() == path.read_bytes()
        replay = replay_artifact(loaded)
        assert replay.reproduced, replay.summary_line()

    def test_unknown_version_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ReproArtifact.from_dict({"version": 99})


class TestCampaigns:
    def test_clean_campaign_certifies(self):
        report = certify(budget=6, seed=0, shrink=False)
        assert report.clean
        assert report.scenarios_run == 6
        skew = report.stats["thm-5.5-global-skew"]
        assert skew.violations == 0
        assert skew.margins, "expected margin samples"
        assert skew.margin_percentiles()["min"] > 0

    def test_planted_campaign_finds_and_shrinks(self):
        report = certify(
            budget=8,
            seed=0,
            algorithm="aopt-broken-rate",
            theorems=["thm-5.5-global-skew"],
            shrink=True,
        )
        assert not report.clean
        [violation] = report.violations
        assert violation["certificate"] == "thm-5.5-global-skew"
        shrunk = violation["shrunk_scenario"]
        assert shrunk["nodes"] <= 4
        assert shrunk["horizon"] <= 20.0

    def test_applicability_gates_fault_scenarios(self):
        report = certify(budget=10, seed=0, shrink=False)
        faulted = sum(
            1 for s in generate_scenarios(0, 10) if s.has_faults
        )
        assert faulted > 0, "seed 0 should draw some fault scenarios"
        assert (
            report.stats["thm-5.5-global-skew"].checks
            == report.scenarios_run - faulted
        )
        assert report.stats["cond1-envelope"].checks == report.scenarios_run

    def test_zero_time_budget_short_circuits(self):
        report = certify(
            budget=20,
            budget_seconds=0.0,
            seed=0,
            theorems=["thm-5.5-global-skew"],
        )
        assert report.scenarios_run == 0
        assert report.clean


class TestDifferential:
    def test_variants_agree_on_clean_scenarios(self):
        report = differential_certify(budget=4, seed=0)
        assert report.agree, report.format_text()
        assert report.scenarios_run == 4
        assert set(report.variants) == {"aopt", "aopt-jump", "aopt-ft"}


class TestCertificateInterfaces:
    def test_execution_certificates_cover_both_paths(self):
        scenario = sample_scenario(0, 0)
        spec = scenario.build_spec()
        trace, _ = spec.run()
        summary = spec.run_summary()
        params = scenario.build_params()
        d = scenario.diameter()
        for certificate in execution_certificates():
            if not certificate.applies_to(scenario.algorithm):
                # kllo-stabilization has no static/trace path at all.
                continue
            via_summary = certificate.check_summary(summary, params, d)
            via_trace = certificate.check_trace(trace, params, d)
            assert via_summary.satisfied == via_trace.satisfied
            if certificate.name.startswith("thm-"):
                assert via_summary.measured == pytest.approx(via_trace.measured)

    def test_construction_certificates_run(self):
        params = SyncParams.recommended(0.05, 1.0)
        for name in ("thm-7.2-global-lower", "thm-7.7-local-lower"):
            verdict = CERTIFICATES[name].run(params)
            assert verdict.satisfied, verdict.detail
            assert verdict.margin >= 0
