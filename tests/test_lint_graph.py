"""Tests for the whole-program reprolint pass (see ``docs/LINT.md``).

Covers the project index and taint engine through committed fixture
mini-packages (alias-resolved chains, taint through package re-exports,
source- vs sink-side suppression), the new rule families R006–R009, the
incremental content-hash cache (cold == warm byte-identically; editing
one file re-analyzes only that file while interprocedural findings
still update), and baseline staleness pruning.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    PROJECT_RULES,
    RULES,
    all_rule_ids,
    lint_paths,
    load_baseline,
    prune_baseline,
    write_baseline,
)

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def lint_pkg(name, rules=None, **kwargs):
    """Lint one fixture mini-package rooted at the fixtures directory,
    so fixture module names resolve as written (``r006_pkg.clock``)."""
    return lint_paths([FIXTURES / name], rules=rules, root=FIXTURES, **kwargs)


# ---------------------------------------------------------------------------
# R006 — interprocedural nondeterminism reachability
# ---------------------------------------------------------------------------


class TestR006:
    def test_chain_spans_two_modules_through_rexport_and_alias(self):
        report = lint_pkg("r006_pkg", rules=["R006"])
        assert [f.rule for f in report.findings] == ["R006"]
        finding = report.findings[0]
        # The frontier function owns the finding...
        assert finding.path == "r006_pkg/sim/digesting.py"
        assert "_encode" in finding.message
        # ...with the full source→sink chain in message and chain field.
        assert "time.time" in finding.message
        assert len(finding.chain) == 2
        assert "r006_pkg/sim/digesting.py" in finding.chain[0]
        assert "r006_pkg/clock.py" in finding.chain[1]
        assert "reads time.time()" in finding.chain[1]

    def test_frontier_reporting_no_duplicate_at_caller(self):
        # spec_digest also reaches the source, but through the in-scope
        # _encode: fixing _encode fixes it, so it must not be reported.
        report = lint_pkg("r006_pkg", rules=["R006"])
        assert not any("spec_digest" in f.message for f in report.findings)

    def test_graph_off_misses_the_chain(self):
        report = lint_pkg("r006_pkg", rules=["R006"], graph=False)
        assert report.ok

    def test_source_side_suppression_silences_all_consumers(self):
        report = lint_pkg("r006_suppress_source", rules=["R006"])
        assert report.ok, [f.format_text() for f in report.findings]

    def test_sink_side_suppression_is_per_consumer(self):
        report = lint_pkg("r006_suppress_sink", rules=["R006"])
        assert report.suppressed == 1
        assert len(report.findings) == 1
        assert "other_digest" in report.findings[0].message

    def test_process_identity_reported_directly_in_scope(self, tmp_path):
        proj = tmp_path / "proj"
        (proj / "exec").mkdir(parents=True)
        (proj / "exec" / "runner.py").write_text(
            "import os\n"
            "__all__ = ['run_key']\n"
            "def run_key() -> str:\n"
            "    return f'run-{os.getpid()}'\n"
        )
        report = lint_paths([proj], rules=["R006"], root=proj)
        assert [f.rule for f in report.findings] == ["R006"]
        assert "process-identity" in report.findings[0].message


# ---------------------------------------------------------------------------
# R007 — float exactness
# ---------------------------------------------------------------------------


class TestR007:
    def test_order_sensitive_folds_flagged_pinned_fold_silent(self):
        report = lint_pkg("r007", rules=["R007"])
        assert {f.rule for f in report.findings} == {"R007"}
        assert len(report.findings) == 3
        messages = " ".join(f.message for f in report.findings)
        assert "set" in messages
        assert ".values()" in messages
        assert "np.sum" in messages
        assert "docs/ENGINE.md" in messages

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        path = tmp_path / "anywhere.py"
        path.write_text(
            "__all__ = ['fold']\n"
            "def fold(d):\n"
            "    return sum(d.values())\n"
        )
        assert lint_paths([path], rules=["R007"], root=tmp_path).ok


# ---------------------------------------------------------------------------
# R008 — atomic IO
# ---------------------------------------------------------------------------


class TestR008:
    def test_prefix_bodies_fail_the_gate(self):
        report = lint_pkg("r008", rules=["R008"])
        assert {f.rule for f in report.findings} == {"R008"}
        messages = [f.message for f in report.findings]
        assert sum("bare os.rename" in m for m in messages) == 1
        assert sum("without an intervening os.fsync" in m for m in messages) == 1
        assert sum("O_EXCL" in m for m in messages) == 1

    def test_fixed_backend_is_clean(self):
        report = lint_paths(
            [REPO_ROOT / "src" / "repro" / "exec" / "backend.py"],
            rules=["R008"],
            root=REPO_ROOT,
        )
        assert report.ok, [f.format_text() for f in report.findings]


# ---------------------------------------------------------------------------
# R009 — certificate predicate purity
# ---------------------------------------------------------------------------


class TestR009:
    def test_impure_predicate_and_check_method_flagged(self):
        report = lint_pkg("r009_pkg", rules=["R009"])
        assert {f.rule for f in report.findings} == {"R009"}
        messages = " ".join(f.message for f in report.findings)
        assert "performs IO via open()" in messages
        assert "mutates module global '_CALLS'" in messages
        assert "constructs an RNG" in messages
        assert "performs IO via print()" in messages
        # pure_excess is registered too and must stay silent (the "."
        # anchor avoids matching the "impure_excess" substring).
        assert len(report.findings) == 4
        assert ".pure_excess()" not in messages
        # The registration site is named so the finding is actionable.
        assert "registered via SkewCertificate()" in messages
        assert "check method of certificate class DemoCertificate" in messages

    def test_real_certificate_registry_is_pure(self):
        report = lint_paths(
            [REPO_ROOT / "src"], rules=["R009"], root=REPO_ROOT
        )
        assert report.ok, [f.format_text() for f in report.findings]


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------


def _write_taint_project(root: Path, helper_body: str) -> None:
    (root / "sim").mkdir(parents=True, exist_ok=True)
    (root / "helper.py").write_text(
        "import time\n"
        "__all__ = ['stamp']\n"
        "def stamp() -> float:\n"
        f"    return {helper_body}\n"
    )
    (root / "sim" / "user.py").write_text(
        "from helper import stamp\n"
        "__all__ = ['summarize']\n"
        "def summarize() -> float:\n"
        "    return stamp()\n"
    )


class TestIncrementalCache:
    def test_cold_and_warm_runs_are_byte_identical(self, tmp_path):
        cache = tmp_path / "cache.json"
        cold = lint_pkg("r006_pkg", cache_path=cache)
        warm = lint_pkg("r006_pkg", cache_path=cache)
        assert cold.files_reanalyzed == 3 and cold.files_cached == 0
        assert warm.files_cached == 3 and warm.files_reanalyzed == 0
        dump = lambda r: json.dumps(r.as_dict(), indent=2, sort_keys=True)
        assert dump(cold) == dump(warm)

    def test_edit_reanalyzes_one_file_but_updates_chain_findings(
        self, tmp_path
    ):
        proj = tmp_path / "proj"
        cache = tmp_path / "cache.json"
        _write_taint_project(proj, "time.time()")
        first = lint_paths(
            [proj], rules=["R006"], root=proj, cache_path=cache
        )
        assert [f.rule for f in first.findings] == ["R006"]
        # Fix the helper: only it re-parses, yet the *dependent's*
        # interprocedural finding clears, because the graph pass always
        # re-runs over the current summaries.
        _write_taint_project(proj, "0.0")
        second = lint_paths(
            [proj], rules=["R006"], root=proj, cache_path=cache
        )
        assert second.files_reanalyzed == 1
        assert second.files_cached == 1
        assert second.ok, [f.format_text() for f in second.findings]
        # And breaking it again re-surfaces the finding identically.
        _write_taint_project(proj, "time.time()")
        third = lint_paths(
            [proj], rules=["R006"], root=proj, cache_path=cache
        )
        assert [f.as_dict() for f in third.findings] == [
            f.as_dict() for f in first.findings
        ]

    def test_corrupt_or_mismatched_cache_is_ignored(self, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = lint_pkg("r006_pkg", cache_path=cache)
        assert report.files_reanalyzed == 3
        # A --rules change invalidates wholesale (different active set).
        lint_pkg("r006_pkg", cache_path=cache)
        narrowed = lint_pkg("r006_pkg", rules=["R006"], cache_path=cache)
        assert narrowed.files_reanalyzed == 3

    def test_whole_repo_cold_equals_warm(self, tmp_path):
        cache = tmp_path / "cache.json"
        baseline = load_baseline(REPO_ROOT / ".reprolint-baseline.json")
        kwargs = dict(baseline=baseline, root=REPO_ROOT, cache_path=cache)
        cold = lint_paths([REPO_ROOT / "src"], **kwargs)
        warm = lint_paths([REPO_ROOT / "src"], **kwargs)
        assert cold.files_cached == 0 and warm.files_reanalyzed == 0
        assert json.dumps(cold.as_dict(), sort_keys=True) == json.dumps(
            warm.as_dict(), sort_keys=True
        )
        assert cold.ok


# ---------------------------------------------------------------------------
# baseline hygiene: stale entries are detected and prunable
# ---------------------------------------------------------------------------


class TestBaselinePruning:
    def _stale_baseline(self, tmp_path) -> Path:
        from repro.lint import Finding

        path = tmp_path / "baseline.json"
        write_baseline(
            path,
            [
                Finding("exists.py", 1, 0, "R001", "m"),
                Finding("gone/forever.py", 1, 0, "R005", "m"),
            ],
            reason="test",
        )
        (tmp_path / "exists.py").write_text("__all__ = []\n")
        return path

    def test_stale_entries_detected(self, tmp_path):
        path = self._stale_baseline(tmp_path)
        baseline = load_baseline(path)
        stale = baseline.stale_entries(tmp_path)
        assert [(e.path, e.rule) for e in stale] == [("gone/forever.py", "R005")]

    def test_prune_rewrites_only_stale(self, tmp_path):
        path = self._stale_baseline(tmp_path)
        pruned, removed = prune_baseline(path, tmp_path)
        assert [e.path for e in removed] == ["gone/forever.py"]
        assert [e.path for e in pruned.entries] == ["exists.py"]
        # Idempotent: a second prune removes nothing.
        again, removed_again = prune_baseline(path, tmp_path)
        assert removed_again == ()
        assert [e.path for e in again.entries] == ["exists.py"]

    def test_cli_prune_and_stale_warning(self, tmp_path, capsys, monkeypatch):
        path = self._stale_baseline(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = cli_main(
            ["lint", "--baseline", str(path), str(tmp_path / "exists.py")]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "gone/forever.py" in captured.err
        assert "--prune-baseline" in captured.err
        code = cli_main(["lint", "--prune-baseline", "--baseline", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "pruned stale baseline entry: gone/forever.py" in captured.out
        # After pruning, the warning is gone.
        code = cli_main(
            ["lint", "--baseline", str(path), str(tmp_path / "exists.py")]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "gone/forever.py" not in captured.err

    def test_committed_baseline_has_no_stale_entries(self):
        baseline = load_baseline(REPO_ROOT / ".reprolint-baseline.json")
        assert baseline.stale_entries(REPO_ROOT) == ()


# ---------------------------------------------------------------------------
# CLI surface for the new flags
# ---------------------------------------------------------------------------


class TestCliGraphFlags:
    # The CLI resolves findings relative to the working directory, so
    # fixture module names (`r006_pkg.clock`) only resolve from the
    # fixtures directory — chdir there, as a user would in their repo.

    def test_call_chain_renders_steps(self, capsys, monkeypatch):
        monkeypatch.chdir(FIXTURES)
        code = cli_main(
            ["lint", "--rules", "R006", "--call-chain", "--no-baseline",
             "r006_pkg"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "at " in out and "-> " in out
        assert "reads time.time()" in out

    def test_json_findings_carry_chain(self, capsys, monkeypatch):
        monkeypatch.chdir(FIXTURES)
        code = cli_main(
            ["lint", "--rules", "R006", "--format", "json", "--no-baseline",
             "r006_pkg"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        (finding,) = payload["findings"]
        assert len(finding["chain"]) == 2

    def test_no_graph_flag(self, capsys):
        code = cli_main(
            ["lint", "--rules", "R006", "--no-graph", "--no-baseline",
             str(FIXTURES / "r006_pkg")]
        )
        assert code == 0
        capsys.readouterr()

    def test_cache_flag_reports_warm_counts(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        for expected in ("0 file(s) warm", "3 file(s) warm"):
            code = cli_main(
                ["lint", "--rules", "R007", "--cache", str(cache),
                 "--no-baseline", str(FIXTURES / "r006_pkg")]
            )
            assert code == 0
            assert expected in capsys.readouterr().out

    def test_registries_are_split_and_complete(self):
        assert sorted(RULES) == [
            "R001", "R002", "R003", "R004", "R005", "R007", "R008"
        ]
        assert sorted(PROJECT_RULES) == ["R006", "R009"]
        assert all_rule_ids() == [
            "R001", "R002", "R003", "R004", "R005",
            "R006", "R007", "R008", "R009",
        ]
        for rule in list(RULES.values()) + list(PROJECT_RULES.values()):
            assert rule.summary
