"""Smoke tests: every example script runs and prints its report."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["paper bound", "global skew", "messages sent"],
    "sensor_network_tdma.py": ["guard band", "A^opt", "no sync"],
    "adversarial_lower_bounds.py": ["Theorem 7.2", "Theorem 7.7", "forced"],
    "parameter_tuning.py": ["H0 sweep", "mu sweep"],
    "external_time_source.py": ["GPS", "no clock ever ran ahead"],
    "convergence_demo.py": ["recovery slope", "Lemma 5.7", "settled"],
    "worst_case_gallery.py": ["panel 1", "panel 2", "panel 3", "Theorem 7.2"],
    "unknown_delay_bound.py": ["oracle", "adaptive", "never needed to be configured"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in result.stdout, (
            f"{script} output missing {snippet!r}:\n{result.stdout}"
        )


def test_all_examples_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS)
