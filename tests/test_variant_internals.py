"""White-box tests of variant node mechanics."""

import math

import pytest

from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay
from repro.sim.drift import ConstantDrift, PerNodeDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line
from repro.variants import (
    BitBudgetAoptAlgorithm,
    ExternalAoptAlgorithm,
    HardwareEnvelopeAoptAlgorithm,
    MinGapAoptAlgorithm,
    bit_budget_params,
)
from repro.variants.bit_budget import _BitBudgetNode
from repro.variants.discrete import _TickContext
from repro.variants.external import _ExternalNode, _SourceNode


def run_engine(topology, algorithm, drift, delay, horizon):
    engine = SimulationEngine(topology, algorithm, drift, delay, horizon)
    trace = engine.run()
    return engine, trace


class TestExternalInternals:
    def test_damped_lmax_growth(self, params):
        node = _ExternalNode(1, (0,), params)
        node._lmax_value = 10.0
        node._lmax_anchor = 5.0
        expected = 10.0 + (8.0 - 5.0) / (1 + params.epsilon_hat)
        assert node.l_max(8.0) == pytest.approx(expected)

    def test_source_never_boosts(self, params):
        drift = PerNodeDrift(params.epsilon, {0: 1.0}, default=1 - params.epsilon)
        engine, trace = run_engine(
            line(3), ExternalAoptAlgorithm(params, source=0), drift,
            ConstantDelay(params.delay_bound), 100.0,
        )
        assert isinstance(engine.node_state(0), _SourceNode)
        for t in (10.0, 50.0, 99.0):
            assert trace.logical[0].multiplier_at(t) == 1.0

    def test_followers_enter_damped_tracking(self, params):
        """Once caught up to the damped L^max, followers run at 1/(1+eps)."""
        drift = PerNodeDrift(params.epsilon, {0: 1.0}, default=1.0)
        engine, trace = run_engine(
            line(2), ExternalAoptAlgorithm(params, source=0), drift,
            ConstantDelay(0.01, max_delay=params.delay_bound), 200.0,
        )
        damped = 1 / (1 + params.epsilon_hat)
        multipliers = {trace.logical[1].multiplier_at(t) for t in (150.0, 199.0)}
        assert damped in multipliers


class TestHardwareEnvelopeInternals:
    def test_lmax_factor_switches(self, params):
        drift = TwoGroupDrift(params.epsilon, [0, 1])
        engine, _ = run_engine(
            line(4), HardwareEnvelopeAoptAlgorithm(params), drift,
            ConstantDelay(params.delay_bound), 100.0,
        )
        # The slow nodes received estimates above their hardware clocks at
        # some point; their lmax factor must be valid either way.
        for node in (2, 3):
            state = engine.node_state(node)
            assert state._lmax_factor in (1.0, state._damped)

    def test_damped_factor_formula(self, params):
        from repro.variants.envelope import _HardwareEnvelopeNode

        node = _HardwareEnvelopeNode(0, (1,), params)
        expected = (1 - params.epsilon_hat) / (1 + params.epsilon_hat)
        assert node._damped == pytest.approx(expected)


class TestBitBudgetInternals:
    @pytest.fixture
    def node(self):
        params = bit_budget_params(0.05, 1.0)
        return _BitBudgetNode(0, (1,), params)

    def test_cap_units_formula(self, node):
        params = node.params
        expected = math.ceil(
            (1 + params.epsilon_hat) * (1 + params.mu) / (1 - params.epsilon_hat)
        )
        assert node._cap_units == expected

    def test_first_encode_is_full_init(self, node):
        class Ctx:
            def logical(self):
                return 3.25

            def hardware(self):
                return 4.0

        payload = node._encode(Ctx())
        assert payload[0] == "init"
        assert payload[1] == pytest.approx(3.25)

    def test_delta_encoding_accumulates(self, node):
        class Ctx:
            def __init__(self):
                self.t = 0.0

            def logical(self):
                return self.t

            def hardware(self):
                return self.t

        ctx = Ctx()
        node._encode(ctx)  # init at 0
        ctx.t = 5.0
        kind, delta_steps, _ = node._encode(ctx)
        assert kind == "delta"
        quantum = node._quantum
        assert delta_steps == int(5.0 / quantum)
        # The receiver-side reconstruction never overestimates.
        assert node._sent_logical_base <= 5.0 + 1e-9

    def test_lmax_increment_capped(self, node):
        class Ctx:
            def logical(self):
                return 0.0

            def hardware(self):
                return 0.0

        node._encode(Ctx())  # init
        # Pretend L^max leapt by many multiples of H0.
        node._lmax_value = 50 * node.params.h0
        node._lmax_anchor = 0.0

        class Ctx2(Ctx):
            pass

        _, _, lmax_step = node._encode(Ctx2())
        assert lmax_step == node._cap_units  # capped, remainder carried
        _, _, second_step = node._encode(Ctx2())
        assert second_step == node._cap_units  # carry drains over messages

    def test_payload_bits_accounting(self):
        params = bit_budget_params(0.05, 1.0)
        algo = BitBudgetAoptAlgorithm(params)
        assert algo.payload_bits(("init", 0.0, 0)) == 129
        assert algo.payload_bits(("delta", 3, 1)) == algo.steady_state_bits()
        assert algo.steady_state_bits() < 20


class TestDiscreteTickContext:
    class FakeInner:
        node_id = 0
        neighbors = (1,)

        def __init__(self):
            self.alarms = {}
            self.sent = []

        def hardware(self):
            return 1.03

        def logical(self):
            return 2.07

        def set_rate_multiplier(self, rho):
            self.rho = rho

        def rate_multiplier(self):
            return 1.0

        def jump_logical(self, value):
            self.jumped = value

        def send_to(self, neighbor, payload):
            self.sent.append((neighbor, payload))

        def send_all(self, payload):
            self.sent.append(("all", payload))

        def set_alarm(self, name, value):
            self.alarms[name] = value

        def cancel_alarm(self, name):
            self.alarms.pop(name, None)

        def probe(self, name, value):
            pass

    def test_alarm_rounded_up(self):
        inner = self.FakeInner()
        ctx = _TickContext(inner, tick=0.25)
        ctx.set_alarm("x", 1.01)
        assert inner.alarms["x"] == pytest.approx(1.25)

    def test_exact_tick_not_moved(self):
        inner = self.FakeInner()
        ctx = _TickContext(inner, tick=0.25)
        ctx.set_alarm("x", 1.5)
        assert inner.alarms["x"] == pytest.approx(1.5)

    def test_payload_floored(self):
        inner = self.FakeInner()
        ctx = _TickContext(inner, tick=0.25)
        ctx.send_all((1.93, 2.49))
        _, payload = inner.sent[0]
        assert payload == (1.75, 2.25)

    def test_non_float_fields_passed_through(self):
        inner = self.FakeInner()
        ctx = _TickContext(inner, tick=0.25)
        ctx.send_to(1, ("tag", 1.93))
        _, payload = inner.sent[0]
        assert payload == ("tag", 1.75)


class TestMinGapInternals:
    def test_pending_send_collapses_bursts(self, params):
        """Many forwarded estimates inside one gap produce one deferred send."""
        drift = PerNodeDrift(params.epsilon, {0: 1 + params.epsilon}, default=1.0)
        engine, trace = run_engine(
            line(3), MinGapAoptAlgorithm(params), drift,
            ConstantDelay(0.01, max_delay=params.delay_bound), 150.0,
        )
        for node in range(3):
            active_hw = trace.hardware_value(node, 150.0)
            per_neighbor = trace.messages_sent[node] / len(
                line(3).neighbors(node)
            )
            assert per_neighbor <= active_hw / params.h0 + 2
