"""Tests for the deliberately broken ablation variants (E16 backing)."""

import pytest

from repro.analysis.metrics import check_envelope
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.sim.delays import ConstantDelay, ZeroDelay
from repro.sim.drift import PerNodeDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.variants.ablations import LazyForwardAopt, NoMaxCapAopt


class TestNoMaxCap:
    def test_envelope_breaks(self, params):
        """Without the L^max cap, mutual chasing exceeds (1+eps)t."""
        trace = run_execution(
            line(5),
            NoMaxCapAopt(params),
            TwoGroupDrift(params.epsilon, [0, 1]),
            ZeroDelay(max_delay=params.delay_bound),
            100.0,
        )
        assert check_envelope(trace, params.epsilon) > 1.0

    def test_violation_grows_with_time(self, params):
        def margin(horizon):
            trace = run_execution(
                line(5),
                NoMaxCapAopt(params),
                TwoGroupDrift(params.epsilon, [0, 1]),
                ZeroDelay(max_delay=params.delay_bound),
                horizon,
            )
            return check_envelope(trace, params.epsilon)

        assert margin(120.0) > 1.5 * margin(60.0)

    def test_rate_bounds_still_respected(self, params):
        """The ablation breaks the envelope, not Condition (2): clocks
        still run within [alpha, beta]."""
        from repro.analysis.metrics import check_rate_bounds

        trace = run_execution(
            line(4),
            NoMaxCapAopt(params),
            TwoGroupDrift(params.epsilon, [0, 1]),
            ZeroDelay(max_delay=params.delay_bound),
            80.0,
        )
        assert check_rate_bounds(trace, params.alpha, params.beta) <= 1e-7


class TestLazyForward:
    def test_envelope_still_holds(self, params):
        """Lazy forwarding is slow, not unsafe."""
        trace = run_execution(
            line(5),
            LazyForwardAopt(params),
            TwoGroupDrift(params.epsilon, [0, 1]),
            ConstantDelay(params.delay_bound),
            150.0,
        )
        assert check_envelope(trace, params.epsilon) <= 1e-7

    def test_worse_than_eager_on_steady_spread(self, params):
        large_h0 = params.with_overrides(h0=params.h0 * 4)
        drift = PerNodeDrift(
            params.epsilon, {0: 1 + params.epsilon}, default=1 - params.epsilon
        )
        delay = ConstantDelay(params.delay_bound)
        horizon = 300.0
        eager = run_execution(
            line(6), AoptAlgorithm(large_h0), drift, delay, horizon
        )
        lazy = run_execution(
            line(6), LazyForwardAopt(large_h0), drift, delay, horizon
        )
        assert lazy.spread_at(horizon - 1) > eager.spread_at(horizon - 1)

    def test_eager_within_bound_lazy_not(self, params):
        """The G bound certifies eager forwarding; the ablation exceeds it."""
        large_h0 = params.with_overrides(h0=params.h0 * 4)
        drift = PerNodeDrift(
            params.epsilon, {0: 1 + params.epsilon}, default=1 - params.epsilon
        )
        delay = ConstantDelay(params.delay_bound)
        horizon = 300.0
        bound = global_skew_bound(large_h0, 5)
        lazy = run_execution(
            line(6), LazyForwardAopt(large_h0), drift, delay, horizon
        )
        assert lazy.spread_at(horizon - 1) > bound
