"""Tests for the time-series and convergence analysis helpers."""

import pytest

from repro.analysis.timeseries import (
    ascii_chart,
    convergence_time,
    pair_skew_series,
    recovery_rate,
    series_to_csv,
    spread_series,
)
from repro.core.node import AoptAlgorithm
from repro.errors import TraceError
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line


@pytest.fixture
def trace(params):
    return run_execution(
        line(4),
        AoptAlgorithm(params),
        TwoGroupDrift(params.epsilon, [0, 1]),
        ConstantDelay(params.delay_bound),
        100.0,
    )


class TestSeriesExtraction:
    def test_spread_series_shape(self, trace):
        series = spread_series(trace, samples=50)
        assert len(series) == 50
        assert series[0][0] == 0.0
        assert series[-1][0] == pytest.approx(trace.horizon)
        assert all(value >= 0 for _, value in series)

    def test_pair_series_signed(self, trace):
        series = pair_skew_series(trace, 0, 3, samples=20)
        assert len(series) == 20
        assert any(value != 0 for _, value in series)

    def test_invalid_grid_rejected(self, trace):
        with pytest.raises(TraceError):
            spread_series(trace, samples=1)
        with pytest.raises(TraceError):
            spread_series(trace, t0=10.0, t1=5.0)

    def test_series_matches_trace_values(self, trace):
        series = spread_series(trace, samples=11)
        for t, value in series:
            assert value == pytest.approx(trace.spread_at(t))


class TestConvergenceTime:
    def test_detects_settling(self):
        series = [(float(t), 10.0 - t) for t in range(11)]  # decays to 0
        settle = convergence_time(series, threshold=3.0, hold=3)
        assert settle == pytest.approx(7.0)

    def test_never_converges(self):
        series = [(float(t), 10.0) for t in range(10)]
        assert convergence_time(series, threshold=3.0) is None

    def test_relapse_resets(self):
        series = [(0.0, 1.0), (1.0, 0.5), (2.0, 5.0), (3.0, 0.5), (4.0, 0.4),
                  (5.0, 0.3), (6.0, 0.2), (7.0, 0.1)]
        settle = convergence_time(series, threshold=0.6, hold=3)
        assert settle == pytest.approx(3.0)

    def test_hold_requirement(self):
        series = [(0.0, 1.0), (1.0, 0.1), (2.0, 0.1)]
        assert convergence_time(series, threshold=0.5, hold=5) is None


class TestRecoveryRate:
    def test_linear_decay_slope(self):
        # Peak 10 at t=5, decays at slope 2 down to 0 by t=10.
        series = [(float(t), min(2.0 * t, 10.0)) for t in range(6)]
        series += [(5.0 + t, 10.0 - 2.0 * t) for t in range(1, 6)]
        slope = recovery_rate(series)
        assert slope == pytest.approx(2.0, rel=0.1)

    def test_never_recovers_raises(self):
        series = [(float(t), float(t)) for t in range(10)]
        with pytest.raises(TraceError):
            recovery_rate(series)

    def test_empty_series_rejected(self):
        with pytest.raises(TraceError):
            recovery_rate([])


class TestTimeAbove:
    def test_counts_interval_durations(self):
        from repro.analysis.timeseries import time_above

        series = [(0.0, 1.0), (1.0, 5.0), (2.0, 5.0), (3.0, 1.0), (4.0, 5.0)]
        # Intervals [1,2] and [2,3] have left value >= 3; [4,...] has no
        # right endpoint so contributes nothing.
        assert time_above(series, 3.0) == pytest.approx(2.0)

    def test_all_below(self):
        from repro.analysis.timeseries import time_above

        series = [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]
        assert time_above(series, 3.0) == 0.0

    def test_too_short_rejected(self):
        from repro.analysis.timeseries import time_above
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            time_above([(0.0, 1.0)], 0.5)


class TestExport:
    def test_csv(self):
        text = series_to_csv([(0.0, 1.5), (1.0, 2.5)], header=("time", "skew"))
        lines = text.strip().splitlines()
        assert lines[0] == "time,skew"
        assert len(lines) == 3

    def test_ascii_chart_renders(self):
        series = [(float(t), abs(5.0 - t)) for t in range(11)]
        chart = ascii_chart(series, width=20, height=5, label="demo")
        assert "demo" in chart
        assert "max" in chart and "min" in chart
        assert "█" in chart

    def test_ascii_chart_empty_rejected(self):
        with pytest.raises(TraceError):
            ascii_chart([])

    def test_ascii_chart_constant_series(self):
        chart = ascii_chart([(0.0, 2.0), (1.0, 2.0)], width=4, height=3)
        assert "max 2.0000" in chart
