"""Tests for the §8.1 adaptive delay-bound variant."""

import pytest

from repro.analysis.metrics import check_envelope
from repro.core.params import SyncParams
from repro.errors import ConfigurationError
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import ConstantDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line
from repro.variants.adaptive_delay import AdaptiveDelayAoptAlgorithm

EPSILON = 0.05
DELAY = 1.0


def run(delay_model, horizon=250.0, n=6, initial=0.01, drift=None):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    algo = AdaptiveDelayAoptAlgorithm(params, initial_estimate=initial)
    engine = SimulationEngine(
        line(n),
        algo,
        drift or TwoGroupDrift(EPSILON, list(range(n // 2))),
        delay_model,
        horizon,
    )
    return engine, engine.run()


class TestEstimateConvergence:
    def test_estimate_upper_bounds_true_delay(self):
        engine, _ = run(UniformDelay(0.5, DELAY, seed=3))
        for node in range(6):
            state = engine.node_state(node)
            # Round trips took at least 2*0.5; estimates bound one delay.
            assert state._delay_estimate >= DELAY

    def test_estimate_within_constant_of_true(self):
        """§8.1: the estimate is in O(T) — at most the RTT measured by a
        fast clock and discounted by a slow one: 2T(1+ε)/(1−ε̂) ≈ 2.21·T."""
        engine, _ = run(ConstantDelay(DELAY))
        bound = 2 * DELAY * (1 + EPSILON) / (1 - EPSILON)
        for node in range(6):
            state = engine.node_state(node)
            assert state._delay_estimate <= bound + 1e-6

    def test_announcements_double(self):
        """Announced values at least double, bounding flood count."""
        engine, trace = run(UniformDelay(0.0, DELAY, seed=1))
        # Count distinct announced values seen in 'that' floods.
        state = engine.node_state(0)
        assert state._announced >= 0.02  # grew from 0.01 by doubling
        # Flood overhead is logarithmic: few doublings from 0.01 to ~2.
        # (2 / 0.01 = 200 -> at most ~8 doublings; each floods once per
        # node per neighbor.)
        assert trace.total_messages() < 20000

    def test_estimates_flood_to_all_nodes(self):
        engine, _ = run(ConstantDelay(DELAY))
        announced = {engine.node_state(n)._announced for n in range(6)}
        assert len(announced) == 1  # everyone converged to the same value


class TestSafetyDuringAdaptation:
    def test_envelope_holds_throughout(self):
        _, trace = run(UniformDelay(0.0, DELAY, seed=5))
        assert check_envelope(trace, EPSILON) <= 1e-7

    def test_synchronizes_despite_unknown_t(self):
        _, trace = run(ConstantDelay(DELAY), horizon=300.0)
        free_running = 2 * EPSILON * 300.0
        assert trace.global_skew().value < free_running

    def test_underestimate_phase_is_harmless(self):
        """With an absurdly small initial estimate, the early phase uses a
        tiny kappa — which is *more* aggressive, not unsafe (the paper's
        'skew bounds hold with respect to the smaller delays' remark)."""
        _, trace = run(ConstantDelay(0.2, max_delay=DELAY), initial=1e-4)
        assert check_envelope(trace, EPSILON) <= 1e-7

    def test_kappa_tracks_estimate(self):
        engine, _ = run(ConstantDelay(DELAY))
        state = engine.node_state(2)
        params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        expected = 2 * (
            (1 + EPSILON) * (1 + params.mu) * state._delay_estimate
            + params.h_bar_0
        )
        assert state.current_kappa() == pytest.approx(expected)


class TestConstruction:
    def test_invalid_initial_estimate(self):
        params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        with pytest.raises(ConfigurationError):
            AdaptiveDelayAoptAlgorithm(params, initial_estimate=0.0)
