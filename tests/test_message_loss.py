"""Tests for the lossy-channel robustness extension."""

import pytest

from repro.analysis.metrics import check_envelope
from repro.core.node import AoptAlgorithm
from repro.errors import ScheduleError
from repro.sim.delays import DROP, ConstantDelay, LossyDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line


class TestLossyDelayModel:
    def test_invalid_loss_rejected(self):
        with pytest.raises(ScheduleError):
            LossyDelay(ConstantDelay(1.0), loss=1.0)
        with pytest.raises(ScheduleError):
            LossyDelay(ConstantDelay(1.0), loss=-0.1)

    def test_zero_loss_is_transparent(self):
        model = LossyDelay(ConstantDelay(0.5), loss=0.0, seed=1)
        for i in range(50):
            assert model.delay("a", "b", float(i), i) == 0.5

    def test_drop_fraction_matches_loss_rate(self):
        model = LossyDelay(ConstantDelay(0.5), loss=0.3, seed=7)
        outcomes = [model.delay("a", "b", float(i), i) for i in range(2000)]
        dropped = sum(1 for value in outcomes if value == DROP)
        assert 0.25 < dropped / 2000 < 0.35

    def test_deterministic_per_seed(self):
        a = LossyDelay(ConstantDelay(0.5), loss=0.5, seed=3)
        b = LossyDelay(ConstantDelay(0.5), loss=0.5, seed=3)
        assert [a.delay("x", "y", 0, i) for i in range(30)] == [
            b.delay("x", "y", 0, i) for i in range(30)
        ]

    def test_validated_delay_passes_drop_through(self):
        model = LossyDelay(ConstantDelay(0.5), loss=0.9999999, seed=1)
        # Practically every call drops; validated_delay must not reject it.
        assert model.validated_delay("a", "b", 0.0, 0) == DROP


class TestLossyExecution:
    def test_dropped_messages_counted(self, params):
        trace = run_execution(
            line(5),
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, [0, 1]),
            LossyDelay(ConstantDelay(params.delay_bound), loss=0.2, seed=5),
            150.0,
        )
        assert trace.messages_dropped > 0
        total_deliveries = sum(trace.messages_received.values())
        in_flight = trace.total_messages() - total_deliveries - trace.messages_dropped
        # Every sent message is delivered, dropped, or still in flight at
        # the horizon (at most one per directed edge per delay window).
        assert 0 <= in_flight <= 4 * len(trace.topology.edges())

    def test_aopt_still_synchronizes_under_loss(self, params):
        lossless = run_execution(
            line(5),
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, [0, 1]),
            ConstantDelay(params.delay_bound),
            300.0,
        )
        lossy = run_execution(
            line(5),
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, [0, 1]),
            LossyDelay(ConstantDelay(params.delay_bound), loss=0.3, seed=5),
            300.0,
        )
        free_running = 2 * params.epsilon * 300.0
        assert lossy.global_skew().value < free_running
        # Degradation is graceful: within a few kappas of the lossless run.
        assert (
            lossy.global_skew().value
            <= lossless.global_skew().value + 4 * params.kappa
        )

    def test_envelope_survives_loss(self, params):
        trace = run_execution(
            line(4),
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, [0, 1]),
            LossyDelay(ConstantDelay(params.delay_bound), loss=0.4, seed=9),
            200.0,
        )
        assert check_envelope(trace, params.epsilon) <= 1e-7
