"""Unit tests for delay models."""

import pytest

from repro.errors import ScheduleError
from repro.sim.delays import (
    ConstantDelay,
    DistanceDirectedDelay,
    EdgeScheduleDelay,
    FunctionDelay,
    UniformDelay,
    ZeroDelay,
)
from repro.sim.rates import PiecewiseConstantRate


class TestConstantDelay:
    def test_value(self):
        model = ConstantDelay(0.5)
        assert model.delay("a", "b", 0.0, 0) == 0.5
        assert model.max_delay == 0.5

    def test_separate_max(self):
        model = ConstantDelay(0.5, max_delay=1.0)
        assert model.max_delay == 1.0

    def test_value_above_max_rejected(self):
        with pytest.raises(ScheduleError):
            ConstantDelay(2.0, max_delay=1.0)

    def test_negative_max_rejected(self):
        with pytest.raises(ScheduleError):
            ConstantDelay(-1.0)


class TestZeroDelay:
    def test_zero(self):
        model = ZeroDelay(max_delay=1.0)
        assert model.delay("a", "b", 5.0, 3) == 0.0
        assert model.max_delay == 1.0


class TestUniformDelay:
    def test_within_range(self):
        model = UniformDelay(0.2, 0.8, seed=1)
        for i in range(100):
            value = model.delay("a", "b", float(i), i)
            assert 0.2 <= value <= 0.8

    def test_deterministic_per_seed(self):
        a = UniformDelay(0.0, 1.0, seed=7)
        b = UniformDelay(0.0, 1.0, seed=7)
        assert [a.delay("x", "y", 0, i) for i in range(5)] == [
            b.delay("x", "y", 0, i) for i in range(5)
        ]

    def test_invalid_range_rejected(self):
        with pytest.raises(ScheduleError):
            UniformDelay(0.5, 0.2)
        with pytest.raises(ScheduleError):
            UniformDelay(0.5, 2.0, max_delay=1.0)


class TestFunctionDelay:
    def test_delegates(self):
        model = FunctionDelay(lambda s, r, t, q: 0.25, max_delay=1.0)
        assert model.delay("a", "b", 0.0, 0) == 0.25

    def test_validation_rejects_out_of_range(self):
        model = FunctionDelay(lambda s, r, t, q: 2.0, max_delay=1.0)
        with pytest.raises(ScheduleError):
            model.validated_delay("a", "b", 0.0, 0)

    def test_validation_clamps_float_noise(self):
        model = FunctionDelay(lambda s, r, t, q: -1e-13, max_delay=1.0)
        assert model.validated_delay("a", "b", 0.0, 0) == 0.0


class TestEdgeScheduleDelay:
    def test_per_edge_schedule(self):
        schedule = PiecewiseConstantRate([0.0, 10.0], [0.1, 0.9])
        model = EdgeScheduleDelay({("a", "b"): schedule}, max_delay=1.0, default=0.3)
        assert model.delay("a", "b", 5.0, 0) == 0.1
        assert model.delay("a", "b", 15.0, 0) == 0.9
        assert model.delay("b", "a", 5.0, 0) == 0.3


class TestDistanceDirectedDelay:
    def test_direction(self):
        distances = {"root": 0, "mid": 1, "leaf": 2}
        model = DistanceDirectedDelay(distances, toward=1.0, away=0.0)
        assert model.delay("leaf", "mid", 0.0, 0) == 1.0  # toward root
        assert model.delay("mid", "leaf", 0.0, 0) == 0.0  # away from root

    def test_max_delay_defaults_to_larger(self):
        model = DistanceDirectedDelay({"a": 0, "b": 1}, toward=0.3, away=0.7)
        assert model.max_delay == 0.7
