"""Tests for the §5.3 instant-jump variant of A^opt."""

import pytest

from repro.analysis.metrics import check_envelope
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.sim.delays import ConstantDelay
from repro.sim.drift import PerNodeDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.topology.properties import diameter
from repro.variants import JumpAoptAlgorithm


class TestJumpAopt:
    def test_clocks_jump(self, params):
        drift = PerNodeDrift(params.epsilon, {0: 1 + params.epsilon}, default=1.0)
        trace = run_execution(
            line(4), JumpAoptAlgorithm(params), drift,
            ConstantDelay(params.delay_bound), 100.0,
        )
        assert any(trace.logical[n].jump_times for n in range(1, 4))

    def test_skew_bounds_still_hold(self, params):
        """The remark after Theorem 5.10: the bounds survive jumping."""
        topology = line(8)
        d = diameter(topology)
        drift = TwoGroupDrift(params.epsilon, [0, 1, 2, 3])
        trace = run_execution(
            topology, JumpAoptAlgorithm(params), drift,
            ConstantDelay(params.delay_bound), 200.0,
        )
        assert trace.global_skew().value <= global_skew_bound(params, d) + 1e-7
        assert trace.local_skew().value <= local_skew_bound(params, d) + 1e-7

    def test_envelope_still_holds(self, params):
        """Jumps are capped by L^max, so Condition (1) survives too."""
        drift = TwoGroupDrift(params.epsilon, [0, 1])
        trace = run_execution(
            line(5), JumpAoptAlgorithm(params), drift,
            ConstantDelay(params.delay_bound), 150.0,
        )
        assert check_envelope(trace, params.epsilon) <= 1e-7

    def test_matches_rate_based_aopt_skew_closely(self, params):
        """Same adversary: jumping converges at least as fast."""
        drift = TwoGroupDrift(params.epsilon, [0, 1, 2])
        delay = ConstantDelay(params.delay_bound)
        jump = run_execution(
            line(6), JumpAoptAlgorithm(params), drift, delay, 200.0
        )
        smooth = run_execution(
            line(6), AoptAlgorithm(params), drift, delay, 200.0
        )
        # Steady-state spreads comparable (within one kappa).
        assert jump.spread_at(199.0) <= smooth.spread_at(199.0) + params.kappa

    def test_rate_multiplier_never_raised(self, params):
        drift = TwoGroupDrift(params.epsilon, [0, 1])
        trace = run_execution(
            line(4), JumpAoptAlgorithm(params), drift,
            ConstantDelay(params.delay_bound), 100.0,
        )
        for node in range(4):
            for t in (20.0, 60.0, 99.0):
                assert trace.logical[node].multiplier_at(t) == 1.0
