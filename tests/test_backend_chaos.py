"""Chaos acceptance: a SIGKILL-riddled campaign converges byte-identically.

The acceptance criterion for the fault-tolerant campaign stack
(see docs/EXECUTION.md): a work-queue campaign of 200+ specs in which
at least 30% of the workers are SIGKILLed mid-attempt must

* converge to results byte-identical (pickled summaries) to a
  fault-free serial run,
* record every killed worker's stale lease as reclaimed,
* keep every spec's total attempt count within the retry budget
  (``max_retries + 1``), as witnessed by the campaign manifest, and
* when respawning is disabled, leave a resumable manifest from which a
  second invocation completes the campaign — still byte-identical.

These spawn dozens of worker processes and run hundreds of simulations,
so the module is marked ``slow`` and excluded from tier-1 runs
(pyproject ``addopts``); run it via ``make test-backend`` or
``pytest -m 'slow and backend'``.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.exec import ExecutionSpec, SweepExecutor
from repro.exec.backend import ChaosConfig, WorkQueue, WorkQueueBackend
from repro.exec.manifest import CampaignManifest
from repro.exec.retry import RetryPolicy
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.topology.generators import line

pytestmark = [pytest.mark.backend, pytest.mark.slow]

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)

#: Campaign size for the acceptance run (the criterion demands >= 200).
N_SPECS = 200
WORKERS = 6
#: ceil(0.34 * 6) = 3 of 6 workers are doomed — >= 30% killed.
KILL_FRACTION = 0.34


def _campaign_specs(count: int = N_SPECS):
    return [
        ExecutionSpec(
            line(3), AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0]), ConstantDelay(1.0),
            6.0, seed=i, label=f"chaos{i}",
        )
        for i in range(count)
    ]


def _assert_byte_identical(serial, other):
    assert len(serial) == len(other)
    for s, o in zip(serial, other):
        assert s.index == o.index
        assert s.error is None and o.error is None
        assert pickle.dumps(s.summary) == pickle.dumps(o.summary), (
            f"summary mismatch for {s.spec.label}"
        )


class TestChaosAcceptance:
    def test_campaign_survives_worker_massacre(self, tmp_path):
        specs = _campaign_specs()
        serial = SweepExecutor(workers=1, backend="serial").run(specs)

        doomed = math.ceil(KILL_FRACTION * WORKERS)
        assert doomed / WORKERS >= 0.30

        retry = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
        chaos = ChaosConfig(
            kill_fraction=KILL_FRACTION, kill_after=2, respawn=True
        )
        executor = SweepExecutor(
            workers=WORKERS, retry=retry,
            backend=WorkQueueBackend(
                tmp_path / "q", lease_ttl=1.0, chaos=chaos
            ),
        )
        manifest = CampaignManifest.for_specs(
            specs, path=tmp_path / "manifest.json"
        )
        outcomes = executor.run(specs, manifest=manifest)

        _assert_byte_identical(serial, outcomes)

        # Each doomed worker died holding exactly one lease; every one of
        # those leases must have been reclaimed by a survivor.
        assert executor.last_metrics.lease_reclaims == doomed
        assert WorkQueue(tmp_path / "q").reclaim_count() == doomed

        final = CampaignManifest.load(tmp_path / "manifest.json")
        assert final.complete
        assert final.counts()["done"] == N_SPECS
        for digest in final.digests():
            assert final.attempts(digest) <= retry.attempts_allowed

    def test_no_respawn_campaign_resumes_to_completion(self, tmp_path):
        specs = _campaign_specs(60)
        serial = SweepExecutor(workers=1, backend="serial").run(specs)
        retry = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)

        # Every worker dies after its second claim and nothing respawns:
        # the campaign halts early with most work still pending.
        chaos = ChaosConfig(kill_fraction=1.0, kill_after=1, respawn=False)
        manifest = CampaignManifest.for_specs(
            specs, path=tmp_path / "manifest.json"
        )
        interrupted = SweepExecutor(
            workers=3, retry=retry,
            backend=WorkQueueBackend(
                tmp_path / "q", lease_ttl=1.0, chaos=chaos
            ),
        ).run(specs, manifest=manifest)
        assert len(interrupted) < len(specs)

        partial = CampaignManifest.load(tmp_path / "manifest.json")
        assert not partial.complete
        assert partial.counts()["done"] == len(interrupted)

        # Resume against the same queue directory: done work replays,
        # the rest executes, and the result matches the serial baseline.
        resumed = SweepExecutor(
            workers=3, retry=retry,
            backend=WorkQueueBackend(tmp_path / "q", lease_ttl=1.0),
        ).run(specs, manifest=partial)
        _assert_byte_identical(serial, resumed)

        final = CampaignManifest.load(tmp_path / "manifest.json")
        assert final.complete
        for digest in final.digests():
            assert final.attempts(digest) <= retry.attempts_allowed
