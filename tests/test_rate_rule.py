"""Unit and property tests for the Algorithm 3 rate rule.

The closed form is verified against a brute-force oracle that scans a
fine grid around the candidate supremum, and against the worked examples
given in Section 4.2 of the paper.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rate_rule import clamped_rate_increase, integer_levels, raw_rate_increase
from repro.errors import ConfigurationError


def condition_holds(lambda_up: float, lambda_down: float, kappa: float, r: float) -> bool:
    """The literal predicate of Algorithm 3 line 1."""
    return math.floor((lambda_up - r) / kappa) >= math.floor((lambda_down + r) / kappa)


def brute_force_sup(lambda_up: float, lambda_down: float, kappa: float) -> float:
    """Oracle: scan a fine grid for the largest R satisfying the predicate.

    The predicate is monotone (true below the sup, false above), so a grid
    scan brackets the supremum to within the grid step.
    """
    lo, hi = -10 * kappa - abs(lambda_up) - abs(lambda_down), 10 * kappa + abs(
        lambda_up
    ) + abs(lambda_down)
    step = kappa / 4096
    best = lo
    r = lo
    while r <= hi:
        if condition_holds(lambda_up, lambda_down, kappa, r):
            best = r
        r += step
    return best


class TestPaperExamples:
    def test_symmetric_half_kappa(self):
        """§4.2: Λ↑ = Λ↓ = (s + ½)κ gives R = κ/2 for any s."""
        kappa = 2.0
        for s in range(4):
            value = (s + 0.5) * kappa
            assert raw_rate_increase(value, value, kappa) == pytest.approx(kappa / 2)

    def test_blocked_case_nonpositive(self):
        """§4.2: Λ↑ ≤ sκ and Λ↓ ≥ sκ for some s ∈ N0 implies R ≤ 0."""
        kappa = 1.0
        for s in range(4):
            for up_slack in (0.0, 0.3, 0.99):
                for down_slack in (0.0, 0.4, 1.7):
                    r = raw_rate_increase(
                        s * kappa - up_slack, s * kappa + down_slack, kappa
                    )
                    assert r <= 1e-12

    def test_far_behind_neighbor_blocks(self):
        """A neighbor more than κ behind at the same level blocks progress."""
        assert raw_rate_increase(0.0, 1.5, 1.0) <= 0.0

    def test_far_ahead_neighbor_pulls(self):
        """A neighbor far ahead with none behind yields a large increase."""
        r = raw_rate_increase(5.0, -4.0, 1.0)
        assert r > 4.0


class TestClosedFormAgainstOracle:
    @given(
        lambda_up=st.floats(-5.0, 10.0),
        lambda_down=st.floats(-5.0, 10.0),
        kappa=st.floats(0.1, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, lambda_up, lambda_down, kappa):
        exact = raw_rate_increase(lambda_up, lambda_down, kappa)
        approx = brute_force_sup(lambda_up, lambda_down, kappa)
        assert exact == pytest.approx(approx, abs=kappa / 2048)

    @given(
        lambda_up=st.floats(-5.0, 10.0),
        lambda_down=st.floats(-5.0, 10.0),
        kappa=st.floats(0.1, 3.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_predicate_holds_just_below_sup(self, lambda_up, lambda_down, kappa):
        """The predicate must hold at R − δ and fail at R + δ."""
        r = raw_rate_increase(lambda_up, lambda_down, kappa)
        delta = kappa / 1000
        assert condition_holds(lambda_up, lambda_down, kappa, r - delta)
        assert not condition_holds(lambda_up, lambda_down, kappa, r + delta)


class TestInvariances:
    @given(
        lambda_up=st.floats(-5.0, 10.0),
        lambda_down=st.floats(-5.0, 10.0),
        kappa=st.floats(0.1, 3.0),
        shift=st.floats(-2.0, 2.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_shift_equivariance(self, lambda_up, lambda_down, kappa, shift):
        """Lemma 5.1's core: moving R between the two skews shifts the sup.

        Increasing the clock by x decreases Λ↑ by x and increases Λ↓ by x;
        the remaining admissible increase must drop by exactly x.
        """
        base = raw_rate_increase(lambda_up, lambda_down, kappa)
        moved = raw_rate_increase(lambda_up - shift, lambda_down + shift, kappa)
        assert moved == pytest.approx(base - shift, abs=1e-9)

    @given(
        lambda_up=st.floats(-5.0, 10.0),
        lambda_down=st.floats(-5.0, 10.0),
        kappa=st.floats(0.1, 3.0),
        scale=st.floats(0.1, 5.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_scale_equivariance(self, lambda_up, lambda_down, kappa, scale):
        base = raw_rate_increase(lambda_up, lambda_down, kappa)
        scaled = raw_rate_increase(lambda_up * scale, lambda_down * scale, kappa * scale)
        assert scaled == pytest.approx(base * scale, rel=1e-9, abs=1e-9)

    def test_invalid_kappa_rejected(self):
        with pytest.raises(ConfigurationError):
            raw_rate_increase(1.0, 1.0, 0.0)

    def test_integer_levels(self):
        assert integer_levels(2.5, 2.5, 1.0) == 2


class TestClamping:
    def test_kappa_tolerance_floor(self):
        """Line 2: a skew below κ is always tolerated (R ≥ κ − Λ↓)."""
        # Raw rule would block (Λ↑ very negative) but Λ↓ < κ frees κ − Λ↓.
        r = clamped_rate_increase(-5.0, 0.3, 1.0, headroom=10.0)
        assert r == pytest.approx(0.7)

    def test_headroom_cap(self):
        """Line 2: never increase beyond L^max − L."""
        r = clamped_rate_increase(5.0, -4.0, 1.0, headroom=0.25)
        assert r == pytest.approx(0.25)

    def test_zero_headroom_blocks(self):
        assert clamped_rate_increase(5.0, -4.0, 1.0, headroom=0.0) == 0.0

    @given(
        lambda_up=st.floats(-5.0, 10.0),
        lambda_down=st.floats(-5.0, 10.0),
        kappa=st.floats(0.1, 3.0),
        headroom=st.floats(0.0, 5.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_exceeds_headroom(self, lambda_up, lambda_down, kappa, headroom):
        assert clamped_rate_increase(lambda_up, lambda_down, kappa, headroom) <= headroom
