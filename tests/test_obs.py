"""Tests for the observability layer (``repro.obs``).

Covers :class:`RunMetrics` engine counters (and that disabling them is a
strict no-op), the metrics-on/metrics-off summary equivalence, the
:class:`SweepMetrics` accounting in :class:`SweepExecutor`, the cache
hit/miss/corrupt counters and orphaned-``*.tmp`` hygiene, the JSONL
event-log export, and the ``repro profile`` harness.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import TraceError
from repro.exec import ExecutionSpec, ResultCache, SweepExecutor
from repro.exec.summary import summarize_trace
from repro.obs import RunMetrics, SweepMetrics, event_log_digest
from repro.obs.profile import profile_specs
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import ConstantDrift, RandomWalkDrift
from repro.topology.generators import line, ring

pytestmark = pytest.mark.obs

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
HORIZON = 40.0


def make_spec(n: int = 4, seed: int = 0, label: str = "obs-case") -> ExecutionSpec:
    return ExecutionSpec(
        line(n),
        AoptAlgorithm(PARAMS),
        ConstantDrift(PARAMS.epsilon),
        ConstantDelay(1.0, max_delay=1.0),
        HORIZON,
        seed=seed,
        params=PARAMS,
        label=label,
    )


def make_random_spec(seed: int = 3, label: str = "obs-random") -> ExecutionSpec:
    return ExecutionSpec(
        ring(5),
        AoptAlgorithm(PARAMS),
        RandomWalkDrift(0.05, step_period=5.0, step_size=0.02, seed=seed),
        UniformDelay(0.0, 1.0, seed=seed),
        HORIZON,
        seed=seed,
        params=PARAMS,
        label=label,
    )


# ---------------------------------------------------------------------------
# RunMetrics engine counters
# ---------------------------------------------------------------------------


class TestRunMetrics:
    def test_event_counts_match_trace(self):
        trace, _ = make_spec().run(collect_metrics=True)
        metrics = trace.metrics
        assert metrics is not None
        assert metrics.events_processed == trace.events_processed
        assert sum(metrics.events_by_type.values()) == trace.events_processed
        assert metrics.events_by_type["wake"] == 1
        assert metrics.events_by_type["delivery"] > 0
        assert metrics.sends > 0
        assert metrics.queue_depth_hwm > 0
        assert metrics.alarms_fired <= metrics.alarms_set

    def test_checkpoint_and_breakpoint_counts_match_records(self):
        trace, _ = make_random_spec().run(collect_metrics=True)
        metrics = trace.metrics
        for node, record in trace.logical.items():
            assert metrics.checkpoints_by_node[node] == record.checkpoint_count
            assert metrics.breakpoints_by_node[node] == len(
                record.breakpoints_in(record.start_time, trace.horizon)
            )

    def test_phase_timings_cover_all_phases(self):
        trace, monitors = make_spec().run(collect_metrics=True)
        summarize_trace(trace, monitors=monitors)
        assert set(trace.metrics.phase_seconds) == {
            "setup", "run", "trace", "skew-eval"
        }
        assert all(v >= 0.0 for v in trace.metrics.phase_seconds.values())

    def test_disabled_is_strict_noop(self):
        trace_off, _ = make_spec().run()
        assert trace_off.metrics is None
        assert trace_off.event_log is None

    def test_counters_deterministic_across_runs(self):
        spec = make_random_spec()
        m1 = spec.run(collect_metrics=True)[0].metrics
        m2 = spec.run(collect_metrics=True)[0].metrics
        assert m1.stripped() == m2.stripped()

    def test_stripped_drops_timings_keeps_counters(self):
        trace, _ = make_spec().run(collect_metrics=True)
        metrics = trace.metrics
        stripped = metrics.stripped()
        assert stripped.phase_seconds == {}
        assert stripped.events_by_type == metrics.events_by_type
        assert stripped.sends == metrics.sends
        assert stripped.queue_depth_hwm == metrics.queue_depth_hwm
        # A deep copy: mutating the stripped form leaves the original alone.
        stripped.events_by_type["wake"] = 999
        assert metrics.events_by_type["wake"] == 1

    def test_counter_rows_and_as_dict(self):
        trace, _ = make_spec().run(collect_metrics=True)
        d = trace.metrics.as_dict()
        assert d["events_processed"] == trace.events_processed
        rows = dict(
            (name, value) for name, value in trace.metrics.counter_rows()
        )
        assert rows["events_processed"] == trace.events_processed
        assert rows["sends"] == trace.metrics.sends


# ---------------------------------------------------------------------------
# summary equivalence: metrics on vs off
# ---------------------------------------------------------------------------


class TestSummaryEquivalence:
    def test_metrics_do_not_change_results(self):
        spec = make_random_spec()
        s_on = spec.run_summary(collect_metrics=True)
        s_off = spec.run_summary()
        assert s_on.run_metrics is not None
        assert s_off.run_metrics is None
        # Identical in every field except the attached metrics.
        assert dataclasses.replace(s_on, run_metrics=None) == s_off
        assert pickle.dumps(dataclasses.replace(s_on, run_metrics=None)) == (
            pickle.dumps(s_off)
        )

    def test_metrics_on_summaries_byte_identical_across_runs(self):
        spec = make_random_spec()
        assert pickle.dumps(spec.run_summary(collect_metrics=True)) == (
            pickle.dumps(spec.run_summary(collect_metrics=True))
        )


# ---------------------------------------------------------------------------
# cache accounting and hygiene
# ---------------------------------------------------------------------------


class TestCacheAccounting:
    def test_miss_then_hit_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        assert cache.get(spec.digest()) is None
        assert (cache.hits, cache.misses, cache.corrupt) == (0, 1, 0)
        summary = spec.run_summary()
        cache.put(spec.digest(), summary)
        assert cache.get(spec.digest()) == summary
        assert (cache.hits, cache.misses, cache.corrupt) == (1, 1, 0)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["orphan_tmp"] == 0
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_unreadable_entry_counts_as_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        path = cache.path_for(spec.digest())
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(spec.digest()) is None
        assert (cache.hits, cache.misses, cache.corrupt) == (0, 0, 1)

    def test_digest_mismatch_counts_as_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        other = make_spec(n=5)
        cache.put(spec.digest(), spec.run_summary())
        # Copy the valid entry under the wrong digest's path.
        wrong = cache.path_for(other.digest())
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_bytes(cache.path_for(spec.digest()).read_bytes())
        assert cache.get(other.digest()) is None
        assert cache.corrupt == 1

    def test_clear_removes_orphaned_tmp_files(self, tmp_path):
        """Regression: ``clear()`` used to leave ``*.tmp`` orphans behind."""
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec.digest(), spec.run_summary())
        # Simulate a worker killed mid-put: a stray tmp in an entry dir.
        orphan = cache.path_for(spec.digest()).parent / "orphanXYZ.tmp"
        orphan.write_bytes(b"partial write")
        assert [p.name for p in cache.orphan_tmp_files()] == ["orphanXYZ.tmp"]
        assert cache.stats()["orphan_tmp"] == 1
        assert cache.clear() == 1  # orphans don't count as entries
        assert not orphan.exists()
        assert len(cache) == 0
        assert cache.orphan_tmp_files() == []

    def test_metrics_on_and_off_use_distinct_cache_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [make_spec()]
        on = SweepExecutor(workers=1, cache=cache, collect_metrics=True)
        off = SweepExecutor(workers=1, cache=cache)
        s_on = on.run(specs)[0].summary
        assert s_on.run_metrics is not None
        # The metrics-off lookup must not be served the metrics-on entry.
        outcome_off = off.run(specs)[0]
        assert not outcome_off.cached
        assert outcome_off.summary.run_metrics is None
        # Both now hit their own entries.
        assert on.run(specs)[0].cached
        assert off.run(specs)[0].cached


# ---------------------------------------------------------------------------
# SweepMetrics
# ---------------------------------------------------------------------------


class _AlwaysFails(ConstantDelay):
    def delay(self, sender, receiver, send_time, seq) -> float:
        raise RuntimeError("injected failure")


class TestSweepMetrics:
    def test_executor_populates_last_metrics(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [make_spec(n, label=f"line-{n}") for n in (3, 4, 5)]
        executor = SweepExecutor(workers=1, cache=cache)
        executor.run(specs)
        metrics = executor.last_metrics
        assert metrics.total_specs == 3
        assert metrics.workers == 1
        assert metrics.cache_misses == 3 and metrics.cache_hits == 0
        assert metrics.executed == 3 and metrics.failed == 0
        assert sorted(metrics.per_spec_seconds) == [0, 1, 2]
        assert all(s >= 0.0 for s in metrics.per_spec_seconds.values())
        assert metrics.wall_seconds > 0.0
        assert metrics.hit_rate() == 0.0
        # Second run: all hits, nothing executed.
        executor.run(specs)
        metrics = executor.last_metrics
        assert metrics.cache_hits == 3 and metrics.executed == 0
        assert metrics.hit_rate() == 1.0
        assert metrics.per_spec_seconds == {}

    def test_failed_specs_counted(self):
        bad = ExecutionSpec(
            line(3), AoptAlgorithm(PARAMS), ConstantDrift(0.05),
            _AlwaysFails(1.0, max_delay=1.0), HORIZON, label="bad",
        )
        executor = SweepExecutor(workers=1)
        outcomes = executor.run([make_spec(), bad])
        assert [o.ok for o in outcomes] == [True, False]
        assert executor.last_metrics.executed == 2
        assert executor.last_metrics.failed == 1

    def test_utilization_and_note(self):
        metrics = SweepMetrics(
            total_specs=4, workers=2, wall_seconds=2.0,
            per_spec_seconds={0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0},
        )
        assert metrics.busy_seconds == pytest.approx(4.0)
        assert metrics.utilization() == pytest.approx(1.0)
        metrics.note("timeout")
        metrics.note("timeout", 2)
        assert metrics.quarantine == {"timeout": 3}
        payload = json.loads(metrics.to_json())
        assert payload["quarantine"] == {"timeout": 3}
        assert payload["utilization"] == pytest.approx(1.0)
        labels = [row[0] for row in metrics.summary_rows()]
        assert "cache hit-rate" in labels
        assert "quarantine[timeout]" in labels


# ---------------------------------------------------------------------------
# JSONL event-log export
# ---------------------------------------------------------------------------


class TestEventLogExport:
    def test_export_without_recording_raises(self, tmp_path):
        trace, _ = make_spec().run()
        with pytest.raises(TraceError):
            trace.export_events(tmp_path / "events.jsonl")

    def test_roundtrip_structure_and_digest(self, tmp_path):
        spec = make_spec()
        trace, _ = spec.run(record_events=True)
        path = tmp_path / "events.jsonl"
        digest = trace.export_events(path, spec_digest=spec.digest())
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        footer = json.loads(lines[-1])
        records = [json.loads(line) for line in lines[1:-1]]
        assert header["kind"] == "header"
        assert header["spec_digest"] == spec.digest()
        assert header["events"] == len(trace.event_log) == len(records)
        assert footer["kind"] == "footer"
        assert footer["sha256"] == digest == event_log_digest(trace.event_log)
        kinds = {record["kind"] for record in records}
        assert "send" in kinds and "deliver" in kinds
        # Every record names its instant and node.
        assert all("t" in record and "node" in record for record in records)

    def test_export_deterministic_across_runs(self, tmp_path):
        spec = make_random_spec()
        digests = []
        for name in ("a.jsonl", "b.jsonl"):
            trace, _ = spec.run(record_events=True)
            digests.append(trace.export_events(tmp_path / name))
        assert digests[0] == digests[1]
        assert (tmp_path / "a.jsonl").read_bytes() == (
            tmp_path / "b.jsonl"
        ).read_bytes()

    def test_crash_and_jump_records(self, tmp_path):
        from repro.faults import FaultSchedule

        spec = ExecutionSpec(
            line(4), AoptAlgorithm(PARAMS), ConstantDrift(0.05),
            ConstantDelay(1.0, max_delay=1.0), HORIZON,
            params=PARAMS,
            faults=FaultSchedule().crash(2, at=10.0, until=20.0),
            label="crash-case",
        )
        trace, _ = spec.run(record_events=True)
        kinds = {kind for kind, _, _, _ in trace.event_log}
        assert "crash" in kinds and "recover" in kinds


# ---------------------------------------------------------------------------
# profile harness
# ---------------------------------------------------------------------------


class TestProfile:
    def test_profile_specs_ranks_and_aggregates(self):
        specs = [make_spec(n, label=f"line-{n}") for n in (3, 5)]
        report = profile_specs(specs)
        assert len(report.specs) == 2
        assert report.total_seconds > 0.0
        ranked = report.hot_specs()
        assert ranked[0].seconds >= ranked[1].seconds
        assert report.hot_specs(1) == ranked[:1]
        phases = report.phase_totals()
        assert set(phases) == {"setup", "run", "trace", "skew-eval"}
        totals = report.counter_totals()
        assert totals["events_processed"] == sum(
            profile.metrics.events_processed for profile in report.specs
        )
        assert totals["queue_depth_hwm"] == max(
            profile.metrics.queue_depth_hwm for profile in report.specs
        )
        payload = report.as_dict()
        assert len(payload["specs"]) == 2
        assert payload["total_seconds"] == pytest.approx(report.total_seconds)
