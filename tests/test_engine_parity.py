"""Engine-parity suite: fast path == reference engine, bit for bit.

PR 6 rewrote :class:`~repro.sim.engine.SimulationEngine` around a tuple
heap, slotted node state, and (optionally) streaming skew folds.  The
contract that rewrite must honor is *exactness*: for every scenario the
fast engine produces the same breakpoints, the same skew extrema, the
same counters — not approximately, but to the last float bit.  These
tests pin that contract three ways:

* **reference vs fast trace** — the verbatim pre-rewrite engine
  (:class:`~repro.sim.reference.ReferenceSimulationEngine`) and the fast
  engine run the same spec; their ``ExecutionSummary`` pickles must be
  byte-identical.
* **fast trace vs streaming** — ``record_trace=False`` folds skew
  extrema incrementally instead of materializing a trace; the summaries
  must agree byte-for-byte via canonical JSON once the (deliberately
  different) spec digests are normalized out.
* **event logs** — with ``record_events=True`` all three paths must emit
  the identical structured event stream.

The scenario matrix reuses the certification fuzzer
(:func:`repro.cert.fuzzer.sample_scenario`): seeded draws over
line/ring/star/grid/random topologies, drift/delay adversary kinds, and
fault schedules, so the same generator that hunts theorem violations
also exercises engine parity.
"""

from __future__ import annotations

import copy
import dataclasses
import json
import pickle

import pytest

from repro.cert.fuzzer import sample_scenario
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.exec.spec import ExecutionSpec
from repro.exec.summary import summarize_streaming, summarize_trace
from repro.sim.reference import ReferenceSimulationEngine
from repro.sim.runner import run_execution, run_execution_streaming
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.topology.generators import grid, line

pytestmark = pytest.mark.parity

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)

#: (campaign seed, scenario index) draws for the parity matrix, chosen to
#: span line/ring/star/grid/random topologies, every drift and delay
#: kind, and crash/link-outage fault schedules.  Draw (1, 4) is skipped
#: deliberately: its sampled fault timeline overlaps (two crashes on one
#: node) and FaultInjector rejects it before any engine runs.
SCENARIO_DRAWS = [
    (1, 0),   # random / two-group / zero + faults
    (1, 1),   # star / two-group / zero + faults
    (1, 2),   # ring / sinusoidal / zero + faults
    (1, 5),   # random / two-group / constant + faults
    (1, 6),   # grid / two-group / uniform
    (1, 10),  # line / random-walk / uniform + faults
    (2, 0),   # line / alternating / uniform
    (2, 7),   # line / random-walk / constant + faults
    (2, 8),   # grid / two-group / zero
    (2, 10),  # ring / random-walk / uniform
]


def _scenario_spec(seed: int, index: int) -> ExecutionSpec:
    return sample_scenario(seed, index, algorithm="aopt").build_spec()


def _reference_summary(spec: ExecutionSpec, record_events: bool = False):
    """Run ``spec`` on the verbatim pre-rewrite engine (the oracle)."""
    algorithm, drift, delay = copy.deepcopy(
        (spec.algorithm, spec.drift, spec.delay)
    )
    monitors = spec._monitors()
    engine = ReferenceSimulationEngine(
        topology=spec.topology,
        algorithm=algorithm,
        drift_model=drift,
        delay_model=delay,
        horizon=spec.horizon,
        initiators=dict(spec.initiators) if spec.initiators else None,
        monitors=monitors,
        faults=spec.faults,
        topology_schedule=spec.topology_schedule,
        record_events=record_events,
    )
    trace = engine.run()
    summary = summarize_trace(
        trace, digest=spec.digest(), label=spec.label, monitors=monitors
    )
    return summary, trace


def _canonical(obj):
    """Reduce a summary (or any nested piece of one) to JSON-safe data.

    Floats become their shortest ``repr`` — which round-trips the IEEE-754
    bit pattern exactly, so canonical-JSON equality *is* bit equality.
    Dict keys (node ids may be tuples on grids) are ``repr``-ed too.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {repr(key): _canonical(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(value) for value in obj]
    if isinstance(obj, float):
        return repr(obj)
    return obj


def canonical_summary_json(summary, ignore_digest: bool = True) -> str:
    if ignore_digest:
        # Trace and streaming digests differ *by design* (record_trace is
        # part of the digest so the cache keeps the modes separate).
        summary = dataclasses.replace(summary, spec_digest="")
    return json.dumps(_canonical(summary), sort_keys=True)


class TestScenarioMatrixParity:
    @pytest.mark.parametrize("seed,index", SCENARIO_DRAWS)
    def test_fast_trace_matches_reference(self, seed, index):
        spec = _scenario_spec(seed, index)
        reference, _ = _reference_summary(spec)
        fast = _scenario_spec(seed, index).run_summary()
        assert pickle.dumps(reference) == pickle.dumps(fast), (
            f"fast-path summary diverged from the reference engine for "
            f"{spec.label}"
        )

    @pytest.mark.parametrize("seed,index", SCENARIO_DRAWS)
    def test_streaming_matches_fast_trace(self, seed, index):
        spec = _scenario_spec(seed, index)
        traced = spec.run_summary()
        streamed = spec.with_record_trace(False).run_summary()
        assert canonical_summary_json(traced) == canonical_summary_json(
            streamed
        ), f"streaming summary diverged from trace evaluation for {spec.label}"
        # The digests themselves must differ — cache separation is part of
        # the contract (see docs/ENGINE.md).
        assert traced.spec_digest != streamed.spec_digest

    @pytest.mark.parametrize("seed,index", SCENARIO_DRAWS[:4])
    def test_streaming_matches_reference_with_metrics(self, seed, index):
        """Counters (events, checkpoints, breakpoints per node) agree too."""
        spec = _scenario_spec(seed, index).with_record_trace(False)
        reference, _ = _reference_summary(spec.with_record_trace(True))
        streamed = spec.run_summary(collect_metrics=True)
        plain = dataclasses.replace(streamed, run_metrics=None)
        assert canonical_summary_json(reference) == canonical_summary_json(
            plain
        )
        metrics = streamed.run_metrics
        assert metrics is not None
        assert metrics.events_processed == reference.events_processed
        assert metrics.phase_seconds == {}


class TestEventLogParity:
    def _models(self):
        return (
            TwoGroupDrift(0.05, [0, 1, 2]),
            UniformDelay(0.0, 1.0, seed=11),
        )

    def test_event_logs_identical_across_all_three_paths(self):
        topology = line(6)
        horizon = 40.0
        runs = []
        for mode in ("reference", "fast", "streaming"):
            drift, delay = self._models()
            algorithm = AoptAlgorithm(PARAMS)
            if mode == "reference":
                engine = ReferenceSimulationEngine(
                    topology=topology, algorithm=algorithm,
                    drift_model=drift, delay_model=delay, horizon=horizon,
                    record_events=True,
                )
                runs.append(engine.run().event_log)
            elif mode == "fast":
                trace = run_execution(
                    topology, algorithm, drift, delay, horizon,
                    record_events=True,
                )
                runs.append(trace.event_log)
            else:
                result = run_execution_streaming(
                    topology, algorithm, drift, delay, horizon,
                    record_events=True,
                )
                runs.append(result.event_log)
        reference, fast, streaming = runs
        assert pickle.dumps(reference) == pickle.dumps(fast)
        assert pickle.dumps(reference) == pickle.dumps(streaming)
        assert reference, "event log unexpectedly empty"


class TestByzantineChurnParity:
    """Byzantine corruption and topology churn hold the same bit-exact
    parity contract as the static matrix — alone and combined.

    Corruption draws come from the per-message hash, never shared RNG,
    so the reference engine, the fast trace path, and the streaming fold
    must land every lie on the same message with the same depth.
    """

    #: Fuzzer draws with ``include_byzantine=True``: star topologies with
    #: one or more Byzantine leaves and horizons long enough for the
    #: corruption to be *accepted* (not merely injected).
    BYZANTINE_DRAWS = [(3, 0), (3, 1)]

    def _combined_spec(self) -> ExecutionSpec:
        """Hand-built worst case: Byzantine leaf + crash + edge churn."""
        from repro.faults import FaultSchedule
        from repro.topology.dynamic import TopologySchedule
        from repro.topology.generators import star
        from repro.variants import ftgcs_rejection_window

        params = SyncParams.recommended(epsilon=0.1, delay_bound=0.5)
        topology = star(6)
        window = ftgcs_rejection_window(params, 2)
        faults = (
            FaultSchedule(seed=13, byzantine_magnitude=6.0 * window)
            .byzantine(1, at=2.0, until=40.0)
            .crash(5, at=15.0, until=25.0)
        )
        churn = (
            TopologySchedule()
            .edge_disappears(0, 3, at=10.0, until=20.0)
            .leaves(4, at=30.0, until=40.0)
        )
        return ExecutionSpec(
            topology,
            AoptAlgorithm(params),
            TwoGroupDrift(0.1, topology.nodes[3:]),
            ConstantDelay(0.5),
            60.0,
            faults=faults,
            topology_schedule=churn,
            label="star/byzantine+crash+churn",
        )

    @pytest.mark.byzantine
    @pytest.mark.parametrize("seed,index", BYZANTINE_DRAWS)
    def test_byzantine_fast_trace_matches_reference(self, seed, index):
        scenario = sample_scenario(seed, index, include_byzantine=True)
        assert scenario.has_byzantine
        reference, _ = _reference_summary(scenario.build_spec())
        fast = scenario.build_spec().run_summary()
        assert pickle.dumps(reference) == pickle.dumps(fast), (
            f"fast-path summary diverged from the reference engine for "
            f"{scenario.build_spec().label}"
        )

    @pytest.mark.byzantine
    @pytest.mark.parametrize("seed,index", BYZANTINE_DRAWS)
    def test_byzantine_streaming_matches_fast_trace(self, seed, index):
        spec = sample_scenario(seed, index, include_byzantine=True).build_spec()
        traced = spec.run_summary()
        streamed = spec.with_record_trace(False).run_summary()
        assert canonical_summary_json(traced) == canonical_summary_json(
            streamed
        ), f"streaming summary diverged from trace evaluation for {spec.label}"

    @pytest.mark.byzantine
    def test_combined_fast_trace_matches_reference(self):
        reference, _ = _reference_summary(self._combined_spec())
        fast = self._combined_spec().run_summary()
        assert pickle.dumps(reference) == pickle.dumps(fast)

    @pytest.mark.byzantine
    def test_combined_streaming_matches_fast_trace(self):
        spec = self._combined_spec()
        traced = spec.run_summary()
        streamed = spec.with_record_trace(False).run_summary()
        assert canonical_summary_json(traced) == canonical_summary_json(
            streamed
        )

    @pytest.mark.byzantine
    def test_byzantine_event_logs_identical_across_all_three_paths(self):
        spec = self._combined_spec()
        runs = []
        for mode in ("reference", "fast", "streaming"):
            fresh = self._combined_spec()
            if mode == "reference":
                _, trace = _reference_summary(fresh, record_events=True)
                runs.append(trace.event_log)
            elif mode == "fast":
                trace = run_execution(
                    fresh.topology, fresh.algorithm, fresh.drift, fresh.delay,
                    fresh.horizon, faults=fresh.faults,
                    topology_schedule=fresh.topology_schedule,
                    record_events=True,
                )
                runs.append(trace.event_log)
            else:
                result = run_execution_streaming(
                    fresh.topology, fresh.algorithm, fresh.drift, fresh.delay,
                    fresh.horizon, faults=fresh.faults,
                    topology_schedule=fresh.topology_schedule,
                    record_events=True,
                )
                runs.append(result.event_log)
        reference, fast, streaming = runs
        assert pickle.dumps(reference) == pickle.dumps(fast)
        assert pickle.dumps(reference) == pickle.dumps(streaming)
        corrupt = [e for e in reference if e[0] == "corrupt"]
        assert corrupt, "expected corruption entries under a Byzantine schedule"
        assert {e[2] for e in corrupt} == {1}, (
            f"only the scheduled liar may corrupt, got {spec.label} log"
        )


class TestVectorScalarParity:
    """The optional numpy skew path must equal the scalar sweeps bit-for-bit.

    Every numpy step is the same sequence of correctly-rounded float64
    operations applied elementwise (no reductions that reorder rounding),
    so this is an equality assertion, not an approximation.
    """

    def _trace(self):
        drift = TwoGroupDrift(0.05, list(range(8)))
        delay = UniformDelay(0.0, 1.0, seed=5)
        return run_execution(
            line(16), AoptAlgorithm(PARAMS), drift, delay, 150.0
        )

    def test_global_and_local_skew_match_forced_scalar(self, monkeypatch):
        import repro.sim.trace as trace_mod

        trace = self._trace()
        points = {0.0, trace.horizon}
        for rec in trace.logical.values():
            points.update(rec.breakpoints_in(0.0, trace.horizon))
        assert len(points) >= trace_mod._VECTOR_MIN_POINTS, (
            "config too small to exercise the vector path"
        )
        vector_global = trace.global_skew()
        vector_local = trace.local_skew()
        monkeypatch.setattr(trace_mod, "_np", None)
        scalar_global = trace.global_skew()
        scalar_local = trace.local_skew()
        assert pickle.dumps(vector_global) == pickle.dumps(scalar_global)
        assert pickle.dumps(vector_local) == pickle.dumps(scalar_local)

    def test_vector_results_are_plain_floats(self):
        # np.float64 leaking into a summary would change pickles and JSON
        # reprs — the parity contract requires built-in floats throughout.
        extremum = self._trace().global_skew()
        assert type(extremum.value) is float
        assert type(extremum.time) is float


class TestHandPickedParity:
    """Deterministic non-fuzzed cases covering the summary corner fields."""

    def test_grid_tuple_node_ids(self):
        spec = ExecutionSpec(
            grid(3, 3),
            AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [(0, 0), (0, 1), (0, 2), (1, 0)]),
            ConstantDelay(1.0),
            50.0,
            label="grid/two-group",
        )
        reference, _ = _reference_summary(spec)
        streamed = spec.with_record_trace(False).run_summary()
        assert canonical_summary_json(reference) == canonical_summary_json(
            streamed
        )
        # Extremum *pairs* carry tuple node ids — exact identity matters.
        assert reference.global_skew_pair == streamed.global_skew_pair
        assert reference.local_skew_pair == streamed.local_skew_pair

    def test_monitor_violations_format_identically(self):
        # aopt-broken-rate trips the rate-bound monitor; the formatted
        # violation strings must match between modes.
        scenario = sample_scenario(0, 3, algorithm="aopt-broken-rate")
        spec = scenario.build_spec()
        traced = spec.run_summary()
        streamed = spec.with_record_trace(False).run_summary()
        assert traced.monitor_violations == streamed.monitor_violations

    def test_random_walk_drift_stateful_rng(self):
        """Stateful model RNGs must be deep-copied identically per mode."""
        spec = ExecutionSpec(
            line(5),
            AoptAlgorithm(PARAMS),
            RandomWalkDrift(0.05, step_period=5.0, step_size=0.02, seed=3),
            UniformDelay(0.0, 1.0, seed=3),
            40.0,
            seed=3,
            label="line/random-walk",
        )
        first = spec.with_record_trace(False).run_summary()
        second = spec.with_record_trace(False).run_summary()
        traced = spec.run_summary()
        # Replays are deterministic, and both match trace evaluation.
        assert pickle.dumps(first) == pickle.dumps(second)
        assert canonical_summary_json(traced) == canonical_summary_json(first)
