"""Unit tests for the deterministic event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import (
    AlarmEvent,
    CrashEvent,
    DeliveryEvent,
    EventQueue,
    RecoverEvent,
    WakeEvent,
)


class TestOrdering:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(WakeEvent(2.0, "b"))
        queue.push(WakeEvent(1.0, "a"))
        assert queue.pop().node == "a"
        assert queue.pop().node == "b"

    def test_fifo_tie_break(self):
        queue = EventQueue()
        for name in ("first", "second", "third"):
            queue.push(WakeEvent(1.0, name))
        assert [queue.pop().node for _ in range(3)] == ["first", "second", "third"]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(WakeEvent(3.0, "x"))
        assert queue.peek_time() == 3.0

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(WakeEvent(0.0, "x"))
        assert queue
        assert len(queue) == 1


class TestSafety:
    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_scheduling_in_past_rejected(self):
        queue = EventQueue()
        queue.push(WakeEvent(5.0, "x"))
        queue.pop()
        with pytest.raises(SimulationError):
            queue.push(WakeEvent(4.0, "y"))

    def test_scheduling_at_current_time_allowed(self):
        queue = EventQueue()
        queue.push(WakeEvent(5.0, "x"))
        queue.pop()
        queue.push(WakeEvent(5.0, "y"))
        assert queue.pop().node == "y"


class TestDrain:
    def test_drain_until(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0, 4.0):
            queue.push(WakeEvent(t, "n"))
        kept, dropped = queue.drain_until(2.5)
        assert (kept, dropped) == (2, 2)
        assert queue.pop().time == 1.0

    def test_event_exactly_at_horizon_kept(self):
        # The horizon is inclusive: an event due exactly at the horizon
        # still happens (the engine's last instant is simulated).
        queue = EventQueue()
        for t in (1.0, 3.0, 3.0000000001):
            queue.push(WakeEvent(t, "n"))
        kept, dropped = queue.drain_until(3.0)
        assert (kept, dropped) == (2, 1)
        times = [queue.pop().time for _ in range(2)]
        assert times == [1.0, 3.0]

    def test_drain_preserves_order_of_survivors(self):
        queue = EventQueue()
        queue.push(WakeEvent(2.0, "late"))
        queue.push(WakeEvent(1.0, "a"))
        queue.push(WakeEvent(1.0, "b"))  # FIFO tie with "a"
        queue.push(WakeEvent(9.0, "dropped"))
        kept, dropped = queue.drain_until(5.0)
        assert (kept, dropped) == (3, 1)
        assert [queue.pop().node for _ in range(3)] == ["a", "b", "late"]

    def test_drain_empty_queue(self):
        assert EventQueue().drain_until(10.0) == (0, 0)


class TestEventTypes:
    def test_delivery_event_fields(self):
        event = DeliveryEvent(
            time=1.0, node="b", sender="a", payload=(1, 2), send_time=0.5, size_bits=8
        )
        assert event.sender == "a"
        assert event.payload == (1, 2)

    def test_alarm_event_fields(self):
        event = AlarmEvent(time=1.0, node="a", name="send", generation=3)
        assert event.name == "send"
        assert event.generation == 3

    @pytest.mark.faults
    def test_fault_events_queue_like_any_other(self):
        queue = EventQueue()
        queue.push(WakeEvent(2.0, "a"))
        queue.push(CrashEvent(2.0, "a"))
        queue.push(RecoverEvent(5.0, "a"))
        # Same-time crash pushed after the wake pops after it (FIFO); the
        # engine avoids this by pushing fault transitions first.
        assert isinstance(queue.pop(), WakeEvent)
        assert isinstance(queue.pop(), CrashEvent)
        assert isinstance(queue.pop(), RecoverEvent)
