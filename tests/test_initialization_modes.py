"""§4.2 initialization scheme under non-standard wake patterns.

The paper: "Any node waking up by itself simply sets L^max := 0 and sends
⟨0, 0⟩ … This scheme also allows for initially unknown topologies as
nodes are integrated by means of their first message."  These tests cover
multiple spontaneous wake-ups, staggered wake times, and the resulting
estimate reconciliation.
"""

import pytest

from repro.analysis.metrics import check_envelope
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.sim.delays import ConstantDelay
from repro.sim.drift import ConstantDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line


def run(topology, params, initiators, horizon=150.0, drift=None):
    engine = SimulationEngine(
        topology,
        AoptAlgorithm(params),
        drift or ConstantDrift(params.epsilon),
        ConstantDelay(params.delay_bound),
        horizon,
        initiators=initiators,
    )
    return engine, engine.run()


class TestMultipleInitiators:
    def test_both_ends_wake_simultaneously(self, params):
        _, trace = run(line(9), params, initiators=[0, 8])
        # The floods meet in the middle: node 4 starts at ~4T, not 8T.
        assert trace.start_times[4] == pytest.approx(4 * params.delay_bound)

    def test_all_nodes_initiators(self, params):
        _, trace = run(line(6), params, initiators=list(range(6)))
        for node in range(6):
            assert trace.start_times[node] == 0.0

    def test_envelope_holds_with_many_initiators(self, params):
        _, trace = run(
            line(8), params, initiators=[0, 3, 7],
            drift=TwoGroupDrift(params.epsilon, [0, 1, 2, 3]),
        )
        assert check_envelope(trace, params.epsilon) <= 1e-7

    def test_estimates_reconcile_to_single_maximum(self, params):
        """Competing L^max floods from different initiators must merge:
        eventually all nodes track one maximum within the usual bound."""
        drift = TwoGroupDrift(params.epsilon, [0, 1, 2, 3])
        _, trace = run(line(8), params, initiators=[0, 7], drift=drift,
                       horizon=200.0)
        assert (
            trace.global_skew(150.0, 200.0).value
            <= global_skew_bound(params, 7) + 1e-7
        )


class TestStaggeredWakeTimes:
    def test_late_spontaneous_wake(self, params):
        """A node scheduled to wake late is woken earlier by the flood."""
        engine, trace = run(
            line(6), params, initiators={0: 0.0, 5: 100.0}, horizon=150.0
        )
        # The flood from node 0 reaches node 5 at ~5T << 100.
        assert trace.start_times[5] == pytest.approx(5 * params.delay_bound)

    def test_isolated_late_initiator(self, params):
        """If the only initiator wakes late, everything shifts by its wake
        time and the envelope (which is anchored at real time 0) still
        holds because clocks stay at 0 until waking."""
        _, trace = run(line(4), params, initiators={2: 30.0}, horizon=120.0)
        assert trace.start_times[2] == 30.0
        assert trace.start_times[0] == pytest.approx(30.0 + 2 * params.delay_bound)
        assert check_envelope(trace, params.epsilon) <= 1e-7

    def test_second_wake_event_ignored_if_already_started(self, params):
        engine, trace = run(
            line(4), params, initiators={0: 0.0, 1: 50.0}, horizon=100.0
        )
        # Node 1 was woken by node 0's flood long before its wake event.
        assert trace.start_times[1] == pytest.approx(params.delay_bound)
