"""Property-based tests of the bound formulas' parameter dependence.

The paper's headline contribution is *how the bounds depend on the
parameters* (abstract: "our techniques are optimal also with respect to
the maximum clock drift, the uncertainty in message delays, and the
imposed bounds on the clock rates").  These properties pin the
dependencies down.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    global_skew_bound,
    global_skew_lower_bound,
    gradient_bound,
    local_skew_bound,
    local_skew_lower_bound,
)
from repro.core.params import SyncParams

epsilons = st.sampled_from([0.005, 0.01, 0.02, 0.05, 0.1, 0.2])
delays = st.sampled_from([0.1, 0.5, 1.0, 2.0, 10.0])
diameters = st.sampled_from([1, 2, 4, 8, 16, 64, 256])


def make_params(epsilon, delay):
    return SyncParams.recommended(epsilon=epsilon, delay_bound=delay)


class TestGlobalBoundDependence:
    @given(epsilon=epsilons, delay=delays, d=diameters)
    @settings(max_examples=60, deadline=None)
    def test_linear_in_delay(self, epsilon, delay, d):
        """G scales (essentially) linearly with T (footnote 2)."""
        small = global_skew_bound(make_params(epsilon, delay), d)
        double = global_skew_bound(make_params(epsilon, 2 * delay), d)
        assert double == pytest.approx(2 * small, rel=1e-9)

    @given(epsilon=epsilons, delay=delays)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_diameter(self, epsilon, delay):
        params = make_params(epsilon, delay)
        values = [global_skew_bound(params, d) for d in (1, 2, 4, 8, 16)]
        assert values == sorted(values)

    @given(delay=delays, d=diameters)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_epsilon(self, delay, d):
        values = [
            global_skew_bound(make_params(e, delay), d)
            for e in (0.01, 0.05, 0.1, 0.2)
        ]
        assert values == sorted(values)

    @given(epsilon=epsilons, delay=delays, d=diameters)
    @settings(max_examples=60, deadline=None)
    def test_upper_dominates_lower(self, epsilon, delay, d):
        params = make_params(epsilon, delay)
        assert global_skew_bound(params, d) >= global_skew_lower_bound(
            d, delay, epsilon
        )


class TestLocalBoundDependence:
    @given(epsilon=epsilons, delay=delays)
    @settings(max_examples=30, deadline=None)
    def test_log_growth_in_diameter(self, epsilon, delay):
        """Each doubling of D adds between 0 and kappa to the bound."""
        params = make_params(epsilon, delay)
        values = [local_skew_bound(params, 2 ** k) for k in range(1, 11)]
        for a, b in zip(values, values[1:]):
            assert -1e-9 <= b - a <= params.kappa + 1e-9

    @given(epsilon=epsilons, delay=delays, d=diameters)
    @settings(max_examples=60, deadline=None)
    def test_upper_dominates_lower(self, epsilon, delay, d):
        params = make_params(epsilon, delay)
        lower = local_skew_lower_bound(
            d, delay, epsilon, params.alpha, params.beta
        )
        assert local_skew_bound(params, d) >= lower - 1e-9

    @given(epsilon=epsilons, delay=delays, d=diameters)
    @settings(max_examples=60, deadline=None)
    def test_local_at_most_d_times_denser(self, epsilon, delay, d):
        """The gradient bound at distance d never exceeds d x the
        neighbor bound (per-hop budgets only shrink with distance)."""
        params = make_params(epsilon, delay)
        neighbor = gradient_bound(params, max(d, 2), 1)
        at_d = gradient_bound(params, max(d, 2), max(d, 2))
        assert at_d <= max(d, 2) * neighbor + 1e-9

    @given(delay=delays)
    @settings(max_examples=15, deadline=None)
    def test_larger_sigma_target_shrinks_deep_bounds(self, delay):
        """At large D, a larger base gives a smaller local bound."""
        d = 4096
        base2 = SyncParams.recommended(
            epsilon=0.01, delay_bound=delay, sigma_target=2
        )
        base8 = SyncParams.recommended(
            epsilon=0.01, delay_bound=delay, sigma_target=8
        )
        assert local_skew_bound(base8, d) < local_skew_bound(base2, d)


class TestRateBoundDependence:
    @given(epsilon=epsilons, delay=delays, d=st.sampled_from([64, 256, 4096]))
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_shrinks_with_beta(self, epsilon, delay, d):
        """Theorem 7.7: allowing faster clocks (larger beta) weakens the
        lower bound — the b in log_b D grows."""
        alpha = 1 - epsilon
        tight = local_skew_lower_bound(d, delay, epsilon, alpha, 1 + 2 * epsilon)
        loose = local_skew_lower_bound(d, delay, epsilon, alpha, 4.0)
        assert loose <= tight + 1e-9
