"""Tests for the Monte-Carlo harness and execution validation."""

import pytest

from repro.analysis.montecarlo import (
    DistributionSummary,
    run_monte_carlo,
    summarize_samples,
)
from repro.core.node import AoptAlgorithm
from repro.errors import ConfigurationError
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import ConstantDrift, RandomWalkDrift
from repro.sim.runner import run_execution
from repro.sim.validation import validate_execution
from repro.topology.generators import line


class TestDistributionSummary:
    def test_statistics(self):
        summary = DistributionSummary.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.median == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            DistributionSummary.of([])

    # Interpolated quantiles (linear, the numpy default): h = (n-1)·q,
    # value = x[⌊h⌋] + (x[⌊h⌋+1] − x[⌊h⌋])·(h − ⌊h⌋).  Nearest-rank
    # picking — the old behaviour — is wrong for even n (median) and
    # systematically biased for p90; these cases pin the exact values.

    def test_quantiles_n1(self):
        summary = DistributionSummary.of([7.0])
        assert summary.median == 7.0
        assert summary.p90 == 7.0

    def test_quantiles_n2(self):
        summary = DistributionSummary.of([4.0, 2.0])
        # Even n: the median is the midpoint, not either element.
        assert summary.median == 3.0
        # h = 0.9 ⇒ 2 + (4−2)·0.9 = 3.8.
        assert summary.p90 == pytest.approx(3.8)

    def test_quantiles_n4(self):
        summary = DistributionSummary.of([4.0, 1.0, 3.0, 2.0])
        assert summary.median == 2.5
        # h = 3·0.9 = 2.7 ⇒ 3 + (4−3)·0.7 = 3.7.
        assert summary.p90 == pytest.approx(3.7)

    def test_quantiles_n5(self):
        summary = DistributionSummary.of([5.0, 3.0, 1.0, 2.0, 4.0])
        # Odd n: the median is the middle element exactly.
        assert summary.median == 3.0
        # h = 4·0.9 = 3.6 ⇒ 4 + (5−4)·0.6 = 4.6.
        assert summary.p90 == pytest.approx(4.6)

    def test_quantiles_n10(self):
        summary = DistributionSummary.of([float(k) for k in range(10, 0, -1)])
        assert summary.median == 5.5
        # h = 9·0.9 = 8.1 ⇒ 9 + (10−9)·0.1 = 9.1.
        assert summary.p90 == pytest.approx(9.1)


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def samples(self, request):
        params_epsilon = 0.05
        from repro.core.params import SyncParams

        params = SyncParams.recommended(epsilon=params_epsilon, delay_bound=1.0)
        return run_monte_carlo(
            line(6),
            lambda: AoptAlgorithm(params),
            lambda seed: RandomWalkDrift(
                params_epsilon, step_period=5.0, step_size=0.02, seed=seed
            ),
            lambda seed: UniformDelay(0.0, 1.0, seed=seed),
            horizon=100.0,
            runs=8,
        )

    def test_sample_count_and_determinism(self, samples):
        assert len(samples) == 8
        assert len({s.seed for s in samples}) == 8
        # Distinct seeds genuinely vary the outcome.
        assert len({round(s.global_skew, 9) for s in samples}) > 1

    def test_summary_metrics(self, samples):
        summary = summarize_samples(samples, "global_skew")
        assert summary.count == 8
        assert summary.minimum <= summary.median <= summary.p90 <= summary.maximum

    def test_unknown_metric_rejected(self, samples):
        with pytest.raises(ConfigurationError):
            summarize_samples(samples, "nope")

    def test_invalid_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_monte_carlo(
                line(3), lambda: None, lambda s: None, lambda s: None,
                horizon=10.0, runs=0,
            )

    def test_random_typically_below_worst_case(self, samples):
        """Related-work §2: random delays are far more benign than
        adversarial ones — the median random skew sits well below the
        worst-case bound (which E1 shows is achieved adversarially)."""
        from repro.core.bounds import global_skew_bound
        from repro.core.params import SyncParams

        params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
        summary = summarize_samples(samples, "global_skew")
        assert summary.median < 0.8 * global_skew_bound(params, 5)


class TestValidation:
    def test_clean_execution_validates(self, params):
        trace = run_execution(
            line(4),
            AoptAlgorithm(params),
            ConstantDrift(params.epsilon),
            ConstantDelay(params.delay_bound),
            60.0,
            record_messages=True,
        )
        report = validate_execution(trace, params.epsilon, params.delay_bound)
        assert report.valid, report.problems

    def test_rate_violation_detected(self, params):
        trace = run_execution(
            line(3),
            AoptAlgorithm(params),
            ConstantDrift(params.epsilon),
            ConstantDelay(params.delay_bound),
            40.0,
        )
        # Validate against a *stricter* drift bound than was used.
        report = validate_execution(trace, params.epsilon / 100, params.delay_bound)
        # Rates were exactly 1.0 here, so shrink further via delay instead:
        assert report.valid  # rate 1.0 is legal for any eps
        from repro.sim.drift import TwoGroupDrift

        drifty = run_execution(
            line(3),
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, [0]),
            ConstantDelay(params.delay_bound),
            40.0,
        )
        strict = validate_execution(drifty, params.epsilon / 2, params.delay_bound)
        assert not strict.valid
        assert any("hardware rate" in p for p in strict.problems)

    def test_delay_violation_detected(self, params):
        trace = run_execution(
            line(3),
            AoptAlgorithm(params),
            ConstantDrift(params.epsilon),
            ConstantDelay(params.delay_bound),
            40.0,
            record_messages=True,
        )
        report = validate_execution(trace, params.epsilon, params.delay_bound / 2)
        assert not report.valid
        assert any("delay" in p for p in report.problems)

    def test_adversary_constructions_are_legal(self):
        """The Theorem 7.2 execution must pass independent validation."""
        from repro.adversary.global_bound import run_global_lower_bound

        epsilon, delay_bound = 0.05, 1.0
        from repro.core.params import SyncParams

        params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)
        result = run_global_lower_bound(
            line(5), AoptAlgorithm(params), epsilon, delay_bound,
            record_messages=True,
        )
        report = validate_execution(result.trace, epsilon, delay_bound)
        assert report.valid, report.problems

    def test_amplification_execution_is_legal(self):
        """The Theorem 7.7 execution must pass independent validation."""
        from repro.adversary.local_bound import run_skew_amplification

        epsilon, delay_bound = 0.1, 1.0
        from repro.core.params import SyncParams

        params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)
        result = run_skew_amplification(
            lambda: AoptAlgorithm(params), n=5, epsilon=epsilon,
            delay_bound=delay_bound, base=4,
            verify_indistinguishability=True,
        )
        report = validate_execution(result.trace, epsilon, delay_bound)
        assert report.valid, report.problems
