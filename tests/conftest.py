"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import SyncParams


@pytest.fixture
def params() -> SyncParams:
    """A mid-drift compliant parameter set used across tests."""
    return SyncParams.recommended(epsilon=0.05, delay_bound=1.0)


@pytest.fixture
def tight_params() -> SyncParams:
    """Small drift: realistic clocks, long correction horizons."""
    return SyncParams.recommended(epsilon=0.001, delay_bound=1.0)


@pytest.fixture
def aggressive_params() -> SyncParams:
    """Large drift: fast-moving executions for short tests."""
    return SyncParams.recommended(epsilon=0.1, delay_bound=1.0)
