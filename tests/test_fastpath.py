"""Equivalence tests for the numpy fast path."""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fastpath import global_skew_fast, spread_profile
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import UniformDelay
from repro.sim.drift import RandomWalkDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line, ring
from repro.variants import JumpAoptAlgorithm


def randomized_trace(seed, topology, algorithm=None, horizon=50.0):
    params = SyncParams.recommended(epsilon=0.08, delay_bound=1.0)
    return run_execution(
        topology,
        algorithm or AoptAlgorithm(params),
        RandomWalkDrift(0.08, step_period=3.0, step_size=0.05, seed=seed),
        UniformDelay(0.0, 1.0, seed=seed),
        horizon,
    )


class TestEquivalence:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_matches_exact_path(self, seed):
        trace = randomized_trace(seed, line(5))
        slow = trace.global_skew()
        fast = global_skew_fast(trace)
        assert fast.value == pytest.approx(slow.value, abs=1e-9)
        assert fast.time == pytest.approx(slow.time, abs=1e-9)

    def test_windowed_queries(self):
        trace = randomized_trace(3, ring(5))
        slow = trace.global_skew(10.0, 40.0)
        fast = global_skew_fast(trace, 10.0, 40.0)
        assert fast.value == pytest.approx(slow.value, abs=1e-9)

    def test_jump_traces_fall_back(self):
        params = SyncParams.recommended(epsilon=0.08, delay_bound=1.0)
        trace = randomized_trace(
            2, line(4), algorithm=JumpAoptAlgorithm(params)
        )
        assert trace.logical[1].jump_times or trace.logical[2].jump_times
        slow = trace.global_skew()
        fast = global_skew_fast(trace)  # delegates internally
        assert fast.value == pytest.approx(slow.value, abs=1e-9)


class TestSpreadProfile:
    def test_profile_matches_point_queries(self):
        trace = randomized_trace(7, line(4))
        times, spreads = spread_profile(trace)
        assert len(times) == len(spreads)
        for i in range(0, len(times), max(1, len(times) // 25)):
            assert spreads[i] == pytest.approx(
                trace.spread_at(float(times[i])), abs=1e-9
            )

    def test_profile_max_is_global_skew(self):
        trace = randomized_trace(11, ring(5))
        _, spreads = spread_profile(trace)
        assert float(spreads.max()) == pytest.approx(
            trace.global_skew().value, abs=1e-9
        )

    def test_jump_traces_rejected(self):
        params = SyncParams.recommended(epsilon=0.08, delay_bound=1.0)
        trace = randomized_trace(2, line(4), algorithm=JumpAoptAlgorithm(params))
        with pytest.raises(NotImplementedError):
            spread_profile(trace)
