"""Stateful (model-based) property tests with hypothesis.

Random interleaved operation sequences against the core data structures,
with invariants checked after every step:

* :class:`LogicalClockRecord` — monotone under positive rates; value and
  left-limit agree except at jumps; multiplier reads back.
* :class:`EventQueue` — pops are globally time-ordered and FIFO within a
  timestamp.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.sim.clock import HardwareClock
from repro.sim.events import EventQueue, WakeEvent
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.trace import LogicalClockRecord


class RecordMachine(RuleBasedStateMachine):
    """Drive a LogicalClockRecord with random checkpoints and jumps."""

    def __init__(self):
        super().__init__()
        rates = PiecewiseConstantRate([0.0, 7.0, 13.0], [1.0, 0.9, 1.1])
        self.record = LogicalClockRecord(HardwareClock(rates))
        self.now = 0.0
        self.observations = [(0.0, 0.0)]

    @rule(advance=st.floats(0.01, 5.0))
    def pass_time(self, advance):
        self.now += advance
        self.observations.append((self.now, self.record.value(self.now)))

    @rule(multiplier=st.sampled_from([1.0, 1.2, 1.7, 2.0]))
    def change_rate(self, multiplier):
        self.record.checkpoint(self.now, multiplier)

    @rule(bump=st.floats(0.0, 3.0))
    def jump(self, bump):
        self.record.jump(self.now, self.record.value(self.now) + bump)

    @invariant()
    def values_monotone(self):
        values = [v for _, v in self.observations]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @invariant()
    def left_limit_never_exceeds_value(self):
        assert self.record.value_left(self.now) <= self.record.value(self.now) + 1e-9

    @invariant()
    def rate_positive(self):
        assert self.record.rate_at(self.now) > 0


RecordMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestRecordMachine = RecordMachine.TestCase


class QueueMachine(RuleBasedStateMachine):
    """Drive an EventQueue with random pushes and pops."""

    def __init__(self):
        super().__init__()
        self.queue = EventQueue()
        self.current_time = 0.0
        self.pushed = 0
        self.popped = []

    @rule(offset=st.floats(0.0, 10.0))
    def push(self, offset):
        self.queue.push(WakeEvent(self.current_time + offset, self.pushed))
        self.pushed += 1

    @precondition(lambda self: len(self.queue) > 0)
    @rule()
    def pop(self):
        event = self.queue.pop()
        self.current_time = event.time
        self.popped.append(event)

    @invariant()
    def pops_time_ordered(self):
        times = [e.time for e in self.popped]
        assert times == sorted(times)

    @invariant()
    def ties_fifo(self):
        # Among equal-time pops, the insertion ids must be increasing.
        by_time = {}
        for event in self.popped:
            by_time.setdefault(event.time, []).append(event.node)
        for ids in by_time.values():
            assert ids == sorted(ids)


QueueMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestQueueMachine = QueueMachine.TestCase
