"""Unit and property tests for clock records and exact skew evaluation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.sim.clock import HardwareClock
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.trace import ExecutionTrace, LogicalClockRecord
from repro.topology.generators import line


def make_record(rate_segments, start=0.0):
    clock = HardwareClock(
        PiecewiseConstantRate.from_segments(rate_segments), start_time=start
    )
    return LogicalClockRecord(clock)


class TestLogicalClockRecord:
    def test_follows_hardware_by_default(self):
        record = make_record([(0.0, 1.1)])
        assert record.value(10.0) == pytest.approx(11.0)

    def test_zero_before_start(self):
        record = make_record([(0.0, 1.0)], start=4.0)
        assert record.value(2.0) == 0.0
        assert record.value(4.0) == 0.0

    def test_multiplier_changes_rate(self):
        record = make_record([(0.0, 1.0)])
        record.checkpoint(5.0, 2.0)
        assert record.value(5.0) == pytest.approx(5.0)
        assert record.value(7.0) == pytest.approx(5.0 + 4.0)
        assert record.rate_at(6.0) == pytest.approx(2.0)
        assert record.rate_at(4.0) == pytest.approx(1.0)

    def test_multiplier_composes_with_hardware_drift(self):
        record = make_record([(0.0, 1.0), (6.0, 0.5)])
        record.checkpoint(5.0, 2.0)
        # [5,6]: 2*1, [6,8]: 2*0.5 -> 5 + 2 + 2 = 9.
        assert record.value(8.0) == pytest.approx(9.0)

    def test_checkpoint_in_past_rejected(self):
        record = make_record([(0.0, 1.0)])
        record.checkpoint(5.0, 2.0)
        with pytest.raises(TraceError):
            record.checkpoint(4.0, 1.0)

    def test_same_instant_checkpoint_replaces(self):
        record = make_record([(0.0, 1.0)])
        record.checkpoint(5.0, 2.0)
        record.checkpoint(5.0, 3.0)
        assert record.value(6.0) == pytest.approx(5.0 + 3.0)

    def test_jump_forward(self):
        record = make_record([(0.0, 1.0)])
        record.jump(5.0, 9.0)
        assert record.value(5.0) == pytest.approx(9.0)
        assert record.value_left(5.0) == pytest.approx(5.0)
        assert record.jump_times == (5.0,)

    def test_jump_backwards_rejected(self):
        record = make_record([(0.0, 1.0)])
        with pytest.raises(TraceError):
            record.jump(5.0, 3.0)

    def test_equal_value_jump_not_recorded_as_jump(self):
        record = make_record([(0.0, 1.0)])
        record.jump(5.0, 5.0)
        assert record.jump_times == ()

    def test_value_before_start_query(self):
        record = make_record([(0.0, 1.0)])
        with pytest.raises(TraceError):
            record._segment_index(-1.0)

    def test_breakpoints_include_hardware_and_checkpoints(self):
        record = make_record([(0.0, 1.0), (4.0, 1.1)])
        record.checkpoint(2.0, 1.5)
        points = record.breakpoints_in(0.0, 10.0)
        assert 2.0 in points and 4.0 in points and 0.0 in points

    def test_breakpoints_unique_when_checkpoint_meets_rate_change(self):
        """Regression: a checkpoint coinciding with a hardware rate change
        used to yield the same time point twice, so skew evaluation
        evaluated (and paid for) duplicated instants."""
        record = make_record([(0.0, 1.0), (4.0, 1.1), (7.0, 0.9)])
        record.checkpoint(4.0, 1.5)  # same instant as the rate change
        record.checkpoint(7.0, 1.2)  # and again
        points = record.breakpoints_in(0.0, 10.0)
        assert points == sorted(set(points))  # sorted and duplicate-free
        assert points.count(4.0) == 1
        assert points.count(7.0) == 1
        # Evaluation count: one evaluation per distinct instant.
        assert len(points) == len({0.0, 4.0, 7.0})

    def test_multiplier_at(self):
        record = make_record([(0.0, 1.0)])
        record.checkpoint(3.0, 1.5)
        assert record.multiplier_at(2.0) == 1.0
        assert record.multiplier_at(3.0) == 1.5
        assert record.multiplier_at(-1.0) == 0.0


def build_trace(records, horizon, topology):
    nodes = list(topology.nodes)
    return ExecutionTrace(
        topology=topology,
        horizon=horizon,
        logical={n: records[i] for i, n in enumerate(nodes)},
        hardware={n: records[i].hardware for i, n in enumerate(nodes)},
        start_times={n: records[i].start_time for i, n in enumerate(nodes)},
        messages_sent={n: 0 for n in nodes},
        messages_received={n: 0 for n in nodes},
        bits_sent={n: 0 for n in nodes},
    )


class TestExactSkewEvaluation:
    def test_pair_skew_hand_computed(self):
        fast = make_record([(0.0, 1.1)])
        slow = make_record([(0.0, 0.9)])
        trace = build_trace([fast, slow], horizon=10.0, topology=line(2))
        extremum = trace.max_pair_skew(0, 1)
        assert extremum.value == pytest.approx(2.0)  # 0.2 * 10
        assert extremum.time == pytest.approx(10.0)

    def test_global_skew_transient_peak(self):
        """The spread can peak strictly inside the run; breakpoints catch it."""
        a = make_record([(0.0, 1.1), (5.0, 0.9)])
        b = make_record([(0.0, 0.9), (5.0, 1.1)])
        trace = build_trace([a, b], horizon=10.0, topology=line(2))
        extremum = trace.global_skew()
        assert extremum.value == pytest.approx(1.0)  # 0.2*5 at t=5
        assert extremum.time == pytest.approx(5.0)

    def test_local_skew_picks_worst_edge(self):
        a = make_record([(0.0, 1.0)])
        b = make_record([(0.0, 1.0)])
        c = make_record([(0.0, 1.2)])
        trace = build_trace([a, b, c], horizon=10.0, topology=line(3))
        extremum = trace.local_skew()
        assert set((extremum.node_a, extremum.node_b)) == {1, 2}
        assert extremum.value == pytest.approx(2.0)

    def test_jump_left_limit_counted(self):
        """A jump creates skew just before it that must be observed."""
        a = make_record([(0.0, 1.0)])
        b = make_record([(0.0, 1.0)])
        b.checkpoint(0.0, 0.0001)  # b nearly frozen
        a.jump(5.0, 20.0)
        trace = build_trace([a, b], horizon=5.0, topology=line(2))
        extremum = trace.max_pair_skew(0, 1)
        assert extremum.value == pytest.approx(20.0, abs=0.01)

    def test_skew_signed_query(self):
        a = make_record([(0.0, 1.1)])
        b = make_record([(0.0, 1.0)])
        trace = build_trace([a, b], horizon=10.0, topology=line(2))
        assert trace.skew(0, 1, 10.0) == pytest.approx(1.0)
        assert trace.skew(1, 0, 10.0) == pytest.approx(-1.0)

    def test_spread_at(self):
        a = make_record([(0.0, 1.2)])
        b = make_record([(0.0, 1.0)])
        c = make_record([(0.0, 0.8)])
        trace = build_trace([a, b, c], horizon=10.0, topology=line(3))
        assert trace.spread_at(5.0) == pytest.approx(2.0)

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_breakpoint_max_dominates_dense_sampling(self, data):
        """Exactness property: no sampled spread exceeds the reported max."""
        seed = data.draw(st.integers(0, 10_000))
        rng = random.Random(seed)
        records = []
        for _ in range(3):
            times, rates = [0.0], [rng.uniform(0.9, 1.1)]
            t = 0.0
            for _ in range(rng.randint(0, 4)):
                t += rng.uniform(0.5, 3.0)
                times.append(t)
                rates.append(rng.uniform(0.9, 1.1))
            record = LogicalClockRecord(
                HardwareClock(PiecewiseConstantRate(times, rates))
            )
            checkpoint_t = 0.0
            for _ in range(rng.randint(0, 3)):
                checkpoint_t += rng.uniform(0.5, 3.0)
                record.checkpoint(checkpoint_t, rng.choice([1.0, 1.5]))
            records.append(record)
        trace = build_trace(records, horizon=12.0, topology=line(3))
        reported = trace.global_skew().value
        for i in range(481):
            t = 12.0 * i / 480
            assert trace.spread_at(t) <= reported + 1e-9

    def test_skew_by_distance(self):
        a = make_record([(0.0, 1.0)])
        b = make_record([(0.0, 1.1)])
        c = make_record([(0.0, 1.3)])
        trace = build_trace([a, b, c], horizon=10.0, topology=line(3))
        distances = {0: {0: 0, 1: 1, 2: 2}, 1: {0: 1, 1: 0, 2: 1}, 2: {0: 2, 1: 1, 2: 0}}
        by_distance = trace.skew_by_distance(distances)
        assert by_distance[1] == pytest.approx(2.0)  # |b-c| = 0.2*10
        assert by_distance[2] == pytest.approx(3.0)

    def test_max_skew_by_distance(self):
        a = make_record([(0.0, 1.0)])
        b = make_record([(0.0, 1.1)])
        trace = build_trace([a, b], horizon=10.0, topology=line(2))
        distances = {0: {0: 0, 1: 1}, 1: {0: 1, 1: 0}}
        assert trace.max_skew_by_distance(distances)[1] == pytest.approx(1.0)


class TestCounters:
    def test_amortized_frequency(self):
        record = make_record([(0.0, 1.0)])
        trace = build_trace([record, make_record([(0.0, 1.0)])], 10.0, line(2))
        trace.messages_sent[0] = 20
        assert trace.amortized_message_frequency(0) == pytest.approx(2.0)

    def test_amortized_frequency_subtracts_downtime(self):
        """Regression: scheduled crash downtime must not count as active
        time when amortizing the message rate."""
        record = make_record([(0.0, 1.0)])
        trace = build_trace([record, make_record([(0.0, 1.0)])], 10.0, line(2))
        trace.messages_sent[0] = 20
        trace.downtime[0] = 6.0
        assert trace.amortized_message_frequency(0) == pytest.approx(5.0)

    def test_amortized_frequency_zero_when_never_active(self):
        """Downtime covering the whole span yields 0.0, not a division by
        zero (or a negative-denominator artifact)."""
        record = make_record([(0.0, 1.0)])
        trace = build_trace([record, make_record([(0.0, 1.0)])], 10.0, line(2))
        trace.messages_sent[0] = 3
        trace.downtime[0] = 10.0
        assert trace.amortized_message_frequency(0) == 0.0
        trace.downtime[0] = 12.0  # defensive: over-counted downtime
        assert trace.amortized_message_frequency(0) == 0.0

    def test_totals(self):
        records = [make_record([(0.0, 1.0)]) for _ in range(2)]
        trace = build_trace(records, 10.0, line(2))
        trace.messages_sent[0] = 3
        trace.bits_sent[1] = 128
        assert trace.total_messages() == 3
        assert trace.total_bits() == 128
