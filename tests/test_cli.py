"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bounds_defaults(self):
        args = build_parser().parse_args(["bounds"])
        assert args.epsilon == 0.05
        assert args.diameters == [4, 8, 16, 32, 64, 128]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--algorithm", "nonsense"])


class TestBoundsCommand:
    def test_prints_table(self, capsys):
        exit_code = main(["bounds", "--epsilon", "0.02", "--diameters", "4", "16"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "global upper G" in out
        assert "sigma=" in out


class TestSimulateCommand:
    def test_aopt_respects_bounds(self, capsys):
        exit_code = main(
            [
                "simulate", "--topology", "line", "--nodes", "6",
                "--horizon", "80", "--adversary", "two-group-drift",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "global skew" in out
        assert "messages:" in out

    def test_unknown_adversary_exits(self):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "--topology", "line", "--nodes", "5",
                 "--adversary", "nope"]
            )

    def test_baseline_runs_without_bound_check(self, capsys):
        exit_code = main(
            [
                "simulate", "--topology", "ring", "--nodes", "6",
                "--algorithm", "max-forward", "--horizon", "60",
            ]
        )
        assert exit_code == 0

    @pytest.mark.parametrize(
        "algorithm",
        ["aopt-jump", "aopt-min-gap", "aopt-bit-budget", "aopt-adaptive",
         "midpoint", "oblivious-gradient", "free-running"],
    )
    def test_every_algorithm_choice_runs(self, algorithm, capsys):
        exit_code = main(
            [
                "simulate", "--topology", "line", "--nodes", "5",
                "--algorithm", algorithm, "--horizon", "60",
            ]
        )
        assert exit_code == 0

    @pytest.mark.parametrize(
        "topology", ["star", "complete", "grid", "torus", "tree", "hypercube",
                     "random"]
    )
    def test_all_topologies_buildable(self, topology, capsys):
        exit_code = main(
            [
                "simulate", "--topology", topology, "--nodes", "9",
                "--horizon", "60",
            ]
        )
        assert exit_code == 0


class TestSuiteCommand:
    def test_suite_table(self, capsys):
        exit_code = main(
            ["suite", "--topology", "line", "--nodes", "5", "--horizon", "60"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "worst global" in out
        assert "two-group-drift" in out


class TestMainModule:
    def test_python_dash_m_invocation(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "bounds", "--diameters", "4"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "global upper G" in result.stdout

    def test_help_lists_commands(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        for command in ("bounds", "simulate", "suite", "lower-bound", "report"):
            assert command in result.stdout


class TestLowerBoundCommands:
    def test_global(self, capsys):
        exit_code = main(
            ["lower-bound", "global", "--topology", "line", "--nodes", "5"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "Theorem 7.2" in out

    def test_global_with_inaccurate_knowledge(self, capsys):
        exit_code = main(
            [
                "lower-bound", "global", "--topology", "line", "--nodes", "5",
                "--c1", "0.6", "--delay-hat", str(1.0 / 0.6),
            ]
        )
        assert exit_code == 0

    def test_local(self, capsys):
        exit_code = main(
            [
                "lower-bound", "local", "--nodes", "5", "--base", "4",
                "--epsilon", "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "Theorem 7.7" in out
        assert "forced neighbor skew" in out
