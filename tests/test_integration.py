"""Cross-module integration tests.

Longer scenarios exercising several subsystems together: topology sweeps,
determinism, mixed-algorithm workflows, and the full experiment pipeline
(suite → trace → metrics → table).
"""

import pytest

from repro.analysis.experiments import run_adversary_suite
from repro.analysis.metrics import check_legal_state, summarize
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.sim.runner import run_execution, simulate_aopt
from repro.topology.generators import binary_tree, hypercube, random_connected, torus
from repro.topology.properties import all_pairs_distances, diameter


class TestTopologyBreadth:
    """A^opt respects its bounds on every generator, not just lines."""

    @pytest.mark.parametrize(
        "topology",
        [torus(4, 4), binary_tree(3), hypercube(4), random_connected(14, 0.15, seed=2)],
        ids=lambda t: t.name,
    )
    def test_bounds_hold(self, topology, params):
        d = diameter(topology)
        trace = run_execution(
            topology,
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, topology.nodes[: len(topology) // 2]),
            ConstantDelay(params.delay_bound),
            horizon=60.0 + 10.0 * d,
        )
        summary = summarize(trace, params, d)
        assert summary["global_skew"] <= summary["global_bound"] + 1e-7
        assert summary["local_skew"] <= summary["local_bound"] + 1e-7
        assert summary["envelope_margin"] <= 1e-7

    @pytest.mark.parametrize(
        "topology",
        [torus(4, 4), binary_tree(3)],
        ids=lambda t: t.name,
    )
    def test_legal_state_everywhere(self, topology, params):
        d = diameter(topology)
        trace = run_execution(
            topology,
            AoptAlgorithm(params),
            RandomWalkDrift(params.epsilon, 5.0, params.epsilon / 2, seed=4),
            UniformDelay(0.0, params.delay_bound, seed=4),
            horizon=120.0,
        )
        report = check_legal_state(
            trace, params, all_pairs_distances(topology), d, samples=20
        )
        assert report.satisfied


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self, params):
        def one():
            return run_execution(
                random_connected(10, 0.2, seed=1),
                AoptAlgorithm(params),
                RandomWalkDrift(params.epsilon, 4.0, params.epsilon / 2, seed=9),
                UniformDelay(0.0, params.delay_bound, seed=9),
                horizon=100.0,
            )

        a, b = one(), one()
        assert a.events_processed == b.events_processed
        assert a.total_messages() == b.total_messages()
        for node in a.logical:
            for t in (10.0, 50.0, 99.0):
                assert a.logical_value(node, t) == b.logical_value(node, t)

    def test_suite_is_deterministic(self, params):
        from repro.topology.generators import line

        first = run_adversary_suite(
            line(6), lambda: AoptAlgorithm(params), params, horizon=60.0
        )
        second = run_adversary_suite(
            line(6), lambda: AoptAlgorithm(params), params, horizon=60.0
        )
        assert first.per_case == second.per_case


class TestEndToEndPipeline:
    def test_suite_summary_table_renders(self, params):
        from repro.topology.generators import line

        suite = run_adversary_suite(
            line(5), lambda: AoptAlgorithm(params), params, horizon=60.0
        )
        rows = [
            [name, case["global_skew"], case["local_skew"], case["messages"]]
            for name, case in sorted(suite.per_case.items())
        ]
        text = format_table(["case", "global", "local", "messages"], rows)
        assert "two-group-drift" in text
        assert len(text.splitlines()) == len(rows) + 2

    def test_simulate_aopt_default_pipeline(self):
        params = SyncParams.recommended(epsilon=0.02, delay_bound=0.5)
        from repro.topology.generators import ring

        trace = simulate_aopt(ring(8), params)
        assert trace.global_skew().value <= global_skew_bound(params, 4) + 1e-7
        assert trace.local_skew().value <= local_skew_bound(params, 4) + 1e-7


class TestLongRunStability:
    def test_long_horizon_remains_bounded(self):
        """Skew does not creep over long horizons (no drift accumulation
        bugs in the event-driven implementation)."""
        params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
        from repro.topology.generators import line

        trace = run_execution(
            line(6),
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, [0, 1, 2]),
            ConstantDelay(params.delay_bound),
            horizon=2000.0,
        )
        bound = global_skew_bound(params, 5)
        # Probe late windows only: steady state, no transients.
        for t0 in (500.0, 1000.0, 1500.0):
            window = trace.global_skew(t0, t0 + 400.0)
            assert window.value <= bound + 1e-7

    def test_message_rate_stays_amortized(self):
        params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
        from repro.topology.generators import line

        trace = run_execution(
            line(4),
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, [0, 1]),
            ConstantDelay(params.delay_bound),
            horizon=1500.0,
        )
        for node in trace.topology.nodes:
            frequency = trace.amortized_message_frequency(node)
            assert frequency <= 3 * (1 + params.epsilon) / params.h0
