"""Tests for the extended topology generators and drift models."""

import pytest

from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.errors import ScheduleError, TopologyError
from repro.sim.delays import ConstantDelay
from repro.sim.drift import SinusoidalDrift
from repro.sim.runner import run_execution
from repro.topology import barbell, caterpillar, circulant, diameter


class TestBarbell:
    def test_structure(self):
        top = barbell(4, 3)
        assert len(top) == 2 * 4 + 3
        # Clique nodes have degree clique_size-1 (+1 for the attachment).
        assert top.degree(("a", 1)) == 3
        assert top.degree(("a", 0)) == 4

    def test_diameter(self):
        top = barbell(4, 3)
        # a_i -> a0 (1) -> bar0..bar2 (3) -> b0 (1) -> b_j (1) = 6 hops.
        assert diameter(top) == 6

    def test_invalid_arguments(self):
        with pytest.raises(TopologyError):
            barbell(1, 3)
        with pytest.raises(TopologyError):
            barbell(3, 0)

    def test_aopt_bounds_hold(self, params):
        top = barbell(3, 4)
        d = diameter(top)
        from repro.sim.drift import TwoGroupDrift

        trace = run_execution(
            top,
            AoptAlgorithm(params),
            TwoGroupDrift(params.epsilon, [("a", i) for i in range(3)]),
            ConstantDelay(params.delay_bound),
            120.0,
        )
        assert trace.global_skew().value <= global_skew_bound(params, d) + 1e-7
        assert trace.local_skew().value <= local_skew_bound(params, d) + 1e-7


class TestCaterpillar:
    def test_structure(self):
        top = caterpillar(4, 2)
        assert len(top) == 4 + 8
        assert top.degree(0) == 3  # one spine neighbor + two legs
        assert top.degree(1) == 4
        assert top.degree((2, 0)) == 1

    def test_no_legs_is_a_path(self):
        top = caterpillar(5, 0)
        assert len(top) == 5
        assert diameter(top) == 4

    def test_invalid_arguments(self):
        with pytest.raises(TopologyError):
            caterpillar(1, 2)
        with pytest.raises(TopologyError):
            caterpillar(3, -1)


class TestCirculant:
    def test_ring_special_case(self):
        top = circulant(8, [1])
        assert diameter(top) == 4
        assert all(top.degree(v) == 2 for v in top.nodes)

    def test_chords_shrink_diameter(self):
        plain = circulant(16, [1])
        chorded = circulant(16, [1, 4])
        assert diameter(chorded) < diameter(plain)

    def test_invalid_offsets(self):
        with pytest.raises(TopologyError):
            circulant(8, [])
        with pytest.raises(TopologyError):
            circulant(8, [5])  # > n//2
        with pytest.raises(TopologyError):
            circulant(2, [1])


class TestSinusoidalDrift:
    def test_within_bounds(self):
        model = SinusoidalDrift(0.05, period=20.0, steps=8)
        model.validated_rate_function("n", 100.0)

    def test_oscillates(self):
        model = SinusoidalDrift(0.05, period=20.0, steps=16,
                                phases={"n": 0.0})
        rate = model.rate_function("n", 40.0)
        values = [rate.rate_at(t) for t in (2.0, 7.0, 12.0, 17.0)]
        assert max(values) > 1.02
        assert min(values) < 0.98

    def test_phases_spread_automatically(self):
        model = SinusoidalDrift(0.05, period=20.0)
        a = model.rate_function("a", 40.0)
        b = model.rate_function("b", 40.0)
        assert a.segments != b.segments

    def test_phase_stable_per_node(self):
        model = SinusoidalDrift(0.05, period=20.0)
        first = model.rate_function("a", 40.0).segments
        second = model.rate_function("a", 40.0).segments
        assert first == second

    def test_invalid_arguments(self):
        with pytest.raises(ScheduleError):
            SinusoidalDrift(0.05, period=0.0)
        with pytest.raises(ScheduleError):
            SinusoidalDrift(0.05, period=10.0, steps=1)
        with pytest.raises(ScheduleError):
            SinusoidalDrift(0.05, period=10.0, amplitude=0.2)

    def test_aopt_bounds_hold_under_sinusoid(self, params):
        from repro.topology import line

        trace = run_execution(
            line(6),
            AoptAlgorithm(params),
            SinusoidalDrift(params.epsilon, period=30.0),
            ConstantDelay(params.delay_bound),
            150.0,
        )
        assert trace.global_skew().value <= global_skew_bound(params, 5) + 1e-7


class TestReportGeneration:
    def test_quick_report_sections(self):
        from repro.analysis.report import generate_report

        text = generate_report(quick=True)
        for section in (
            "Closed-form bounds",
            "Theorems 5.5, 5.10",
            "Theorem 7.2",
            "delay-switch adversary",
            "Conditions (1) and (2)",
        ):
            assert section in text

    def test_report_cli_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "report.md"
        exit_code = main(["report", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        assert "Reproduction report" in output.read_text()
