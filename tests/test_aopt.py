"""Behavioural tests for the A^opt node (Algorithms 1-4 of the paper)."""

import math

import pytest

from repro.core.node import AoptAlgorithm, AoptNode
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, ZeroDelay
from repro.sim.drift import ConstantDrift, PerNodeDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.sim.runner import simulate_aopt
from repro.topology.generators import line, star


def run_aopt(topology, params, drift=None, delay=None, horizon=100.0, **kwargs):
    engine = SimulationEngine(
        topology,
        AoptAlgorithm(params, record_estimates=kwargs.pop("record_estimates", False)),
        drift or ConstantDrift(params.epsilon),
        delay or ConstantDelay(params.delay_bound),
        horizon,
        **kwargs,
    )
    return engine, engine.run()


class TestInitialization:
    def test_flood_starts_everyone(self, params):
        _, trace = run_aopt(line(6), params)
        for node in range(6):
            assert trace.start_times[node] == pytest.approx(
                node * params.delay_bound
            )

    def test_initiator_sends_zero_zero(self, params):
        _, trace = run_aopt(line(2), params, horizon=50.0, record_messages=True)
        first = trace.message_log[0]
        assert first.sender == 0
        assert first.payload == (0.0, 0.0)

    def test_woken_node_triggers_sending_event(self, params):
        """§4.2: the first received message triggers a sending event."""
        _, trace = run_aopt(line(3), params, horizon=50.0, record_messages=True)
        # Node 1 wakes at T and must send to both 0 and 2 at that instant.
        wake = trace.start_times[1]
        from_1 = [m for m in trace.message_log if m.sender == 1 and m.send_time == wake]
        assert {m.receiver for m in from_1} == {0, 2}


class TestAlgorithm1Sending:
    def test_sends_at_multiples_of_h0(self, params):
        """Messages carry L^max values that are integer multiples of H0."""
        _, trace = run_aopt(line(3), params, horizon=80.0, record_messages=True)
        for message in trace.message_log:
            _, lmax = message.payload
            remainder = (lmax / params.h0) % 1.0
            assert min(remainder, 1 - remainder) < 1e-6

    def test_amortized_frequency_theta_one_over_h0(self, params):
        """§6.1: each node sends Θ(1/H0) messages per unit time."""
        _, trace = run_aopt(line(4), params, horizon=300.0)
        for node in range(4):
            frequency = trace.amortized_message_frequency(node)
            assert 0.5 / params.h0 <= frequency <= 3.0 / params.h0

    def test_one_send_per_multiple(self, params):
        """No node sends two messages for the same multiple of H0."""
        _, trace = run_aopt(line(3), params, horizon=80.0, record_messages=True)
        seen = set()
        for message in trace.message_log:
            _, lmax = message.payload
            key = (message.sender, message.receiver, round(lmax / params.h0))
            assert key not in seen, f"duplicate send for multiple {key}"
            seen.add(key)


class TestAlgorithm2Receive:
    def test_larger_lmax_forwarded_immediately(self, params):
        """A larger estimate is flooded at network speed, not at H0 pace."""
        top = line(5)
        drift = PerNodeDrift(params.epsilon, {0: 1 + params.epsilon}, default=1.0)
        _, trace = run_aopt(top, params, drift=drift, horizon=60.0, record_messages=True)
        # Node 0 runs fast, so its L^max marks lead; nodes 1..4 forward the
        # estimate onward within a delay of receiving it.
        forwards = [
            m
            for m in trace.message_log
            if m.sender == 2 and m.receiver == 3 and m.send_time > 10
        ]
        assert forwards, "middle node should forward estimates"

    def test_stale_value_does_not_regress_estimate(self, params):
        """Algorithm 2 line 5: only values above ℓ_v^w update the estimate."""
        engine, _ = run_aopt(line(2), params, horizon=30.0)
        node = engine.node_state(1)
        before = dict(node._raw_received)

        class FakeCtx:
            node_id = 1
            neighbors = (0,)

            def hardware(self):
                return engine.hardware_value(1, 30.0)

            def logical(self):
                return engine.logical_value(1, 30.0)

            def set_rate_multiplier(self, rho):
                pass

            def rate_multiplier(self):
                return 1.0

            def jump_logical(self, value):
                pass

            def send_to(self, *a):
                pass

            def send_all(self, *a):
                pass

            def set_alarm(self, *a):
                pass

            def cancel_alarm(self, *a):
                pass

            def probe(self, *a):
                pass

        stale_value = before[0] - 5.0
        node.on_message(FakeCtx(), 0, (stale_value, 0.0))
        assert node._raw_received[0] == before[0]

    def test_estimates_tracked_per_neighbor(self, params):
        engine, trace = run_aopt(star(4), params, horizon=60.0)
        hub = engine.node_state(0)
        hw = trace.hardware_value(0, 60.0)
        for leaf in (1, 2, 3):
            assert hub.estimate_of(leaf, hw) is not None

    def test_estimate_of_unheard_neighbor_is_none(self, params):
        algo = AoptAlgorithm(params)
        node = algo.make_node(0, (1,))
        assert node.estimate_of(1, 0.0) is None


class TestAlgorithm3RateControl:
    def test_laggard_keeps_up_via_boosts(self, params):
        """Nodes chasing a fast leader must outrun their own hardware.

        Node 0 runs at 1+ε while nodes 1, 2 run at 1; the only way they can
        track the leader's L^max is through ρ = 1+μ boost periods, so their
        logical clocks must end up strictly ahead of their hardware clocks
        and close to the leader.
        """
        top = line(3)
        drift = PerNodeDrift(params.epsilon, {0: 1 + params.epsilon}, default=1.0)
        _, trace = run_aopt(top, params, drift=drift, horizon=100.0)
        for node in (1, 2):
            logical = trace.logical_value(node, 100.0)
            hardware = trace.hardware_value(node, 100.0)
            assert logical > hardware + 1.0  # boosts happened
            assert trace.skew(0, node, 100.0) < params.kappa + 1e-6

    def test_l_never_exceeds_lmax(self, params):
        """Corollary 5.2 (i): L_v ≤ L^max_v at all times."""
        engine, trace = run_aopt(
            line(4),
            params,
            drift=TwoGroupDrift(params.epsilon, [0, 1]),
            horizon=150.0,
        )
        for node in range(4):
            state = engine.node_state(node)
            for t in [10.0, 50.0, 100.0, 149.0]:
                logical = trace.logical_value(node, t)
                lmax = state.l_max(trace.hardware_value(node, t))
                # State reflects horizon-time anchors; compare at horizon.
            logical = trace.logical_value(node, trace.horizon)
            lmax = state.l_max(trace.hardware_value(node, trace.horizon))
            assert logical <= lmax + 1e-6

    def test_multiplier_only_two_values(self, params):
        """ρ_v ∈ {1, 1+μ} (Algorithm 3)."""
        _, trace = run_aopt(
            line(4),
            params,
            drift=TwoGroupDrift(params.epsilon, [0, 1]),
            horizon=120.0,
        )
        allowed = {1.0, 1 + params.mu}
        for node in range(4):
            record = trace.logical[node]
            for t in [13.0, 47.0, 88.0, 119.0]:
                if t >= trace.start_times[node]:
                    assert record.multiplier_at(t) in allowed


class TestAlgorithm4Reset:
    def test_boost_is_bounded(self, params):
        """After H^R is reached the node returns to the hardware rate.

        With drift-free clocks and equal constant delays, boosts are short
        transients; at most of the probed instants, ρ must be 1.
        """
        _, trace = run_aopt(line(3), params, drift=ConstantDrift(params.epsilon),
                            delay=ConstantDelay(params.delay_bound), horizon=200.0)
        at_one = sum(
            1
            for t in range(60, 200, 10)
            for n in range(3)
            if trace.logical[n].multiplier_at(float(t)) == 1.0
        )
        assert at_one >= 30  # out of 42 probes


class TestZeroDelayConvergence:
    def test_perfect_conditions_yield_tiny_skew(self, params):
        """Zero delays and no drift: skews collapse to (near) zero."""
        _, trace = run_aopt(
            line(5),
            params,
            drift=ConstantDrift(params.epsilon, rate=1.0),
            delay=ZeroDelay(max_delay=params.delay_bound),
            horizon=100.0,
        )
        assert trace.skew(0, 4, 100.0) == pytest.approx(0.0, abs=1e-6)


class TestSimulateAoptHelper:
    def test_returns_trace_with_monitors(self, params):
        trace = simulate_aopt(line(4), params, horizon=60.0)
        assert trace.horizon == 60.0
        assert trace.total_messages() > 0

    def test_default_horizon_positive(self, params):
        trace = simulate_aopt(line(3), params)
        assert trace.horizon > 0
