"""Self-tests for reprolint (see ``docs/LINT.md``).

Fixture-driven: each rule has one minimal offending file under
``tests/fixtures/lint/`` that must trigger it, a compliant module must
stay silent, and the committed source tree itself must lint clean under
the committed baseline — the same gate ``make lint`` enforces in CI.

The suite also pins the satellite fixes of PR 4 in both directions:
the sorted ``patterns_match`` in ``repro.adversary.shifting`` passes
R003, while a fixture copy of its pre-fix body fails it — reverting the
fix would make the lint gate fail.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.errors import LintError
from repro.lint import (
    Baseline,
    BaselineEntry,
    RULES,
    iter_python_files,
    lint_paths,
    load_baseline,
    write_baseline,
)

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def lint_fixture(name, rules=None):
    return lint_paths([FIXTURES / name], rules=rules, root=REPO_ROOT)


# ---------------------------------------------------------------------------
# one offending fixture per rule
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    def test_r001_global_and_unseeded_random(self):
        report = lint_fixture("r001_global_random.py")
        assert {f.rule for f in report.findings} == {"R001"}
        messages = [f.message for f in report.findings]
        assert sum("process-global" in m for m in messages) == 2
        assert sum("unseeded" in m.lower() for m in messages) == 1

    def test_r002_wall_clock_and_env_reads(self):
        report = lint_fixture("r002")
        assert {f.rule for f in report.findings} == {"R002"}
        messages = " ".join(f.message for f in report.findings)
        assert "time.time()" in messages
        assert "datetime.now()" in messages
        assert "os.environ" in messages

    def test_r002_requires_replay_critical_path(self):
        # The same offences outside a sim/exec/faults directory are out
        # of scope: R002 is a hot-path rule, not a global ban.
        source = (FIXTURES / "r002" / "sim" / "wall_clock.py").read_text()
        report = self._lint_source(source, "wall_clock_elsewhere.py")
        assert not [f for f in report.findings if f.rule == "R002"]

    def test_r003_unordered_set_in_digest_code(self):
        report = lint_fixture("r003_unordered_digest.py")
        assert {f.rule for f in report.findings} == {"R003"}
        assert len(report.findings) == 2  # one iterated, one formatted

    def test_r004_both_coverage_hazards(self):
        report = lint_fixture("r004_digest_coverage.py")
        assert {f.rule for f in report.findings} == {"R004"}
        messages = " ".join(f.message for f in report.findings)
        assert "'seed'" in messages  # dataclass field the digest misses
        assert "self._cache" in messages  # lazy attr on digest-critical class

    def test_r005_export_inconsistencies(self):
        report = lint_fixture("r005_exports.py")
        assert {f.rule for f in report.findings} == {"R005"}
        messages = " ".join(f.message for f in report.findings)
        assert "'missing_name'" in messages
        assert "duplicate" in messages
        assert "'straggler'" in messages

    def test_r005_missing_all(self, tmp_path):
        path = tmp_path / "no_exports.py"
        path.write_text("def anything():\n    return 1\n")
        report = lint_paths([path], rules=["R005"], root=tmp_path)
        assert [f.rule for f in report.findings] == ["R005"]
        assert "no __all__" in report.findings[0].message

    @staticmethod
    def _lint_source(source, name, rules=None, tmp=None):
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / name
            path.write_text(source)
            return lint_paths([path], rules=rules, root=d)


# ---------------------------------------------------------------------------
# compliant code stays silent
# ---------------------------------------------------------------------------


class TestCleanCode:
    def test_clean_fixture_has_no_findings(self):
        report = lint_fixture("clean_module.py")
        assert report.ok, [f.format_text() for f in report.findings]

    def test_inline_suppression_is_line_scoped(self):
        report = lint_fixture("suppressed.py")
        assert report.suppressed == 1
        assert len(report.findings) == 1  # the unsuppressed copy still fires
        assert report.findings[0].rule == "R001"

    def test_seeded_random_accepted(self, tmp_path):
        path = tmp_path / "seeded.py"
        path.write_text(
            "import random\n"
            "__all__ = ['stream']\n"
            "def stream(seed):\n"
            "    return random.Random(f'component:{seed}')\n"
        )
        assert lint_paths([path], root=tmp_path).ok


# ---------------------------------------------------------------------------
# the committed tree is the ultimate fixture
# ---------------------------------------------------------------------------


class TestRepositoryTree:
    def test_src_and_benchmarks_lint_clean(self):
        baseline = load_baseline(REPO_ROOT / ".reprolint-baseline.json")
        report = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
            baseline=baseline,
            root=REPO_ROOT,
        )
        assert report.ok, "\n".join(f.format_text() for f in report.findings)
        assert report.baselined >= 1  # __main__.py R005 waiver is in use

    def test_shifting_fix_passes_r003(self):
        report = lint_paths(
            [REPO_ROOT / "src" / "repro" / "adversary" / "shifting.py"],
            rules=["R003"],
            root=REPO_ROOT,
        )
        assert report.ok, [f.format_text() for f in report.findings]

    def test_unsorted_shifting_copy_fails_r003(self):
        # The pre-fix body of patterns_match (fixture copy): reverting
        # the sorted() satellite fix would fail the lint gate.
        report = lint_fixture("r003_shifting_unsorted.py", rules=["R003"])
        assert len(report.findings) == 3
        assert {f.rule for f in report.findings} == {"R003"}

    def test_spec_label_exemption_is_load_bearing(self, tmp_path):
        # Strip the digest-exempt marker from the real ExecutionSpec:
        # R004 must then flag the label field's exclusion from digest().
        source = (REPO_ROOT / "src" / "repro" / "exec" / "spec.py").read_text()
        marker = "# reprolint: digest-exempt"
        assert marker in source
        lines = [
            line.split("  # reprolint:")[0] if marker in line else line
            for line in source.splitlines()
        ]
        stripped = tmp_path / "spec_copy.py"
        stripped.write_text("\n".join(lines) + "\n")
        report = lint_paths([stripped], rules=["R004"], root=tmp_path)
        assert [f.rule for f in report.findings] == ["R004"]
        assert "'label'" in report.findings[0].message


# ---------------------------------------------------------------------------
# engine behaviour: traversal, baseline, errors, determinism
# ---------------------------------------------------------------------------


class TestEngine:
    def test_walk_is_sorted_and_skips_caches(self, tmp_path):
        (tmp_path / "b.py").write_text("__all__ = []\n")
        (tmp_path / "a.py").write_text("__all__ = []\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "c.py").write_text("broken(")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_unknown_path_and_rule_raise(self, tmp_path):
        with pytest.raises(LintError):
            list(iter_python_files([tmp_path / "missing"]))
        with pytest.raises(LintError):
            lint_paths([FIXTURES / "clean_module.py"], rules=["R999"])

    def test_syntax_error_becomes_e001_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([bad], root=tmp_path)
        assert [f.rule for f in report.findings] == ["E001"]

    def test_findings_are_sorted_and_stable(self):
        first = lint_paths([FIXTURES], root=REPO_ROOT)
        second = lint_paths([FIXTURES], root=REPO_ROOT)
        assert [f.as_dict() for f in first.findings] == [
            f.as_dict() for f in second.findings
        ]
        assert first.findings == sorted(
            first.findings, key=lambda f: f.sort_key()
        )

    def test_baseline_roundtrip(self, tmp_path):
        report = lint_fixture("r001_global_random.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings, reason="test waiver")
        loaded = load_baseline(baseline_path)
        again = lint_paths(
            [FIXTURES / "r001_global_random.py"],
            baseline=loaded,
            root=REPO_ROOT,
        )
        assert again.ok
        assert again.baselined == len(report.findings)

    def test_baseline_matches_path_and_rule_only(self):
        baseline = Baseline(
            entries=(BaselineEntry(path="x.py", rule="R001"),)
        )
        from repro.lint import Finding

        assert baseline.matches(Finding("x.py", 1, 0, "R001", "m"))
        assert not baseline.matches(Finding("x.py", 1, 0, "R002", "m"))
        assert not baseline.matches(Finding("y.py", 1, 0, "R001", "m"))

    def test_rule_registry_is_complete(self):
        # Single-file rules only; R006/R009 live in PROJECT_RULES (see
        # test_lint_graph.py for the whole-program registry).
        assert sorted(RULES) == [
            "R001", "R002", "R003", "R004", "R005", "R007", "R008"
        ]
        for rule in RULES.values():
            assert rule.summary


# ---------------------------------------------------------------------------
# CLI surface: exit codes and output formats
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "clean_module.py")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, capsys):
        code = cli_main(
            ["lint", "--no-baseline", str(FIXTURES / "r005_exports.py")]
        )
        assert code == 1
        assert "R005" in capsys.readouterr().out

    def test_exit_two_on_bad_path(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "does_not_exist")])
        assert code == 2
        assert "repro lint:" in capsys.readouterr().err

    def test_json_output_parses(self, capsys):
        code = cli_main(
            ["lint", "--format", "json", "--no-baseline",
             str(FIXTURES / "r001_global_random.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts_by_rule"] == {"R001": 3}
        assert all(f["rule"] == "R001" for f in payload["findings"])

    def test_rules_filter(self, capsys):
        code = cli_main(
            ["lint", "--rules", "R002", "--no-baseline",
             str(FIXTURES / "r001_global_random.py")]
        )
        assert code == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005",
                        "R006", "R007", "R008", "R009"):
            assert rule_id in out

    def test_write_baseline_accepts_findings(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        code = cli_main(
            ["lint", "--write-baseline", "--baseline", str(baseline_path),
             str(FIXTURES / "r001_global_random.py")]
        )
        assert code == 0
        assert baseline_path.exists()
        capsys.readouterr()
        code = cli_main(
            ["lint", "--baseline", str(baseline_path),
             str(FIXTURES / "r001_global_random.py")]
        )
        assert code == 0
        assert "baselined" in capsys.readouterr().out
