"""Tests for the §6 and §8 model variants."""

import pytest

from repro.analysis.complexity import bit_stats
from repro.analysis.metrics import check_envelope
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ConfigurationError
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import ConstantDrift, PerNodeDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line, star
from repro.variants import (
    BitBudgetAoptAlgorithm,
    BoundedDelayAoptAlgorithm,
    DiscreteAoptAlgorithm,
    ExternalAoptAlgorithm,
    HardwareEnvelopeAoptAlgorithm,
    MinGapAoptAlgorithm,
    bit_budget_params,
    bounded_delay_params,
    discrete_params,
)

EPSILON = 0.05
DELAY = 1.0


@pytest.fixture
def drift():
    return TwoGroupDrift(EPSILON, [0, 1, 2])


@pytest.fixture
def delay():
    return ConstantDelay(DELAY)


class TestMinGap:
    def test_hard_frequency_bound(self, params, drift, delay):
        """§6.1: at most one send per H0 of hardware time, guaranteed."""
        horizon = 200.0
        trace = run_execution(line(6), MinGapAoptAlgorithm(params), drift, delay, horizon)
        for node in range(6):
            active_hw = trace.hardware_value(node, horizon)
            max_sends = active_hw / params.h0 + 2
            assert trace.messages_sent[node] <= len(line(6).neighbors(node)) * max_sends

    def test_skews_remain_bounded(self, params, drift, delay):
        trace = run_execution(line(6), MinGapAoptAlgorithm(params), drift, delay, 200.0)
        # §6.1: global skew grows by O(eps D H0) over the plain bound.
        slack = 2 * EPSILON * 5 * params.h0 * 4
        assert trace.global_skew().value <= global_skew_bound(params, 5) + slack

    def test_envelope_preserved(self, params, drift, delay):
        trace = run_execution(line(5), MinGapAoptAlgorithm(params), drift, delay, 150.0)
        assert check_envelope(trace, EPSILON) <= 1e-7


class TestBitBudget:
    def test_steady_state_bits_constant(self, drift, delay):
        params = bit_budget_params(EPSILON, DELAY)
        algo = BitBudgetAoptAlgorithm(params)
        trace = run_execution(line(6), algo, drift, delay, 200.0, record_messages=True)
        steady = [m for m in trace.message_log if m.payload[0] == "delta"]
        assert steady
        assert all(m.size_bits == algo.steady_state_bits() for m in steady)
        assert algo.steady_state_bits() <= 16

    def test_init_messages_amortize(self, drift, delay):
        params = bit_budget_params(EPSILON, DELAY)
        algo = BitBudgetAoptAlgorithm(params)
        trace = run_execution(line(6), algo, drift, delay, 300.0, record_messages=True)
        inits = [m for m in trace.message_log if m.payload[0] == "init"]
        # One init per directed edge.
        assert len(inits) == 2 * len(line(6).edges())

    def test_mean_bits_small(self, drift, delay):
        params = bit_budget_params(EPSILON, DELAY)
        algo = BitBudgetAoptAlgorithm(params)
        trace = run_execution(line(6), algo, drift, delay, 300.0, record_messages=True)
        stats = bit_stats(trace)
        assert stats.mean_bits_per_message < 12

    def test_skews_match_plain_aopt_shape(self, drift, delay):
        params = bit_budget_params(EPSILON, DELAY)
        trace = run_execution(
            line(6), BitBudgetAoptAlgorithm(params), drift, delay, 200.0
        )
        plain_params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        plain = run_execution(
            line(6), AoptAlgorithm(plain_params), drift, delay, 200.0
        )
        assert trace.global_skew().value <= plain.global_skew().value * 1.3 + 1.0

    def test_envelope_preserved(self, drift, delay):
        params = bit_budget_params(EPSILON, DELAY)
        trace = run_execution(
            line(5), BitBudgetAoptAlgorithm(params), drift, delay, 150.0
        )
        assert check_envelope(trace, EPSILON) <= 1e-7

    def test_reconstruction_tracks_true_values(self, drift, delay):
        """Receiver-side reconstruction lags the truth by at most ~q + cap."""
        params = bit_budget_params(EPSILON, DELAY)
        algo = BitBudgetAoptAlgorithm(params)
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine(line(3), algo, drift, delay, 150.0)
        trace = engine.run()
        node = engine.node_state(1)
        for neighbor in (0, 2):
            reconstructed = node._their_logical.get(neighbor)
            assert reconstructed is not None
            truth_at_end = trace.logical_value(neighbor, 150.0)
            assert reconstructed <= truth_at_end + 1e-6


class TestBoundedDelays:
    def test_params_use_uncertainty(self):
        params = bounded_delay_params(EPSILON, min_delay=5.0, max_delay=6.0)
        assert params.delay_bound == pytest.approx(1.0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            bounded_delay_params(EPSILON, min_delay=3.0, max_delay=2.0)
        with pytest.raises(ConfigurationError):
            BoundedDelayAoptAlgorithm(
                bounded_delay_params(EPSILON, 0.0, 1.0), min_delay=-1.0
            )

    def test_compensation_improves_over_plain(self, drift):
        """Compensating T1 must beat treating [T1, T2] as [0, T2]."""
        t1, t2 = 4.0, 5.0
        channel = UniformDelay(t1, t2, seed=3, max_delay=t2)
        horizon = 400.0
        compensated_params = bounded_delay_params(EPSILON, t1, t2)
        compensated = run_execution(
            line(6),
            BoundedDelayAoptAlgorithm(compensated_params, min_delay=t1),
            drift,
            channel,
            horizon,
        )
        naive_params = SyncParams.recommended(epsilon=EPSILON, delay_bound=t2)
        naive = run_execution(
            line(6), AoptAlgorithm(naive_params), drift, channel, horizon
        )
        # Compare steady-state skew (after initialization transients).
        t_probe = horizon - 1.0
        compensated_spread = compensated.spread_at(t_probe)
        naive_spread = naive.spread_at(t_probe)
        assert compensated_spread < naive_spread

    def test_envelope_preserved(self, drift):
        t1, t2 = 2.0, 3.0
        params = bounded_delay_params(EPSILON, t1, t2)
        trace = run_execution(
            line(4),
            BoundedDelayAoptAlgorithm(params, min_delay=t1),
            drift,
            ConstantDelay(t2),
            200.0,
        )
        assert check_envelope(trace, EPSILON) <= 1e-7


class TestDiscrete:
    def test_params_enlarge_kappa(self):
        base = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        quantized = discrete_params(EPSILON, DELAY, frequency=8.0)
        assert quantized.kappa > base.kappa

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            discrete_params(EPSILON, DELAY, frequency=0.0)
        with pytest.raises(ConfigurationError):
            DiscreteAoptAlgorithm(
                SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY), 0.0
            )

    def test_sent_values_are_tick_multiples(self, drift, delay):
        frequency = 8.0
        params = discrete_params(EPSILON, DELAY, frequency=frequency)
        trace = run_execution(
            line(4), DiscreteAoptAlgorithm(params, frequency), drift, delay,
            120.0, record_messages=True,
        )
        tick = 1.0 / frequency
        for message in trace.message_log:
            for value in message.payload:
                remainder = (value / tick) % 1.0
                assert min(remainder, 1 - remainder) < 1e-6

    def test_fine_ticks_approach_continuous(self, drift, delay):
        coarse_params = discrete_params(EPSILON, DELAY, frequency=2.0)
        fine_params = discrete_params(EPSILON, DELAY, frequency=256.0)
        coarse = run_execution(
            line(5), DiscreteAoptAlgorithm(coarse_params, 2.0), drift, delay, 150.0
        )
        fine = run_execution(
            line(5), DiscreteAoptAlgorithm(fine_params, 256.0), drift, delay, 150.0
        )
        assert fine.local_skew().value <= coarse.local_skew().value + 1e-6


class TestExternal:
    def make_drift(self):
        # Source (node 0) must run at exactly real time.
        return PerNodeDrift(EPSILON, {0: 1.0}, default=1 - EPSILON)

    def test_never_ahead_of_real_time(self, params, delay):
        trace = run_execution(
            line(5), ExternalAoptAlgorithm(params, source=0),
            self.make_drift(), delay, 200.0, initiators=[0],
        )
        for node in range(5):
            for t in (50.0, 120.0, 199.0):
                assert trace.logical_value(node, t) <= t + 1e-7

    def test_skew_to_source_linear_in_distance(self, params, delay):
        trace = run_execution(
            line(5), ExternalAoptAlgorithm(params, source=0),
            self.make_drift(), delay, 300.0, initiators=[0],
        )
        t = 299.0
        for node in range(1, 5):
            lag = t - trace.logical_value(node, t)
            # t - L_v <= d(v, v0) T + O(tau): generous constant for tau.
            assert lag <= node * DELAY + 3 * params.h0 + params.kappa

    def test_source_is_identity_clock(self, params, delay):
        trace = run_execution(
            line(4), ExternalAoptAlgorithm(params, source=0),
            self.make_drift(), delay, 100.0, initiators=[0],
        )
        assert trace.logical_value(0, 77.0) == pytest.approx(77.0)

    def test_invalid_period_rejected(self, params):
        with pytest.raises(ConfigurationError):
            ExternalAoptAlgorithm(params, source=0, source_period=0.0)

    def test_star_topology(self, params, delay):
        trace = run_execution(
            star(5), ExternalAoptAlgorithm(params, source=0),
            self.make_drift(), delay, 150.0, initiators=[0],
        )
        for node in range(5):
            assert trace.logical_value(node, 149.0) <= 149.0 + 1e-7


class TestHardwareEnvelope:
    def test_stays_inside_hardware_envelope(self, params, drift, delay):
        trace = run_execution(
            line(5), HardwareEnvelopeAoptAlgorithm(params), drift, delay, 200.0
        )
        for t in (20.0, 75.0, 140.0, 199.0):
            hardware_values = [trace.hardware_value(n, t) for n in range(5)]
            low, high = min(hardware_values), max(hardware_values)
            for node in range(5):
                logical = trace.logical_value(node, t)
                assert low - 1e-6 <= logical <= high + 1e-6

    def test_logical_at_least_own_hardware(self, params, drift, delay):
        """The invariant L_v >= H_v behind the lower-envelope argument."""
        trace = run_execution(
            line(5), HardwareEnvelopeAoptAlgorithm(params), drift, delay, 200.0
        )
        for node in range(5):
            for t in (30.0, 90.0, 199.0):
                assert (
                    trace.logical_value(node, t)
                    >= trace.hardware_value(node, t) - 1e-6
                )

    def test_still_synchronizes(self, params, drift, delay):
        trace = run_execution(
            line(5), HardwareEnvelopeAoptAlgorithm(params), drift, delay, 200.0
        )
        free_running = 2 * EPSILON * 200.0
        assert trace.global_skew().value < free_running
