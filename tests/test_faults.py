"""Tests for the fault-injection subsystem.

Covers the declarative :class:`FaultSchedule`, the compiled
:class:`FaultInjector`, the engine's crash/link/message-fault semantics,
the recovery metrics, the recovery-aware ``aopt-ft`` variant, and — the
acceptance criterion for the subsystem — that a fault-injected spec
replays byte-identically through the :class:`SweepExecutor` across
worker counts and cache states.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ConfigurationError, ScheduleError
from repro.exec import ExecutionSpec, ResultCache, SweepExecutor
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    fault_epochs,
    loss_accounting,
    per_epoch_skew,
    stable_uniform,
    time_to_resync,
)
from repro.sim.delays import ConstantDelay, LossyDelay
from repro.sim.drift import ConstantDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.variants.fault_tolerant import FaultTolerantAoptAlgorithm

from tests.test_engine import ScriptedAlgorithm

pytestmark = pytest.mark.faults

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
HORIZON = 40.0


# ---------------------------------------------------------------------------
# per-message hashing
# ---------------------------------------------------------------------------


class TestStableUniform:
    def test_deterministic(self):
        assert stable_uniform(7, "drop", 0, 1, 2.5, 3) == stable_uniform(
            7, "drop", 0, 1, 2.5, 3
        )

    def test_range_and_spread(self):
        values = [stable_uniform(0, "x", i) for i in range(2000)]
        assert all(0.0 <= v < 1.0 for v in values)
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55  # roughly uniform

    def test_key_sensitivity(self):
        base = stable_uniform(0, "drop", 0, 1, 2.0, 5)
        assert base != stable_uniform(1, "drop", 0, 1, 2.0, 5)  # seed
        assert base != stable_uniform(0, "dup", 0, 1, 2.0, 5)  # kind
        assert base != stable_uniform(0, "drop", 1, 0, 2.0, 5)  # direction
        assert base != stable_uniform(0, "drop", 0, 1, 2.5, 5)  # send time
        assert base != stable_uniform(0, "drop", 0, 1, 2.0, 6)  # seq

    def test_order_independent(self):
        # The variate depends only on its own key — evaluating other keys
        # first (in any order) cannot change it, unlike a shared RNG stream.
        alone = stable_uniform(3, "drop", 4, 5, 1.0, 0)
        for i in range(50):
            stable_uniform(3, "drop", i, i + 1, float(i), i)
        assert stable_uniform(3, "drop", 4, 5, 1.0, 0) == alone


# ---------------------------------------------------------------------------
# schedule validation and queries
# ---------------------------------------------------------------------------


class TestFaultSchedule:
    def test_probabilities_validated(self):
        with pytest.raises(ScheduleError, match="drop_probability"):
            FaultSchedule(drop_probability=1.0)
        with pytest.raises(ScheduleError, match="duplicate_probability"):
            FaultSchedule(duplicate_probability=-0.1)
        with pytest.raises(ScheduleError, match="spike_delay"):
            FaultSchedule(spike_probability=0.5)  # no spike_delay
        with pytest.raises(ScheduleError, match="non-negative"):
            FaultSchedule().crash(0, at=-1.0)

    def test_builders_chain(self):
        schedule = (
            FaultSchedule()
            .crash(3, at=5.0, until=8.0)
            .link_down(0, 1, at=2.0, until=4.0)
        )
        assert (5.0, 3, "crash") in schedule.node_events
        assert (8.0, 3, "recover") in schedule.node_events
        assert (2.0, (0, 1), "link-down") in schedule.link_events
        assert (4.0, (0, 1), "link-up") in schedule.link_events

    def test_partition_takes_down_every_cut_edge(self):
        schedule = FaultSchedule().partition([(0, 1), (2, 3)], at=1.0, until=2.0)
        assert len(schedule.link_events) == 4

    def test_boundaries_and_cleared_time(self):
        schedule = (
            FaultSchedule()
            .crash(0, at=5.0, until=8.0)
            .link_down(1, 2, at=5.0, until=50.0)
        )
        assert schedule.boundaries(20.0) == [5.0, 8.0]  # 50 beyond horizon
        assert schedule.cleared_time() == 50.0
        assert FaultSchedule().cleared_time() == 0.0

    def test_has_message_faults(self):
        assert not FaultSchedule().has_message_faults
        assert not FaultSchedule().crash(0, at=1.0).has_message_faults
        assert FaultSchedule(drop_probability=0.1).has_message_faults
        assert FaultSchedule(
            spike_probability=0.1, spike_delay=1.0
        ).has_message_faults

    def test_random_crash_cycles_deterministic(self):
        nodes = list(range(5))
        a = FaultSchedule.random_crash_cycles(
            nodes, crash_rate=0.05, mean_downtime=3.0, horizon=200.0, seed=9
        )
        b = FaultSchedule.random_crash_cycles(
            list(reversed(nodes)),  # iteration order must not matter
            crash_rate=0.05,
            mean_downtime=3.0,
            horizon=200.0,
            seed=9,
        )
        assert sorted(a.node_events) == sorted(b.node_events)
        assert a.node_events  # rate high enough to fire within the horizon
        c = FaultSchedule.random_crash_cycles(
            nodes, crash_rate=0.05, mean_downtime=3.0, horizon=200.0, seed=10
        )
        assert sorted(a.node_events) != sorted(c.node_events)

    def test_random_crash_cycles_validation(self):
        with pytest.raises(ScheduleError, match="crash_rate"):
            FaultSchedule.random_crash_cycles([0], 0.0, 1.0, 10.0)
        with pytest.raises(ScheduleError, match="mean_downtime"):
            FaultSchedule.random_crash_cycles([0], 0.1, 0.0, 10.0)


# ---------------------------------------------------------------------------
# injector compilation and lookups
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_half_open_interval_semantics(self):
        injector = FaultInjector(FaultSchedule().crash(0, at=2.0, until=5.0))
        assert not injector.is_node_down(0, 1.999)
        assert injector.is_node_down(0, 2.0)  # down at the crash instant
        assert injector.is_node_down(0, 4.999)
        assert not injector.is_node_down(0, 5.0)  # up at the recovery instant
        assert not injector.is_node_down(1, 2.0)  # unfaulted node

    def test_crash_forever(self):
        injector = FaultInjector(FaultSchedule().crash(0, at=2.0))
        assert injector.is_node_down(0, 1e9)
        assert injector.next_recovery(0, 3.0) is None  # down forever

    def test_next_recovery(self):
        injector = FaultInjector(
            FaultSchedule().crash(0, at=2.0, until=5.0).crash(0, at=8.0, until=9.0)
        )
        assert injector.next_recovery(0, 3.0) == 5.0
        assert injector.next_recovery(0, 8.5) == 9.0
        assert injector.next_recovery(0, 6.0) is None  # currently up
        assert injector.next_recovery(1, 3.0) is None  # never faulted

    def test_link_down_both_orientations(self):
        injector = FaultInjector(FaultSchedule().link_down(0, 1, at=1.0, until=2.0))
        assert injector.is_link_down(0, 1, 1.5)
        assert injector.is_link_down(1, 0, 1.5)  # undirected
        assert not injector.is_link_down(0, 1, 2.0)
        # Mixed orientations in the schedule pair up.
        mixed = FaultInjector(
            FaultSchedule().link_down(0, 1, at=1.0).link_up(1, 0, at=3.0)
        )
        assert mixed.is_link_down(0, 1, 2.0)
        assert not mixed.is_link_down(1, 0, 3.0)

    def test_alternation_violations_rejected(self):
        with pytest.raises(ScheduleError, match="already down"):
            FaultInjector(FaultSchedule().crash(0, at=1.0).crash(0, at=2.0))
        with pytest.raises(ScheduleError, match="without a prior"):
            FaultInjector(FaultSchedule().recover(0, at=2.0))
        with pytest.raises(ScheduleError, match="without a prior"):
            # Events are time-sorted before compiling, so an out-of-order
            # recover surfaces as a recover with no crash before it.
            FaultInjector(FaultSchedule().crash(0, at=5.0).recover(0, at=1.0))

    def test_topology_validation(self):
        topology = line(3)
        FaultInjector(FaultSchedule().crash(2, at=1.0), topology)  # fine
        with pytest.raises(ScheduleError, match="unknown node"):
            FaultInjector(FaultSchedule().crash(99, at=1.0), topology)
        with pytest.raises(ScheduleError, match="unknown link"):
            # 0 and 2 are both real nodes but not adjacent on a line.
            FaultInjector(FaultSchedule().link_down(0, 2, at=1.0), topology)

    def test_node_timeline_sorted_without_infinity(self):
        injector = FaultInjector(
            FaultSchedule().crash(1, at=5.0, until=7.0).crash(0, at=2.0)
        )
        timeline = injector.node_timeline()
        assert timeline == [
            (2.0, 0, "crash"),
            (5.0, 1, "crash"),
            (7.0, 1, "recover"),
        ]

    def test_message_fate_clean_without_message_faults(self):
        injector = FaultInjector(FaultSchedule().crash(0, at=1.0))
        fate = injector.message_fate(0, 1, 2.0, 0)
        assert not fate.drop and not fate.duplicate and fate.extra_delay == 0.0

    def test_message_fate_thresholds(self):
        # Pick probabilities that straddle the known hash value of one
        # message key, making each verdict deterministic.
        u_drop = stable_uniform(11, "drop", 0, 1, 2.0, 3)
        dropping = FaultInjector(
            FaultSchedule(drop_probability=min(u_drop * 1.01, 0.999), seed=11)
        )
        sparing = FaultInjector(
            FaultSchedule(drop_probability=u_drop * 0.99, seed=11)
        )
        assert dropping.message_fate(0, 1, 2.0, 3).drop
        assert not sparing.message_fate(0, 1, 2.0, 3).drop

        u_dup = stable_uniform(11, "dup", 0, 1, 2.0, 3)
        u_spike = stable_uniform(11, "spike", 0, 1, 2.0, 3)
        both = FaultInjector(
            FaultSchedule(
                duplicate_probability=min(u_dup * 1.01, 0.999),
                spike_probability=min(u_spike * 1.01, 0.999),
                spike_delay=4.0,
                seed=11,
            )
        )
        fate = both.message_fate(0, 1, 2.0, 3)
        assert fate.duplicate and fate.extra_delay == 4.0 and not fate.drop


# ---------------------------------------------------------------------------
# engine semantics
# ---------------------------------------------------------------------------


def _run_engine(topology, algorithm, faults, horizon=10.0, **kwargs):
    engine = SimulationEngine(
        topology,
        algorithm,
        ConstantDrift(0.01),
        ConstantDelay(0.5),
        horizon,
        faults=faults,
        **kwargs,
    )
    return engine, engine.run()


class TestEngineFaults:
    def test_link_down_loses_sends_exactly(self):
        # Both nodes start at t=0 and broadcast once; the only link is down.
        algo = ScriptedAlgorithm(on_start=lambda node, ctx: ctx.send_all(("x",)))
        _, trace = _run_engine(
            line(2),
            algo,
            FaultSchedule().link_down(0, 1, at=0.0),
            initiators={0: 0.0, 1: 0.0},
        )
        assert trace.messages_lost_link == 2
        assert sum(trace.messages_sent.values()) == 2  # sends still counted
        assert sum(trace.messages_received.values()) == 0
        assert trace.messages_dropped == 0

    def test_delivery_to_crashed_node_lost_exactly(self):
        algo = ScriptedAlgorithm(
            on_start=lambda node, ctx: (
                ctx.send_all(("x",)) if ctx.node_id == 0 else None
            )
        )
        engine, trace = _run_engine(
            line(2),
            algo,
            FaultSchedule().crash(1, at=0.25, until=5.0),
            initiators={0: 0.0, 1: 0.0},
        )
        # Sent at t=0 over a healthy link, due at t=0.5 while node 1 is down.
        assert trace.messages_lost_crash == 1
        assert sum(trace.messages_received.values()) == 0
        assert not engine.is_down(1)  # recovered by the horizon

    def test_crashed_node_free_runs_at_rate_one(self):
        def on_start(node, ctx):
            ctx.set_rate_multiplier(2.0)

        algo = ScriptedAlgorithm(on_start=on_start)
        engine, trace = _run_engine(
            line(2),
            algo,
            FaultSchedule().crash(0, at=1.0),  # down forever
            initiators={0: 0.0, 1: 0.0},
        )
        assert engine.is_down(0)
        # Before the crash the logical clock runs at 2x hardware; after, 1x.
        hw = trace.hardware[0]
        lg = trace.logical[0]
        assert lg.value(0.9) == pytest.approx(2 * hw.value(0.9))
        assert lg.value(3.0) - lg.value(2.0) == pytest.approx(
            hw.value(3.0) - hw.value(2.0)
        )

    def test_alarm_due_during_outage_fires_at_recovery(self):
        def on_start(node, ctx):
            if ctx.node_id == 0:
                ctx.set_alarm("ping", 2.0)

        algo = ScriptedAlgorithm(on_start=on_start)
        _run_engine(
            line(2),
            algo,
            FaultSchedule().crash(0, at=1.0, until=5.0),
            initiators={0: 0.0, 1: 0.0},
        )
        fired = [e for e in algo.nodes[0].events if e[0] == "alarm"]
        # Due at hardware 2.0 (wall ~2), swallowed by the outage, fired
        # exactly once at the recovery instant (wall 5).
        assert len(fired) == 1
        _, name, hardware = fired[0]
        assert name == "ping"
        assert 4.9 < hardware < 5.2

    def test_alarm_deferred_into_never_recovering_crash_is_dropped(self):
        def on_start(node, ctx):
            if ctx.node_id == 0:
                ctx.set_alarm("ping", 2.0)

        algo = ScriptedAlgorithm(on_start=on_start)
        _run_engine(
            line(2),
            algo,
            FaultSchedule().crash(0, at=1.0),
            initiators={0: 0.0, 1: 0.0},
        )
        assert not [e for e in algo.nodes[0].events if e[0] == "alarm"]

    def test_wake_during_outage_defers_start_to_recovery(self):
        algo = ScriptedAlgorithm()  # sends nothing
        _, trace = _run_engine(
            line(2),
            algo,
            FaultSchedule().crash(1, at=1.0, until=4.0),
            initiators={0: 0.0, 1: 2.0},
        )
        assert trace.start_times[0] == 0.0
        assert trace.start_times[1] == 4.0  # deferred from 2.0

    def test_on_recover_invoked_with_context(self):
        recovered = []

        class _Algo(ScriptedAlgorithm):
            def make_node(self, node_id, neighbors):
                node = super().make_node(node_id, neighbors)
                node.on_recover = lambda ctx: recovered.append(
                    (ctx.node_id, ctx.hardware())
                )
                return node

        _run_engine(
            line(2),
            _Algo(),
            FaultSchedule().crash(0, at=1.0, until=3.0),
            initiators={0: 0.0, 1: 0.0},
        )
        assert len(recovered) == 1
        node_id, hardware = recovered[0]
        assert node_id == 0
        assert 2.9 < hardware < 3.1  # hardware kept running through the outage

    def test_crash_before_start_does_not_invoke_on_recover(self):
        recovered = []

        class _Algo(ScriptedAlgorithm):
            def make_node(self, node_id, neighbors):
                node = super().make_node(node_id, neighbors)
                node.on_recover = lambda ctx: recovered.append(ctx.node_id)
                return node

        # Node 1 wakes at 2.0 but is down [0.5, 1.5): never started while
        # crashed, so recovery has no state to re-initialize.
        _, trace = _run_engine(
            line(2),
            _Algo(),
            FaultSchedule().crash(1, at=0.5, until=1.5),
            initiators={0: 0.0, 1: 2.0},
        )
        assert recovered == []
        assert trace.start_times[1] == 2.0

    def test_duplicate_and_spike_accounting(self):
        # High probabilities over a real A^opt run: duplicates add copies
        # and spikes may exceed the delay bound without tripping validation.
        schedule = FaultSchedule(
            duplicate_probability=0.5,
            spike_probability=0.3,
            spike_delay=3.0,  # 6x the delay bound — deliberate violation
            seed=4,
        )
        engine = SimulationEngine(
            line(3),
            AoptAlgorithm(PARAMS),
            ConstantDrift(0.01),
            ConstantDelay(0.5),
            30.0,
            faults=schedule,
            record_messages=True,
        )
        trace = engine.run()
        assert trace.messages_duplicated > 0
        spiked = [m for m in trace.message_log if m.delay > 0.5]
        assert spiked and max(m.delay for m in spiked) == pytest.approx(3.5)
        accounting = loss_accounting(trace)
        assert accounting["delivered"] == (
            accounting["sent"]
            + accounting["duplicated"]
            - accounting["dropped"]
            - accounting["lost_link"]
            - accounting["lost_crash"]
            - accounting["in_flight"]
        )

    def test_fault_run_is_deterministic(self):
        schedule = FaultSchedule(
            drop_probability=0.2, duplicate_probability=0.1, seed=3
        ).crash(1, at=5.0, until=12.0)
        spec = ExecutionSpec(
            line(3),
            AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0]),
            ConstantDelay(1.0),
            HORIZON,
            faults=schedule,
        )
        assert pickle.dumps(spec.run_summary()) == pickle.dumps(spec.run_summary())


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_fault_epochs(self):
        schedule = FaultSchedule().crash(0, at=3.0, until=7.0).link_down(
            0, 1, at=7.0, until=50.0
        )
        assert fault_epochs(schedule, 10.0) == [(0.0, 3.0), (3.0, 7.0), (7.0, 10.0)]
        assert fault_epochs(FaultSchedule(), 10.0) == [(0.0, 10.0)]

    def test_per_epoch_skew_covers_horizon(self):
        schedule = FaultSchedule().link_down(1, 2, at=10.0, until=20.0)
        trace = run_execution(
            line(4),
            AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0, 1]),
            ConstantDelay(1.0),
            HORIZON,
            faults=schedule,
        )
        epochs = per_epoch_skew(trace, schedule)
        assert [e.start for e in epochs] == [0.0, 10.0, 20.0]
        assert epochs[-1].end == HORIZON
        # Skew builds while partitioned, beyond the clean first epoch.
        assert epochs[1].global_skew > epochs[0].global_skew
        for epoch in epochs:
            assert epoch.global_skew >= epoch.local_skew >= 0.0

    def test_time_to_resync_clean_run_is_zero(self):
        trace = run_execution(
            line(3),
            AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0]),
            ConstantDelay(1.0),
            HORIZON,
        )
        huge = 1e9
        assert time_to_resync(trace, huge, clear_time=0.0) == 0.0

    def test_time_to_resync_never_recovering_is_none(self):
        trace = run_execution(
            line(3),
            AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0]),
            ConstantDelay(1.0),
            HORIZON,
        )
        # An unattainable bound: the spread is still "violating" at the
        # horizon, so recovery was not observed.
        assert time_to_resync(trace, -1.0, clear_time=0.0) is None

    def test_time_to_resync_requires_anchor(self):
        trace = run_execution(
            line(2), AoptAlgorithm(PARAMS), ConstantDrift(0.01),
            ConstantDelay(1.0), 10.0,
        )
        with pytest.raises(ValueError, match="clear_time or schedule"):
            time_to_resync(trace, 1.0)

    def test_amortized_frequency_excludes_crash_downtime(self):
        """Regression: the amortized message frequency used to divide by
        the full ``horizon − start_time`` span, counting scheduled crash
        downtime as active time and understating a recovered node's
        actual send rate."""
        schedule = FaultSchedule().crash(1, at=10.0, until=30.0)
        trace = run_execution(
            line(3),
            AoptAlgorithm(PARAMS),
            ConstantDrift(0.05),
            ConstantDelay(1.0),
            HORIZON,
            faults=schedule,
        )
        assert trace.downtime == {1: pytest.approx(20.0)}
        active = HORIZON - trace.start_times[1] - 20.0
        assert trace.amortized_message_frequency(1) == pytest.approx(
            trace.messages_sent[1] / active
        )
        # An unfaulted node divides by its full span, as before.
        assert trace.amortized_message_frequency(0) == pytest.approx(
            trace.messages_sent[0] / (HORIZON - trace.start_times[0])
        )
        # And the crashed node really does send at a *higher* amortized
        # rate than the naive full-span division would claim.
        naive = trace.messages_sent[1] / (HORIZON - trace.start_times[1])
        assert trace.amortized_message_frequency(1) > naive

    def test_downtime_reported_for_open_ended_crash(self):
        """A node that crashes after initializing and never recovers has
        its downtime counted up to the horizon."""
        schedule = FaultSchedule().crash(0, at=5.0)  # never recovers
        trace = run_execution(
            line(3),
            AoptAlgorithm(PARAMS),
            ConstantDrift(0.05),
            ConstantDelay(1.0),
            HORIZON,
            faults=schedule,
        )
        assert trace.downtime[0] == pytest.approx(HORIZON - 5.0)
        active = HORIZON - trace.start_times[0] - (HORIZON - 5.0)
        assert trace.amortized_message_frequency(0) == pytest.approx(
            trace.messages_sent[0] / active
        )

    def test_time_to_resync_measures_recovery_window(self):
        schedule = FaultSchedule().link_down(1, 2, at=10.0, until=20.0)
        trace = run_execution(
            line(4),
            AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0, 1]),
            ConstantDelay(1.0),
            120.0,
            faults=schedule,
        )
        peak = trace.global_skew(10.0, 30.0).value
        steady = trace.global_skew(80.0, 120.0).value
        assert peak > steady  # the partition did damage that healed
        bound = (peak + steady) / 2
        ttr = time_to_resync(trace, bound, schedule=schedule)
        assert ttr is not None and 0.0 < ttr < 60.0


# ---------------------------------------------------------------------------
# recovery-aware variant
# ---------------------------------------------------------------------------


class TestFaultTolerantVariant:
    def test_staleness_timeout_validated(self):
        with pytest.raises(ConfigurationError, match="staleness_timeout"):
            FaultTolerantAoptAlgorithm(PARAMS, staleness_timeout=PARAMS.h0)
        algo = FaultTolerantAoptAlgorithm(PARAMS)
        assert algo.staleness_timeout == pytest.approx(4 * PARAMS.h0)
        assert algo.name == "aopt-ft"

    def test_estimates_of_dead_neighbor_expire(self):
        horizon = 15.0 + 8 * PARAMS.h0
        engine = SimulationEngine(
            line(2),
            FaultTolerantAoptAlgorithm(PARAMS),
            ConstantDrift(0.01),
            ConstantDelay(0.5),
            horizon,
            faults=FaultSchedule().crash(1, at=10.0),  # down forever
        )
        engine.run()
        survivor = engine.node_state(0)
        assert survivor._estimates == {}  # the dead neighbor was forgotten
        assert survivor._raw_received == {}

    def test_plain_aopt_keeps_stale_estimates(self):
        # The contrast that motivates the variant: without expiry the
        # survivor keeps chasing a ghost.
        horizon = 15.0 + 8 * PARAMS.h0
        engine = SimulationEngine(
            line(2),
            AoptAlgorithm(PARAMS),
            ConstantDrift(0.01),
            ConstantDelay(0.5),
            horizon,
            faults=FaultSchedule().crash(1, at=10.0),
        )
        engine.run()
        assert 1 in engine.node_state(0)._estimates

    def test_recovery_rebroadcast_reintegrates_node(self):
        # A node that crashes mid-run rejoins and the spread returns under
        # the steady-state level within the horizon.
        schedule = FaultSchedule().crash(2, at=12.0, until=12.0 + 5 * PARAMS.h0)
        trace = run_execution(
            line(4),
            FaultTolerantAoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0, 1]),
            ConstantDelay(1.0),
            120.0,
            faults=schedule,
        )
        steady = trace.global_skew(90.0, 120.0).value
        ttr = time_to_resync(trace, steady * 1.5, schedule=schedule)
        assert ttr is not None


# ---------------------------------------------------------------------------
# spec digests and byte-identical replay (acceptance)
# ---------------------------------------------------------------------------


def _fault_spec(**overrides):
    schedule = (
        FaultSchedule(
            drop_probability=0.1,
            duplicate_probability=0.05,
            spike_probability=0.05,
            spike_delay=2.0,
            seed=7,
        )
        .crash(2, at=8.0, until=16.0)
        .link_down(0, 1, at=10.0, until=20.0)
    )
    settings = dict(
        topology=line(5),
        algorithm=FaultTolerantAoptAlgorithm(PARAMS),
        drift=TwoGroupDrift(0.05, [0, 1]),
        delay=ConstantDelay(1.0),
        horizon=HORIZON,
        check_invariants=True,
        params=PARAMS,
        faults=schedule,
        label="faulted/line/aopt-ft",
    )
    settings.update(overrides)
    return ExecutionSpec(**settings)


class TestSpecDigest:
    def test_faults_enter_the_digest(self):
        assert _fault_spec().digest() != _fault_spec(faults=None).digest()
        moved = (
            FaultSchedule(
                drop_probability=0.1,
                duplicate_probability=0.05,
                spike_probability=0.05,
                spike_delay=2.0,
                seed=7,
            )
            .crash(2, at=8.5, until=16.0)  # one fault time nudged
            .link_down(0, 1, at=10.0, until=20.0)
        )
        assert _fault_spec().digest() != _fault_spec(faults=moved).digest()

    def test_same_schedule_same_digest(self):
        assert _fault_spec().digest() == _fault_spec().digest()
        relabeled = _fault_spec(label="other-name")
        assert _fault_spec().digest() == relabeled.digest()

    def test_probability_change_changes_digest(self):
        other = FaultSchedule(drop_probability=0.2, seed=7)
        base = FaultSchedule(drop_probability=0.1, seed=7)
        assert _fault_spec(faults=base).digest() != _fault_spec(faults=other).digest()


def _assert_byte_identical(reference, candidates):
    for outcomes in candidates:
        assert len(outcomes) == len(reference)
        for r, o in zip(reference, outcomes):
            assert r.index == o.index
            assert r.error == o.error
            assert pickle.dumps(r.summary) == pickle.dumps(o.summary), (
                f"summary mismatch for {r.spec.label}"
            )


class TestFaultReplayAcceptance:
    """A fault-injected execution replays byte-identically (ISSUE acceptance)."""

    def test_workers_and_cache_states_agree(self, tmp_path):
        specs = [
            _fault_spec(),
            _fault_spec(algorithm=AoptAlgorithm(PARAMS), label="faulted/plain"),
        ]
        serial = SweepExecutor(workers=1).run(specs)
        assert all(o.ok for o in serial)
        for outcome in serial:
            assert outcome.summary.messages_dropped > 0  # faults really fired
            assert outcome.summary.messages_lost_link > 0

        parallel = SweepExecutor(workers=4).run(specs)

        cache = ResultCache(tmp_path)
        cold = SweepExecutor(workers=1, cache=cache).run(specs)
        warm = SweepExecutor(workers=4, cache=cache).run(
            [_fault_spec(), _fault_spec(algorithm=AoptAlgorithm(PARAMS))]
        )  # rebuilt specs: digest equality is what finds the cache entries
        assert all(o.cached for o in warm)

        _assert_byte_identical(serial, [parallel, cold, warm])


# ---------------------------------------------------------------------------
# LossyDelay adapter
# ---------------------------------------------------------------------------


class TestLossyDelayHashing:
    def test_order_independent_drops(self):
        lossy = LossyDelay(ConstantDelay(1.0), loss=0.5, seed=2)
        fresh = LossyDelay(ConstantDelay(1.0), loss=0.5, seed=2)
        keys = [(0, 1, float(i), i) for i in range(40)]
        forward = [lossy.delay(*key) for key in keys]
        backward = [fresh.delay(*key) for key in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_matches_stable_uniform_threshold(self):
        u = stable_uniform(5, "loss", 0, 1, 3.0, 2)
        dropping = LossyDelay(ConstantDelay(1.0), loss=min(u * 1.01, 0.999), seed=5)
        sparing = LossyDelay(ConstantDelay(1.0), loss=u * 0.99, seed=5)
        from repro.sim.delays import DROP

        assert dropping.delay(0, 1, 3.0, 2) == DROP
        assert sparing.delay(0, 1, 3.0, 2) == 1.0


# ---------------------------------------------------------------------------
# Byzantine corruption
# ---------------------------------------------------------------------------


from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.topology.generators import star  # noqa: E402


def _byz_schedule(**kwargs):
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("byzantine_magnitude", 5.0)
    return FaultSchedule(**kwargs)


@pytest.mark.byzantine
class TestByzantineSchedule:
    def test_builder_records_events_and_flags(self):
        schedule = _byz_schedule().byzantine(1, at=2.0, until=8.0).byzantine(2, at=3.0)
        assert schedule.has_byzantine
        assert not FaultSchedule().has_byzantine
        kinds = [kind for _, _, kind in schedule.byzantine_events]
        assert kinds == ["byzantine", "byzantine-end", "byzantine"]

    def test_negative_time_rejected(self):
        with pytest.raises(ScheduleError, match="byzantine time"):
            _byz_schedule().byzantine(0, at=-1.0)
        with pytest.raises(ScheduleError, match="byzantine_magnitude"):
            FaultSchedule(byzantine_magnitude=-2.0)

    def test_boundaries_and_cleared_time_include_byzantine(self):
        schedule = _byz_schedule().byzantine(1, at=2.0, until=8.0)
        assert {2.0, 8.0} <= set(schedule.boundaries(10.0))
        assert schedule.cleared_time() == 8.0

    def test_magnitude_required_at_injector(self):
        schedule = FaultSchedule(seed=1).byzantine(0, at=0.0)
        with pytest.raises(ScheduleError, match="byzantine_magnitude"):
            FaultInjector(schedule)

    def test_unknown_node_rejected(self):
        schedule = _byz_schedule().byzantine(99, at=0.0)
        with pytest.raises(ScheduleError, match="unknown byzantine node"):
            FaultInjector(schedule, topology=line(4))


@pytest.mark.byzantine
class TestByzantineInjector:
    def test_interval_semantics_half_open(self):
        injector = FaultInjector(_byz_schedule().byzantine(1, at=2.0, until=5.0))
        assert not injector.is_byzantine(1, 1.999)
        assert injector.is_byzantine(1, 2.0)
        assert injector.is_byzantine(1, 4.999)
        assert not injector.is_byzantine(1, 5.0)
        assert not injector.is_byzantine(0, 3.0)

    def test_open_ended_interval(self):
        injector = FaultInjector(_byz_schedule().byzantine(1, at=2.0))
        assert injector.is_byzantine(1, 1e9)
        assert injector.byzantine_nodes() == (1,)

    def test_non_estimate_payload_passes_through(self):
        injector = FaultInjector(_byz_schedule().byzantine(0, at=0.0))
        assert injector.corrupt_payload(0, 1, 1.0, 0, "hello") is None
        assert injector.corrupt_payload(0, 1, 1.0, 0, (1.0, 2.0, 3.0)) is None
        assert injector.corrupt_payload(0, 1, 1.0, 0, None) is None

    def test_corruption_is_downward_deterministic_and_bounded(self):
        injector = FaultInjector(_byz_schedule().byzantine(0, at=0.0))
        magnitude = 5.0
        for seq in range(60):
            payload = (100.0 + seq, 120.0)
            first = injector.corrupt_payload(0, 1, 7.5, seq, payload)
            again = injector.corrupt_payload(0, 1, 7.5, seq, payload)
            assert first == again
            (logical, l_max), reason = first
            assert reason in ("perturb", "equivocate", "replay")
            assert logical < payload[0]
            assert payload[0] - logical <= magnitude
            # The equivocation floor: every lie is substantial, so the
            # raw-value guard can never be immunized by a near-honest one.
            assert payload[0] - logical >= magnitude / 4
            assert 0.0 <= l_max <= payload[1]
            if reason != "replay":
                assert l_max == payload[1]

    def test_equivocation_differs_across_receivers(self):
        injector = FaultInjector(_byz_schedule().byzantine(0, at=0.0))
        values = {
            injector.corrupt_payload(0, r, 3.0, 5, (50.0, 60.0))[0][0]
            for r in range(1, 9)
        }
        assert len(values) > 1

    def test_corruption_order_independent(self):
        keys = [(0, 1 + (i % 4), float(i), i) for i in range(40)]
        payload = (10.0, 12.0)
        injector = FaultInjector(_byz_schedule().byzantine(0, at=0.0))
        fresh = FaultInjector(_byz_schedule().byzantine(0, at=0.0))
        forward = [injector.corrupt_payload(*key, payload) for key in keys]
        backward = [fresh.corrupt_payload(*key, payload) for key in reversed(keys)]
        assert forward == list(reversed(backward))

    @given(
        seed=st.integers(0, 10**6),
        send_time=st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
        seq=st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_corruption_stable_under_schedule_permutation(self, seed, send_time, seq):
        # The corruption of one message is a pure function of the seed,
        # the magnitude, and the message identity — composing the
        # schedule differently (event order, unrelated crash/link events)
        # must not perturb it.
        one = FaultInjector(
            FaultSchedule(seed=seed, byzantine_magnitude=5.0)
            .byzantine(0, at=0.0)
            .byzantine(2, at=1.0, until=9.0)
            .crash(1, at=3.0, until=4.0)
        )
        other = FaultInjector(
            FaultSchedule(seed=seed, byzantine_magnitude=5.0)
            .byzantine(2, at=1.0, until=9.0)
            .link_down(1, 3, at=2.0, until=6.0)
            .byzantine(0, at=0.0)
        )
        payload = (42.0, 44.0)
        for sender in (0, 2):
            assert one.corrupt_payload(
                sender, 1, send_time, seq, payload
            ) == other.corrupt_payload(sender, 1, send_time, seq, payload)


# The engine attack suite runs on a short-T, high-drift parameterization:
# corruption only *bites* once the victim's coasting estimate of the liar
# falls behind truth by the lie depth, and that gap opens at a small
# multiple of 2·epsilon per time unit.  At the module-wide PARAMS the
# attack would need a four-digit horizon to register at all.
ATTACK_PARAMS = SyncParams.recommended(epsilon=0.1, delay_bound=0.5)


@pytest.mark.byzantine
class TestByzantineEngine:
    def _attack_trace(self, horizon=120.0, until=40.0, algorithm=None):
        """Star-5: Byzantine slow leaf 1 pins the hub; leaves 2-4 race ahead.

        The hub's degree is 4, so the < 1/3 rule tolerates one faulty
        neighbor — the smallest star where the ftgcs filter is armed.
        """
        topology = star(5)
        from repro.variants.ftgcs import ftgcs_rejection_window

        window = ftgcs_rejection_window(ATTACK_PARAMS, 2)
        schedule = FaultSchedule(seed=5, byzantine_magnitude=6.0 * window)
        schedule.byzantine(1, at=5.0, until=until)
        trace = run_execution(
            topology,
            algorithm or AoptAlgorithm(ATTACK_PARAMS),
            TwoGroupDrift(ATTACK_PARAMS.epsilon, topology.nodes[2:]),
            ConstantDelay(0.5),
            horizon,
            faults=schedule,
        )
        return trace, schedule

    def test_corrupt_events_logged_with_reasons(self):
        topology = star(4)
        schedule = FaultSchedule(seed=5, byzantine_magnitude=9.0)
        schedule.byzantine(1, at=2.0, until=6.0)
        engine, trace = _run_engine(
            topology, AoptAlgorithm(PARAMS), schedule, horizon=10.0,
            record_events=True,
        )
        corrupt = [e for e in trace.event_log if e[0] == "corrupt"]
        assert corrupt, "expected corruption entries in the event log"
        for _, t, node, detail in corrupt:
            assert node == 1
            assert 2.0 <= t < 6.0
            assert detail["reason"] in ("perturb", "equivocate", "replay")
            assert detail["to"] == 0  # a leaf only talks to the hub

    def test_attack_blocks_victim_then_recovers(self):
        trace, schedule = self._attack_trace()
        peak = trace.global_skew(5.0, 45.0).value
        steady = trace.global_skew(90.0, 120.0).value
        assert peak > 2.0 * steady  # corruption did real damage that healed
        ttr = time_to_resync(trace, (peak + steady) / 2, schedule=schedule)
        assert ttr is not None and 0.0 < ttr < 60.0

    def test_time_to_resync_trichotomy_for_byzantine_recovery(self):
        trace, schedule = self._attack_trace()
        # No anchor: refuse to guess (never defaults to 0.0).
        with pytest.raises(ValueError, match="clear_time or schedule"):
            time_to_resync(trace, 1.0)
        # Never exceeded after the clear: a legitimate, falsy 0.0.
        peak = trace.global_skew(0.0, trace.horizon).value
        assert time_to_resync(trace, peak * 1.1, schedule=schedule) == 0.0
        # Still violating at the horizon: None, not a duration.
        stuck, _ = self._attack_trace(horizon=60.0, until=1e9)
        final = stuck.global_skew(50.0, 60.0).value
        assert (
            time_to_resync(stuck, final * 0.9, clear_time=5.0) is None
        )

    def test_ftgcs_filters_the_attack(self):
        from repro.variants.ftgcs import FtgcsAlgorithm, ftgcs_rejection_window

        window = ftgcs_rejection_window(ATTACK_PARAMS, 2)
        exposed, _ = self._attack_trace(horizon=250.0, until=1e9)
        filtered, _ = self._attack_trace(
            horizon=250.0, until=1e9,
            algorithm=FtgcsAlgorithm(ATTACK_PARAMS, window),
        )
        exposed_skew = exposed.global_skew(150.0, 250.0).value
        filtered_skew = filtered.global_skew(150.0, 250.0).value
        assert filtered_skew < exposed_skew / 2
