"""Regression tests: validation reports carry instants and margins.

``validate_execution`` used to reduce every finding to a boolean plus a
string; certificate failure messages need *where* and *by how much*.
These tests pin the structured :class:`~repro.sim.validation.ValidationProblem`
records — first violating instant, positive margin past the bound — and
the backward-compatible ``valid``/``problems`` surface.
"""

import pytest

from repro.core.node import AoptAlgorithm
from repro.sim.delays import ConstantDelay
from repro.sim.drift import ConstantDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.sim.validation import validate_execution
from repro.topology.generators import line


@pytest.fixture
def drifty_trace(params):
    return run_execution(
        line(3),
        AoptAlgorithm(params),
        TwoGroupDrift(params.epsilon, [0]),
        ConstantDelay(params.delay_bound),
        40.0,
        record_messages=True,
    )


class TestStructuredViolations:
    def test_clean_report_has_no_violations(self, params):
        trace = run_execution(
            line(3),
            AoptAlgorithm(params),
            ConstantDrift(params.epsilon),
            ConstantDelay(params.delay_bound),
            30.0,
            record_messages=True,
        )
        report = validate_execution(trace, params.epsilon, params.delay_bound)
        assert report.valid
        assert report.violations == []
        assert report.first_violation is None
        assert report.worst_margin == 0.0

    def test_rate_violation_carries_instant_and_margin(self, params, drifty_trace):
        # Validate against a drift bound stricter than the one that ran:
        # node 0 runs at 1 + eps, which exceeds 1 + eps/2 by eps/2.
        strict = validate_execution(
            drifty_trace, params.epsilon / 2, params.delay_bound
        )
        assert not strict.valid
        first = strict.first_violation
        assert first is not None
        assert first.check == "hardware-rate"
        assert first.node == 0
        assert first.time == 0.0  # the offending rate segment starts at t=0
        assert first.margin == pytest.approx(params.epsilon / 2)
        assert strict.worst_margin == pytest.approx(params.epsilon / 2)

    def test_delay_violation_carries_send_time(self, params, drifty_trace):
        strict = validate_execution(
            drifty_trace, params.epsilon, params.delay_bound / 2
        )
        assert not strict.valid
        delay_hits = [
            v for v in strict.violations if v.check == "message-delay"
        ]
        assert delay_hits
        first = min(delay_hits, key=lambda v: v.time)
        assert first.time == min(
            r.send_time
            for r in drifty_trace.message_log
            if r.delay > params.delay_bound / 2
        )
        assert first.margin == pytest.approx(params.delay_bound / 2)

    def test_problem_strings_stay_compatible(self, params, drifty_trace):
        strict = validate_execution(
            drifty_trace, params.epsilon / 2, params.delay_bound
        )
        assert len(strict.problems) == len(strict.violations)
        assert any("hardware rate" in p for p in strict.problems)
        assert all(isinstance(p, str) for p in strict.problems)

    def test_format_text_mentions_instant(self, params, drifty_trace):
        strict = validate_execution(
            drifty_trace, params.epsilon / 2, params.delay_bound
        )
        text = strict.first_violation.format_text()
        assert "hardware-rate" in text
        assert "t=0.0" in text
        assert "margin" in text
