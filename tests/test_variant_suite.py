"""Matrix test: every variant survives the full adversary suite.

Each §6/§8 variant is run through the standard six-adversary suite on a
small line; all must keep the system synchronized (global skew below the
free-running growth) and — where they promise it — keep the envelope.
"""

import pytest

from repro.analysis.experiments import run_adversary_suite
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology.generators import line
from repro.variants import (
    BitBudgetAoptAlgorithm,
    HardwareEnvelopeAoptAlgorithm,
    JumpAoptAlgorithm,
    MinGapAoptAlgorithm,
    bit_budget_params,
)

EPSILON = 0.05
DELAY = 1.0
N = 7
HORIZON = 120.0


def variant_factories():
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    budget = bit_budget_params(EPSILON, DELAY)
    return {
        "aopt": (params, lambda: AoptAlgorithm(params)),
        "min-gap": (params, lambda: MinGapAoptAlgorithm(params)),
        "bit-budget": (budget, lambda: BitBudgetAoptAlgorithm(budget)),
        "hw-envelope": (params, lambda: HardwareEnvelopeAoptAlgorithm(params)),
        "jump": (params, lambda: JumpAoptAlgorithm(params)),
    }


@pytest.mark.parametrize("name", sorted(variant_factories()))
class TestVariantSuite:
    def test_synchronizes_under_all_adversaries(self, name):
        params, factory = variant_factories()[name]
        result = run_adversary_suite(
            line(N), factory, params, horizon=HORIZON
        )
        free_running = 2 * EPSILON * HORIZON
        assert result.worst_global < free_running
        assert len(result.per_case) == 6

    def test_envelope_where_promised(self, name):
        if name == "hw-envelope":
            pytest.skip("promises the hardware envelope instead (tested elsewhere)")
        from repro.analysis.metrics import check_envelope

        params, factory = variant_factories()[name]
        result = run_adversary_suite(
            line(N), factory, params, horizon=HORIZON, keep_traces=True
        )
        for trace in result.traces.values():
            assert check_envelope(trace, EPSILON) <= 1e-7
