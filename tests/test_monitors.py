"""Unit tests for the invariant monitors."""

import pytest

from repro.core.interfaces import Algorithm, AlgorithmNode
from repro.errors import InvariantViolation
from repro.sim.delays import ConstantDelay
from repro.sim.drift import ConstantDrift
from repro.sim.engine import SimulationEngine
from repro.sim.monitors import EnvelopeMonitor, MonotonicityMonitor, RateBoundMonitor
from repro.topology.generators import line


class _Node(AlgorithmNode):
    def __init__(self, multiplier, jump_to=None):
        self._multiplier = multiplier
        self._jump_to = jump_to

    def on_start(self, ctx):
        ctx.send_all(("x",))
        ctx.set_rate_multiplier(self._multiplier)
        ctx.set_alarm("tick", 5.0)

    def on_alarm(self, ctx, name):
        if self._jump_to is not None:
            ctx.jump_logical(ctx.logical() + self._jump_to)
        ctx.set_alarm("tick", ctx.hardware() + 5.0)

    def on_message(self, ctx, sender, payload):
        pass


class _Algo(Algorithm):
    def __init__(self, multiplier, jump_to=None, allows_jumps=False):
        self._multiplier = multiplier
        self._jump_to = jump_to
        self.allows_jumps = allows_jumps
        self.name = "monitored"

    def make_node(self, node_id, neighbors):
        return _Node(self._multiplier, self._jump_to)


def run_with(monitors, multiplier=1.0, jump_to=None, allows_jumps=False, horizon=20.0):
    engine = SimulationEngine(
        line(2),
        _Algo(multiplier, jump_to, allows_jumps),
        ConstantDrift(0.05),
        ConstantDelay(0.5),
        horizon,
        monitors=monitors,
    )
    return engine.run()


class TestEnvelopeMonitor:
    def test_clean_run_passes(self):
        monitor = EnvelopeMonitor(0.05, strict=True)
        run_with([monitor])
        assert monitor.violations == []

    def test_upper_violation_detected(self):
        monitor = EnvelopeMonitor(0.05, strict=False)
        run_with([monitor], multiplier=2.0)  # rate 2 > 1 + eps
        assert monitor.violations
        assert "upper" in monitor.violations[0].detail

    def test_strict_mode_raises(self):
        with pytest.raises(InvariantViolation):
            run_with([EnvelopeMonitor(0.05, strict=True)], multiplier=2.0)

    def test_lower_violation_detected(self):
        monitor = EnvelopeMonitor(0.05, strict=False)
        run_with([monitor], multiplier=0.5)  # rate 0.5 < 1 - eps
        assert any("lower" in v.detail for v in monitor.violations)


class TestRateBoundMonitor:
    def test_clean_run_passes(self):
        monitor = RateBoundMonitor(alpha=0.9, beta=1.2, strict=True)
        run_with([monitor])
        assert monitor.violations == []

    def test_beta_violation(self):
        monitor = RateBoundMonitor(alpha=0.9, beta=1.2, strict=False)
        run_with([monitor], multiplier=1.5)
        assert any("above beta" in v.detail for v in monitor.violations)

    def test_alpha_violation(self):
        monitor = RateBoundMonitor(alpha=0.9, beta=1.2, strict=False)
        run_with([monitor], multiplier=0.5)
        assert any("below alpha" in v.detail for v in monitor.violations)

    def test_jump_algorithms_skip_beta(self):
        monitor = RateBoundMonitor(alpha=0.9, beta=1.2, strict=False)
        run_with([monitor], jump_to=1e6, allows_jumps=True)
        assert not any("above beta" in v.detail for v in monitor.violations)


class TestMonotonicityMonitor:
    def test_clean_run_passes(self):
        monitor = MonotonicityMonitor(strict=True)
        run_with([monitor])
        assert monitor.violations == []
