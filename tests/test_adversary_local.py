"""Tests for the Theorem 7.7 adversary (local skew amplification)."""

import pytest

from repro.adversary.local_bound import (
    amplification_base,
    run_skew_amplification,
)
from repro.baselines import MidpointAlgorithm
from repro.core.bounds import local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ScheduleError

EPSILON = 0.1
DELAY = 1.0


def aopt_params():
    return SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)


class TestBase:
    def test_amplification_base_formula(self):
        assert amplification_base(0.9, 1.2, 0.1) == 7
        assert amplification_base(1.0, 1.0, 0.1) == 2  # clamped

    def test_n_too_small_rejected(self):
        with pytest.raises(ScheduleError):
            run_skew_amplification(
                lambda: AoptAlgorithm(aopt_params()), n=3, epsilon=EPSILON,
                delay_bound=DELAY, base=4,
            )


class TestAgainstAopt:
    @pytest.fixture(scope="class")
    def result(self):
        params = aopt_params()
        return run_skew_amplification(
            lambda: AoptAlgorithm(params),
            n=17,
            epsilon=EPSILON,
            delay_bound=DELAY,
            base=4,
            verify_indistinguishability=True,
        )

    def test_round_structure(self, result):
        distances = [r.distance for r in result.rounds]
        assert distances == [16, 4, 1]

    def test_indistinguishable_every_round(self, result):
        assert all(r.indistinguishable for r in result.rounds)

    def test_shift_gains_at_least_alpha_d_t(self, result):
        """Lemma 7.6: the shifted run gains ≥ α·d·T over the unshifted."""
        alpha = 1 - EPSILON
        for r in result.rounds:
            gain = r.skew_after_shift - max(r.skew_before_shift, 0.0)
            assert gain >= alpha * r.distance * DELAY - 1e-6

    def test_final_neighbor_skew_at_least_alpha_t(self, result):
        last = result.rounds[-1]
        assert last.distance == 1
        assert last.skew_after_shift >= (1 - EPSILON) * DELAY - 1e-6

    def test_forced_skew_below_aopt_upper_bound(self, result):
        params = aopt_params()
        last = result.rounds[-1]
        assert last.skew_after_shift <= local_skew_bound(params, 16) + 1e-6

    def test_no_significant_delay_clamps(self, result):
        assert result.rounds[-1].delay_clamps < 20


class TestAgainstWeakCorrector:
    def test_skew_accumulates_over_rounds(self):
        """A corrector with small μ retains skew between rounds, so the
        per-hop forced skew grows beyond one α·T — the log_b(D) effect."""
        result = run_skew_amplification(
            lambda: MidpointAlgorithm(send_period=1.0, mu=0.12),
            n=17,
            epsilon=EPSILON,
            delay_bound=DELAY,
            base=4,
        )
        last = result.rounds[-1]
        assert last.distance == 1
        # Strictly more than a single round's gain.
        assert last.skew_after_shift > 1.5 * (1 - EPSILON) * DELAY

    def test_retained_skew_visible_in_unshifted_runs(self):
        result = run_skew_amplification(
            lambda: MidpointAlgorithm(send_period=1.0, mu=0.12),
            n=17,
            epsilon=EPSILON,
            delay_bound=DELAY,
            base=4,
        )
        later_rounds = result.rounds[1:]
        assert any(r.skew_before_shift > 0.5 for r in later_rounds)


class TestRoundAccounting:
    def test_rounds_limited_by_parameter(self):
        result = run_skew_amplification(
            lambda: AoptAlgorithm(aopt_params()),
            n=17,
            epsilon=EPSILON,
            delay_bound=DELAY,
            base=4,
            rounds=2,
        )
        assert len(result.rounds) == 2

    def test_eval_times_increase(self):
        result = run_skew_amplification(
            lambda: AoptAlgorithm(aopt_params()),
            n=17,
            epsilon=EPSILON,
            delay_bound=DELAY,
            base=4,
        )
        times = [r.t_eval for r in result.rounds]
        assert times == sorted(times)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_predicted_column_matches_theorem(self):
        result = run_skew_amplification(
            lambda: AoptAlgorithm(aopt_params()),
            n=17,
            epsilon=EPSILON,
            delay_bound=DELAY,
            base=4,
        )
        alpha = 1 - EPSILON
        for r in result.rounds:
            assert r.predicted == pytest.approx(
                (r.index + 1) / 2 * alpha * r.distance * DELAY
            )
