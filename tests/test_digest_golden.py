"""Golden-digest regression pins for the spec/cache identity scheme.

These tests freeze the *exact* digest hex of one representative
:class:`ExecutionSpec` and the canonical-encoding hash of one
representative :class:`FaultSchedule`.  The digest keys the on-disk
result cache, so a silent change to the canonical encoding is a cache
correctness bug in one of two directions:

* old entries returned for specs that no longer reproduce them
  (poisoning), or
* every existing cache silently invalidated (a mass re-run nobody
  asked for).

If a test here fails, the encoding changed.  That may be intentional —
but then you must bump SPEC_DIGEST_VERSION (``src/repro/exec/spec.py``)
and/or CACHE_VERSION (``src/repro/exec/cache.py``) so old and new
digests can never alias, and re-pin the constants below.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.exec.cache import CACHE_VERSION
from repro.exec.spec import SPEC_DIGEST_VERSION, ExecutionSpec, canonical_encoding
from repro.faults.schedule import FaultSchedule
from repro.sim.delays import UniformDelay
from repro.sim.drift import TwoGroupDrift
from repro.topology.generators import line

pytestmark = pytest.mark.lint

# Pinned 2026-08: recompute ONLY alongside a version bump (see module
# docstring).
GOLDEN_SPEC_DIGEST = (
    "2dbb2c79e083f7e085b77204896f2b3ba997ad67b5058b87f3ebaa1959592de3"
)
GOLDEN_SCHEDULE_SHA = (
    "f2588380ee53c6a977ebee6f62ed6049c733dd2afab6ec718ef1441e3eedac2c"
)


def _golden_schedule() -> FaultSchedule:
    return (
        FaultSchedule()
        .crash(2, at=10.0, until=25.0)
        .link_down(0, 1, at=5.0, until=15.0)
        .partition([(1, 2), (3, 4)], at=30.0, until=40.0)
    )


def _golden_spec() -> ExecutionSpec:
    params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
    return ExecutionSpec(
        topology=line(5),
        algorithm=AoptAlgorithm(params),
        drift=TwoGroupDrift(0.05, [0, 1]),
        delay=UniformDelay(0.0, 1.0, seed=7),
        horizon=60.0,
        seed=7,
        faults=_golden_schedule(),
        label="golden",
    )


def test_spec_digest_is_pinned():
    assert _golden_spec().digest() == GOLDEN_SPEC_DIGEST, (
        "ExecutionSpec canonical encoding changed: cached results keyed by "
        "the old digests are no longer trustworthy.  If the change is "
        "intentional, bump SPEC_DIGEST_VERSION in src/repro/exec/spec.py "
        "(and CACHE_VERSION in src/repro/exec/cache.py if the stored entry "
        "format moved too), then re-pin GOLDEN_SPEC_DIGEST."
    )


def test_fault_schedule_encoding_is_pinned():
    encoded = canonical_encoding(_golden_schedule())
    assert hashlib.sha256(encoded.encode("utf-8")).hexdigest() == (
        GOLDEN_SCHEDULE_SHA
    ), (
        "FaultSchedule canonical encoding changed, which shifts every digest "
        "of a spec carrying faults.  If intentional, bump SPEC_DIGEST_VERSION "
        "in src/repro/exec/spec.py (and CACHE_VERSION in "
        "src/repro/exec/cache.py if needed), then re-pin GOLDEN_SCHEDULE_SHA."
    )


def test_version_constants_match_pins():
    # The goldens above were computed at these versions; a bump must
    # re-pin them together (the whole point of the failure messages).
    assert SPEC_DIGEST_VERSION == 5
    assert CACHE_VERSION == 6


def test_record_trace_flips_the_digest():
    # record_trace is execution-mode metadata, but it is deliberately part
    # of the digest: keeping trace and streaming runs cache-separate means
    # a parity regression can never be masked by a cache hit from the
    # other mode (docs/ENGINE.md).
    spec = _golden_spec()
    streaming = spec.with_record_trace(False)
    assert spec.digest() == GOLDEN_SPEC_DIGEST
    assert streaming.digest() != GOLDEN_SPEC_DIGEST
    # with_record_trace is an identity when the mode already matches, and
    # a round trip restores the original digest.
    assert spec.with_record_trace(True) is spec
    assert streaming.with_record_trace(True).digest() == GOLDEN_SPEC_DIGEST


def test_label_stays_out_of_the_digest():
    spec = _golden_spec()
    relabeled = ExecutionSpec(
        topology=spec.topology,
        algorithm=spec.algorithm,
        drift=spec.drift,
        delay=spec.delay,
        horizon=spec.horizon,
        seed=spec.seed,
        faults=spec.faults,
        label="renamed-sweep",
    )
    assert relabeled.digest() == GOLDEN_SPEC_DIGEST


def test_topology_schedule_shifts_the_digest():
    # A topology schedule is digest-relevant pure data, exactly like
    # faults: adding one, or moving a single event time, must re-key the
    # cache entry.
    from repro.topology.dynamic import TopologySchedule

    def with_schedule(schedule):
        spec = _golden_spec()
        return ExecutionSpec(
            topology=spec.topology,
            algorithm=spec.algorithm,
            drift=spec.drift,
            delay=spec.delay,
            horizon=spec.horizon,
            seed=spec.seed,
            faults=spec.faults,
            topology_schedule=schedule,
            label="golden",
        )

    merged = with_schedule(TopologySchedule().edge_appears(2, 3, at=20.0))
    shifted = with_schedule(TopologySchedule().edge_appears(2, 3, at=20.5))
    assert merged.digest() != GOLDEN_SPEC_DIGEST
    assert shifted.digest() != merged.digest()


def test_byzantine_change_shifts_the_digest():
    # Byzantine events and the corruption magnitude are digest-relevant
    # schedule state (the v5 bump): adding either must re-key the cache.
    base = canonical_encoding(_golden_schedule())
    with_event = canonical_encoding(_golden_schedule().byzantine(3, at=20.0))
    with_magnitude = canonical_encoding(
        FaultSchedule(byzantine_magnitude=12.5)
        .crash(2, at=10.0, until=25.0)
        .link_down(0, 1, at=5.0, until=15.0)
        .partition([(1, 2), (3, 4)], at=30.0, until=40.0)
    )
    assert with_event != base
    assert with_magnitude != base
    assert with_event != with_magnitude


def test_fault_change_shifts_the_digest():
    params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
    spec = ExecutionSpec(
        topology=line(5),
        algorithm=AoptAlgorithm(params),
        drift=TwoGroupDrift(0.05, [0, 1]),
        delay=UniformDelay(0.0, 1.0, seed=7),
        horizon=60.0,
        seed=7,
        faults=_golden_schedule().crash(4, at=50.0),
        label="golden",
    )
    assert spec.digest() != GOLDEN_SPEC_DIGEST
