"""Tests for the runner conveniences and experiment harness internals."""

import pytest

from repro.analysis.experiments import (
    AdversaryCase,
    default_horizon,
    run_adversary_suite,
    standard_adversaries,
)
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay
from repro.sim.drift import ConstantDrift
from repro.sim.runner import default_monitors, run_execution, simulate_aopt
from repro.topology.generators import grid, line, ring


class TestDefaultMonitors:
    def test_three_monitors(self, params):
        monitors = default_monitors(params)
        names = {m.name for m in monitors}
        assert names == {"envelope", "rate-bounds", "monotonicity"}

    def test_non_strict_mode(self, params):
        monitors = default_monitors(params, strict=False)
        assert all(not m.strict for m in monitors)


class TestSimulateAopt:
    def test_invariants_enforced_by_default(self, params):
        trace = simulate_aopt(line(4), params, horizon=50.0)
        assert trace.horizon == 50.0

    def test_invariant_checking_can_be_disabled(self, params):
        trace = simulate_aopt(
            line(4), params, horizon=50.0, check_invariants=False
        )
        assert trace.total_messages() > 0

    def test_custom_models_accepted(self, params):
        trace = simulate_aopt(
            line(3),
            params,
            drift_model=ConstantDrift(params.epsilon, rate=1.0),
            delay_model=ConstantDelay(0.2, max_delay=params.delay_bound),
            horizon=40.0,
        )
        assert trace.start_times[2] == pytest.approx(0.4)

    def test_default_horizon_scales_with_size(self, params):
        small = simulate_aopt(line(3), params)
        large = simulate_aopt(line(8), params)
        assert large.horizon > small.horizon

    def test_record_messages_flag(self, params):
        trace = simulate_aopt(line(3), params, horizon=40.0, record_messages=True)
        assert trace.message_log


class TestStandardAdversaries:
    def test_all_models_within_bounds(self, params):
        """Every suite case must produce legal drift and delays."""
        topology = grid(3, 3)
        for case in standard_adversaries(topology, params, seed=1):
            for node in topology.nodes:
                case.drift.validated_rate_function(node, 200.0)
            for sender in topology.nodes:
                for receiver in topology.neighbors(sender):
                    for t in (0.0, 33.3, 150.0):
                        value = case.delay.validated_delay(sender, receiver, t, 0)
                        assert 0.0 <= value <= params.delay_bound

    def test_seeded_reproducibility(self, params):
        a = standard_adversaries(line(5), params, seed=3)
        b = standard_adversaries(line(5), params, seed=3)
        drift_a = a[3].drift.rate_function(2, 50.0).segments
        drift_b = b[3].drift.rate_function(2, 50.0).segments
        assert drift_a == drift_b


class TestRunAdversarySuite:
    def test_custom_cases(self, params):
        cases = [
            AdversaryCase(
                "only-case", ConstantDrift(params.epsilon),
                ConstantDelay(params.delay_bound),
            )
        ]
        result = run_adversary_suite(
            ring(5), lambda: AoptAlgorithm(params), params, horizon=40.0,
            cases=cases,
        )
        assert list(result.per_case) == ["only-case"]
        assert result.worst_global_case == "only-case"

    def test_initiators_forwarded(self, params):
        result = run_adversary_suite(
            line(5), lambda: AoptAlgorithm(params), params, horizon=40.0,
            keep_traces=True, initiators=[4],
        )
        trace = next(iter(result.traces.values()))
        assert trace.start_times[4] == 0.0

    def test_default_horizon_used_when_none(self, params):
        result = run_adversary_suite(
            line(4), lambda: AoptAlgorithm(params), params, keep_traces=True
        )
        trace = next(iter(result.traces.values()))
        assert trace.horizon == pytest.approx(default_horizon(params, 3))
