"""Whole-stack fuzzing: random topologies × random schedules × invariants.

Hypothesis draws a topology generator, a drift model, a delay model, a
parameter regime and an initiator pattern; every resulting execution must
satisfy the paper's invariants.  This is the broadest net in the suite —
it has historically been the kind of test that finds event-ordering and
anchoring bugs that targeted tests miss.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import check_envelope, check_rate_bounds
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, UniformDelay, ZeroDelay
from repro.sim.drift import (
    AlternatingDrift,
    RandomWalkDrift,
    SinusoidalDrift,
    TwoGroupDrift,
)
from repro.sim.runner import run_execution
from repro.topology.generators import (
    binary_tree,
    grid,
    line,
    random_connected,
    ring,
    star,
)
from repro.topology.properties import diameter


def build_topology(choice: int, seed: int):
    return [
        lambda: line(6),
        lambda: ring(7),
        lambda: star(6),
        lambda: grid(3, 3),
        lambda: binary_tree(3),
        lambda: random_connected(8, 0.25, seed=seed),
    ][choice]()


def build_drift(choice: int, epsilon: float, seed: int, nodes):
    return [
        lambda: TwoGroupDrift(epsilon, list(nodes)[: len(nodes) // 2]),
        lambda: AlternatingDrift(
            epsilon, period=7.0, phases={n: i % 2 for i, n in enumerate(nodes)}
        ),
        lambda: RandomWalkDrift(epsilon, step_period=4.0,
                                step_size=epsilon / 2, seed=seed),
        lambda: SinusoidalDrift(epsilon, period=23.0),
    ][choice]()


def build_delay(choice: int, delay_bound: float, seed: int):
    return [
        lambda: ConstantDelay(delay_bound),
        lambda: UniformDelay(0.0, delay_bound, seed=seed),
        lambda: ZeroDelay(max_delay=delay_bound),
        lambda: ConstantDelay(delay_bound / 3, max_delay=delay_bound),
    ][choice]()


@given(
    topology_choice=st.integers(0, 5),
    drift_choice=st.integers(0, 3),
    delay_choice=st.integers(0, 3),
    epsilon=st.sampled_from([0.02, 0.05, 0.1]),
    seed=st.integers(0, 100),
    multi_initiator=st.booleans(),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_invariants_under_fuzzed_executions(
    topology_choice, drift_choice, delay_choice, epsilon, seed, multi_initiator
):
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=1.0)
    topology = build_topology(topology_choice, seed)
    drift = build_drift(drift_choice, epsilon, seed, topology.nodes)
    delay = build_delay(delay_choice, 1.0, seed)
    initiators = None
    if multi_initiator:
        initiators = [topology.nodes[0], topology.nodes[-1]]
    trace = run_execution(
        topology, AoptAlgorithm(params), drift, delay, horizon=70.0,
        initiators=initiators,
    )
    d = diameter(topology)
    assert check_envelope(trace, epsilon) <= 1e-7
    assert check_rate_bounds(trace, params.alpha, params.beta) <= 1e-7
    assert trace.global_skew().value <= global_skew_bound(params, d) + 1e-7
    assert trace.local_skew().value <= local_skew_bound(params, d) + 1e-7
