"""Tests for the analysis package: metrics, complexity, tables, suites."""

import pytest

from repro.analysis.complexity import (
    amortized_frequency_bound,
    bit_stats,
    message_stats,
    space_estimate_bits,
)
from repro.analysis.experiments import (
    default_horizon,
    run_adversary_suite,
    standard_adversaries,
)
from repro.analysis.metrics import summarize
from repro.analysis.tables import format_table, format_value
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.topology.properties import diameter


@pytest.fixture
def trace(params):
    return run_execution(
        line(5),
        AoptAlgorithm(params),
        TwoGroupDrift(params.epsilon, [0, 1]),
        ConstantDelay(params.delay_bound),
        150.0,
        record_messages=True,
    )


class TestComplexity:
    def test_message_stats(self, trace):
        stats = message_stats(trace)
        assert stats.total == trace.total_messages()
        assert stats.per_node_max >= stats.per_node_mean
        assert stats.max_frequency >= stats.mean_frequency > 0

    def test_frequency_within_amortized_bound(self, params, trace):
        """§6.1: Θ(1/H0) amortized frequency (per neighbor link)."""
        stats = message_stats(trace)
        degree = 2  # line interior
        bound = amortized_frequency_bound(params)
        # Each send goes to all neighbors; allow the degree factor plus a
        # burst allowance for forwarded estimates.
        assert stats.mean_frequency <= 3 * degree * bound

    def test_bit_stats(self, trace):
        stats = bit_stats(trace)
        assert stats.total_bits == trace.total_bits()
        assert stats.mean_bits_per_message == pytest.approx(128.0)
        assert stats.max_message_bits == 128

    def test_bit_stats_without_log(self, params):
        trace = run_execution(
            line(3), AoptAlgorithm(params), TwoGroupDrift(params.epsilon, [0]),
            ConstantDelay(params.delay_bound), 60.0,
        )
        assert bit_stats(trace).max_message_bits is None

    def test_space_estimate_monotone_in_degree(self, params):
        a = space_estimate_bits(params, diameter=32, degree=2, clock_frequency=100.0)
        b = space_estimate_bits(params, diameter=32, degree=8, clock_frequency=100.0)
        assert b > a

    def test_space_estimate_logarithmic_in_diameter(self, params):
        a = space_estimate_bits(params, 16, 2, 100.0)
        b = space_estimate_bits(params, 16 ** 2, 2, 100.0)
        c = space_estimate_bits(params, 16 ** 4, 2, 100.0)
        # Squaring D adds a bounded number of bits (log growth): the
        # increments stay within a small constant factor of each other.
        assert 0 < b - a
        assert b - a <= c - b <= 4 * (b - a)
        assert c < 4 * a

    def test_space_estimate_invalid_inputs(self, params):
        with pytest.raises(ValueError):
            space_estimate_bits(params, 0, 2, 100.0)
        with pytest.raises(ValueError):
            space_estimate_bits(params, 4, 0, 100.0)


class TestSummarize:
    def test_fields(self, params, trace):
        summary = summarize(trace, params, 4)
        assert summary["global_skew"] <= summary["global_bound"] + 1e-7
        assert summary["local_skew"] <= summary["local_bound"] + 1e-7
        assert summary["envelope_margin"] <= 1e-7
        assert summary["rate_margin"] <= 1e-7
        assert summary["messages"] > 0


class TestTables:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1.23456789) == "1.2346"
        assert format_value(1e-9) == "1e-09"
        assert format_value("abc") == "abc"

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.0], ["bb", 22.5]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_latex_table(self):
        from repro.analysis.tables import format_latex_table

        text = format_latex_table(["D", "G"], [[4, 4.33], [8, 8.53]])
        assert text.startswith("\\begin{tabular}")
        assert "4 & 4.3300 \\\\" in text
        assert "\\bottomrule" in text

    def test_latex_table_escapes_and_wraps(self):
        from repro.analysis.tables import format_latex_table

        text = format_latex_table(
            ["a_b", "c%"], [["x&y", 1]], caption="100% done", label="tab:t"
        )
        assert "a\\_b & c\\%" in text
        assert "x\\&y" in text
        assert "\\caption{100\\% done}" in text
        assert "\\label{tab:t}" in text
        assert text.startswith("\\begin{table}")

    def test_latex_row_mismatch_rejected(self):
        from repro.analysis.tables import format_latex_table

        with pytest.raises(ValueError):
            format_latex_table(["a", "b"], [[1]])


class TestAdversarySuite:
    def test_standard_cases_present(self, params):
        cases = standard_adversaries(line(6), params)
        names = {case.name for case in cases}
        assert {"slow-delays", "two-group-drift", "antiphase-drift"} <= names
        assert len(cases) == 6

    def test_default_horizon_positive_and_scaling(self, params):
        assert default_horizon(params, 4) > 0
        assert default_horizon(params, 32) > default_horizon(params, 4)

    def test_suite_respects_bounds(self, params):
        topology = line(6)
        result = run_adversary_suite(
            topology, lambda: AoptAlgorithm(params), params, horizon=100.0
        )
        d = diameter(topology)
        assert result.worst_global <= global_skew_bound(params, d) + 1e-7
        assert result.worst_local <= local_skew_bound(params, d) + 1e-7
        assert result.worst_global_case in result.per_case
        assert len(result.per_case) == 6

    def test_keep_traces(self, params):
        result = run_adversary_suite(
            line(4), lambda: AoptAlgorithm(params), params, horizon=60.0,
            keep_traces=True,
        )
        assert set(result.traces) == set(result.per_case)
