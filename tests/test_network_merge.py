"""Network-merge extension: two components join mid-run (§4.2 at scale).

Two halves of a line are initialized independently (separate initiators,
the bridge edge absent).  When the bridge appears, the halves hold
unrelated ``L^max`` maxima; A^opt must integrate the new neighbors via
their first messages, flood the larger maximum across, and reconcile the
skew at the catch-up rate.

The merge is expressed both ways — as a first-class
:class:`~repro.topology.dynamic.TopologySchedule` (``edge_appears``, the
real model) and through the deprecated :class:`TimeGatedDelay`
message-dropping workaround it replaced — and every merge property must
hold identically under either mechanism.
"""

import warnings

import pytest

from repro.analysis.metrics import check_envelope
from repro.analysis.timeseries import convergence_time, spread_series
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import DROP, ConstantDelay, TimeGatedDelay
from repro.sim.drift import PerNodeDrift
from repro.sim.engine import SimulationEngine
from repro.topology.dynamic import TopologySchedule
from repro.topology.generators import line

pytestmark = pytest.mark.dynamic

EPSILON = 0.05
DELAY = 1.0
N = 8
BRIDGE = (3, 4)
JOIN_TIME = 80.0


def _gated_delay(activation):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return TimeGatedDelay(ConstantDelay(DELAY), activation)


def merge_execution(params, mechanism, horizon=300.0):
    # Left half runs fast, right half slow: before the merge the halves'
    # maxima diverge at ~2*eps per unit time.
    drift = PerNodeDrift(
        EPSILON, {u: 1 + EPSILON for u in range(4)}, default=1 - EPSILON
    )
    delay = ConstantDelay(DELAY)
    schedule = None
    if mechanism == "schedule":
        schedule = TopologySchedule().edge_appears(*BRIDGE, at=JOIN_TIME)
    else:
        delay = _gated_delay({BRIDGE: JOIN_TIME})
    engine = SimulationEngine(
        line(N),
        AoptAlgorithm(params),
        drift,
        delay,
        horizon,
        initiators=[0, 7],
        topology_schedule=schedule,
    )
    return engine, engine.run()


@pytest.fixture(scope="module", params=["schedule", "gated-delay"])
def merged(request):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    engine, trace = merge_execution(params, request.param)
    return params, engine, trace, request.param


class TestTimeGatedDelay:
    def test_construction_warns_deprecated(self):
        with pytest.warns(DeprecationWarning, match="TopologySchedule"):
            TimeGatedDelay(ConstantDelay(0.5), {(1, 2): 10.0})

    def test_gated_edge_drops_before_activation(self):
        model = _gated_delay({(1, 2): 10.0})
        assert model.delay(1, 2, 5.0, 0) == DROP
        assert model.delay(2, 1, 5.0, 0) == DROP  # both orientations
        assert model.delay(1, 2, 10.0, 0) == DELAY

    def test_unlisted_edges_always_active(self):
        model = _gated_delay({(1, 2): 10.0})
        assert model.delay(0, 1, 0.0, 0) == DELAY

    def test_reply_over_gated_bridge_blocked_in_engine(self):
        """Engine-level regression for directional gating: the gate is
        keyed on one orientation of the bridge, yet *both* the forward
        message and any reply sent before the join time must be dropped
        — neither endpoint may learn of the other early."""
        params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        engine, trace = merge_execution(params, "gated-delay", horizon=JOIN_TIME)
        # Both sides broadcast throughout (so replies were attempted in
        # both directions), every bridge crossing was dropped, and
        # neither bridge endpoint holds an estimate for the other.
        assert trace.messages_dropped > 0
        for node, other in (BRIDGE, BRIDGE[::-1]):
            state = engine.node_state(node)
            hw = trace.hardware_value(node, trace.horizon)
            assert state.estimate_of(other, hw) is None


class TestMerge:
    def test_halves_independent_before_join(self, merged):
        _params, _engine, trace, mechanism = merged
        # No message crossed the bridge before the join: every attempted
        # crossing is accounted as a drop (the counter depends on the
        # mechanism — the schedule models a non-existent edge, the gated
        # delay a dropped message).
        if mechanism == "schedule":
            assert trace.messages_lost_link > 0
        else:
            assert trace.messages_dropped > 0

    def test_components_diverge_then_reconcile(self, merged):
        params, _engine, trace, _mechanism = merged
        # Just before the join the halves have drifted far apart.
        assert trace.spread_at(JOIN_TIME) > 2 * EPSILON * JOIN_TIME * 0.8
        # Long after the join, the spread obeys the connected-graph bound.
        bound = global_skew_bound(params, N - 1)
        assert trace.global_skew(250.0, trace.horizon).value <= bound + 1e-7

    def test_reconciliation_speed(self, merged):
        """The slow side catches up at rate ~mu: settle time after the
        join is about (pre-join spread)/((1-eps)*mu) plus propagation."""
        params, _engine, trace, _mechanism = merged
        gap = trace.spread_at(JOIN_TIME)
        series = spread_series(trace, JOIN_TIME, trace.horizon, samples=400)
        bound = global_skew_bound(params, N - 1)
        settle = convergence_time(series, threshold=bound)
        assert settle is not None
        expected = JOIN_TIME + DELAY * N + gap / ((1 - EPSILON) * params.mu)
        assert settle <= expected + 20.0

    def test_envelope_through_merge(self, merged):
        params, _engine, trace, _mechanism = merged
        assert check_envelope(trace, EPSILON) <= 1e-7

    def test_neighbors_integrated_by_first_message(self, merged):
        _params, engine, trace, _mechanism = merged
        left_of_bridge = engine.node_state(BRIDGE[0])
        hw = trace.hardware_value(BRIDGE[0], trace.horizon)
        # After the merge, node 3 holds an estimate for node 4.
        assert left_of_bridge.estimate_of(BRIDGE[1], hw) is not None

    def test_mechanisms_agree_on_settle_time(self):
        """The TopologySchedule path reproduces E24's settle curve: both
        mechanisms yield the same gap at join and settle times within a
        sampling tolerance of each other."""
        params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        bound = global_skew_bound(params, N - 1)
        settles, gaps = {}, {}
        for mechanism in ("schedule", "gated-delay"):
            _engine, trace = merge_execution(params, mechanism)
            series = spread_series(trace, JOIN_TIME, trace.horizon, samples=400)
            settle = convergence_time(series, threshold=bound)
            assert settle is not None
            settles[mechanism] = settle
            gaps[mechanism] = trace.spread_at(JOIN_TIME)
        # Identical divergence while separated (nothing crossed either
        # way), and settle times within a sampling step of each other.
        assert gaps["schedule"] == pytest.approx(gaps["gated-delay"])
        step = (300.0 - JOIN_TIME) / 400
        assert abs(settles["schedule"] - settles["gated-delay"]) <= 2 * step
