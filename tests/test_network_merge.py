"""Network-merge extension: two components join mid-run (§4.2 at scale).

Two halves of a line are initialized independently (separate initiators,
the bridge edge gated off).  When the bridge activates, the halves hold
unrelated ``L^max`` maxima; A^opt must integrate the new neighbors via
their first messages, flood the larger maximum across, and reconcile the
skew at the catch-up rate.
"""

import pytest

from repro.analysis.metrics import check_envelope
from repro.analysis.timeseries import convergence_time, spread_series
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import DROP, ConstantDelay, TimeGatedDelay
from repro.sim.drift import PerNodeDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0
N = 8
BRIDGE = (3, 4)
JOIN_TIME = 80.0


def merge_execution(params, horizon=300.0):
    # Left half runs fast, right half slow: before the merge the halves'
    # maxima diverge at ~2*eps per unit time.
    drift = PerNodeDrift(
        EPSILON, {u: 1 + EPSILON for u in range(4)}, default=1 - EPSILON
    )
    delay = TimeGatedDelay(
        ConstantDelay(DELAY), activation={BRIDGE: JOIN_TIME}
    )
    engine = SimulationEngine(
        line(N),
        AoptAlgorithm(params),
        drift,
        delay,
        horizon,
        initiators=[0, 7],
    )
    return engine, engine.run()


@pytest.fixture(scope="module")
def merged():
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    engine, trace = merge_execution(params)
    return params, engine, trace


class TestTimeGatedDelay:
    def test_gated_edge_drops_before_activation(self):
        model = TimeGatedDelay(ConstantDelay(0.5), {(1, 2): 10.0})
        assert model.delay(1, 2, 5.0, 0) == DROP
        assert model.delay(2, 1, 5.0, 0) == DROP  # both orientations
        assert model.delay(1, 2, 10.0, 0) == 0.5

    def test_unlisted_edges_always_active(self):
        model = TimeGatedDelay(ConstantDelay(0.5), {(1, 2): 10.0})
        assert model.delay(0, 1, 0.0, 0) == 0.5


class TestMerge:
    def test_halves_independent_before_join(self, merged):
        _params, _engine, trace = merged
        # No message crossed the bridge before the join.
        pre_join = [
            m for m in trace.message_log
            if set((m.sender, m.receiver)) == set(BRIDGE)
        ]
        # (messages were not recorded; use drop counter instead)
        assert trace.messages_dropped > 0

    def test_components_diverge_then_reconcile(self, merged):
        params, _engine, trace = merged
        # Just before the join the halves have drifted far apart.
        assert trace.spread_at(JOIN_TIME) > 2 * EPSILON * JOIN_TIME * 0.8
        # Long after the join, the spread obeys the connected-graph bound.
        bound = global_skew_bound(params, N - 1)
        assert trace.global_skew(250.0, trace.horizon).value <= bound + 1e-7

    def test_reconciliation_speed(self, merged):
        """The slow side catches up at rate ~mu: settle time after the
        join is about (pre-join spread)/((1-eps)*mu) plus propagation."""
        params, _engine, trace = merged
        gap = trace.spread_at(JOIN_TIME)
        series = spread_series(trace, JOIN_TIME, trace.horizon, samples=400)
        bound = global_skew_bound(params, N - 1)
        settle = convergence_time(series, threshold=bound)
        assert settle is not None
        expected = JOIN_TIME + DELAY * N + gap / ((1 - EPSILON) * params.mu)
        assert settle <= expected + 20.0

    def test_envelope_through_merge(self, merged):
        params, _engine, trace = merged
        assert check_envelope(trace, EPSILON) <= 1e-7

    def test_neighbors_integrated_by_first_message(self, merged):
        _params, engine, trace = merged
        left_of_bridge = engine.node_state(BRIDGE[0])
        hw = trace.hardware_value(BRIDGE[0], trace.horizon)
        # After the merge, node 3 holds an estimate for node 4.
        assert left_of_bridge.estimate_of(BRIDGE[1], hw) is not None
