"""Further behavioural properties of A^opt (beyond test_aopt.py).

Steady-state properties of the estimate machinery, parameter-regime edge
cases, and degenerate inputs.
"""

import pytest

from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, ZeroDelay
from repro.sim.drift import ConstantDrift, PerNodeDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import complete_graph, line, star


def run(topology, params, drift=None, delay=None, horizon=120.0):
    engine = SimulationEngine(
        topology,
        AoptAlgorithm(params),
        drift or ConstantDrift(params.epsilon),
        delay or ConstantDelay(params.delay_bound),
        horizon,
    )
    return engine, engine.run()


class TestLmaxCoherence:
    def test_lmax_values_agree_within_transit(self, params):
        """Corollary 5.2-style: all L^max estimates track one maximum
        within (information delay)·(max rate) + H0 staleness."""
        engine, trace = run(
            line(6), params, drift=TwoGroupDrift(params.epsilon, [0, 1, 2]),
            horizon=200.0,
        )
        t = 200.0
        lmax_values = [
            engine.node_state(n).l_max(trace.hardware_value(n, t))
            for n in range(6)
        ]
        d = 5
        budget = (1 + params.epsilon) * (
            d * params.delay_bound + params.h0 / (1 - params.epsilon)
        )
        assert max(lmax_values) - min(lmax_values) <= budget + 1e-6

    def test_lmax_dominates_logical_everywhere(self, params):
        engine, trace = run(
            star(5), params, drift=TwoGroupDrift(params.epsilon, [0, 1]),
            horizon=150.0,
        )
        for node in trace.topology.nodes:
            hw = trace.hardware_value(node, 150.0)
            assert (
                trace.logical_value(node, 150.0)
                <= engine.node_state(node).l_max(hw) + 1e-7
            )

    def test_lmax_never_exceeds_fastest_possible(self, params):
        """Cor 5.2 (ii): L^max never outruns rate 1+eps from time 0."""
        engine, trace = run(
            line(5), params, drift=TwoGroupDrift(params.epsilon, [0, 1]),
            horizon=150.0,
        )
        for node in trace.topology.nodes:
            hw = trace.hardware_value(node, 150.0)
            assert engine.node_state(node).l_max(hw) <= (
                (1 + params.epsilon) * 150.0 + 1e-7
            )


class TestParameterRegimes:
    def test_tiny_epsilon(self, tight_params):
        """Realistic 0.1% drift: everything still works, skews tiny."""
        _, trace = run(
            line(4), tight_params,
            drift=TwoGroupDrift(tight_params.epsilon, [0, 1]),
            horizon=200.0,
        )
        bound = global_skew_bound(tight_params, 3)
        assert trace.global_skew().value <= bound + 1e-9

    def test_large_epsilon(self):
        params = SyncParams.recommended(epsilon=0.3, delay_bound=1.0)
        _, trace = run(
            line(4), params, drift=TwoGroupDrift(0.3, [0, 1]), horizon=80.0
        )
        assert trace.global_skew().value <= global_skew_bound(params, 3) + 1e-7

    def test_zero_true_delay_with_positive_bound(self, params):
        """T may be 0 while T-hat is positive: instant channels."""
        _, trace = run(
            line(4), params,
            drift=TwoGroupDrift(params.epsilon, [0, 1]),
            delay=ZeroDelay(max_delay=params.delay_bound),
            horizon=100.0,
        )
        # With instant delivery only H0 staleness separates clocks.
        assert trace.global_skew(50.0, 100.0).value <= params.kappa + 1e-6

    def test_huge_kappa_means_never_blocked(self, params):
        """kappa far above any achievable skew: every laggard may chase."""
        lax = params.with_overrides(kappa=1000.0)
        drift = PerNodeDrift(params.epsilon, {0: 1 + params.epsilon}, default=1.0)
        _, trace = run(line(4), lax, drift=drift, horizon=150.0)
        # Followers keep up with the leader.
        assert trace.skew(0, 3, 150.0) <= 1000.0
        assert trace.logical_value(3, 150.0) > trace.hardware_value(3, 150.0)


class TestDegenerateTopologies:
    def test_two_nodes(self, params):
        _, trace = run(line(2), params, drift=TwoGroupDrift(params.epsilon, [0]))
        assert trace.global_skew().value <= global_skew_bound(params, 1) + 1e-7

    def test_complete_graph_diameter_one(self, params):
        _, trace = run(
            complete_graph(5), params,
            drift=TwoGroupDrift(params.epsilon, [0, 1]),
        )
        assert trace.global_skew().value <= global_skew_bound(params, 1) + 1e-7

    def test_single_node(self, params):
        """A single node: no neighbors, no messages, L = H forever."""
        engine = SimulationEngine(
            line(1),
            AoptAlgorithm(params),
            ConstantDrift(params.epsilon),
            ConstantDelay(params.delay_bound),
            50.0,
        )
        trace = engine.run()
        assert trace.total_messages() == 0
        assert trace.logical_value(0, 50.0) == pytest.approx(
            trace.hardware_value(0, 50.0)
        )
