"""Tests for the baseline algorithms and their characteristic behaviours."""

import pytest

from repro.baselines import (
    FreeRunningAlgorithm,
    MaxForwardAlgorithm,
    MidpointAlgorithm,
    ObliviousGradientAlgorithm,
)
from repro.baselines.oblivious_gradient import blocking_threshold
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, DistanceDirectedDelay
from repro.sim.drift import ConstantDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line, ring
from repro.topology.properties import bfs_distances


def run(topology, algorithm, drift, delay, horizon=150.0):
    return run_execution(topology, algorithm, drift, delay, horizon)


class TestFreeRunning:
    def test_skew_grows_linearly(self, params):
        drift = TwoGroupDrift(params.epsilon, [0, 1, 2])
        trace = run(line(6), FreeRunningAlgorithm(), drift, ConstantDelay(1.0))
        # Node 0 runs fast from t=0; node 5 runs slow and only starts at
        # t=5 (initialization flood): skew = (1+eps)*150 - (1-eps)*145.
        expected = (1 + params.epsilon) * 150.0 - (1 - params.epsilon) * 145.0
        assert trace.global_skew().value == pytest.approx(expected, rel=1e-6)

    def test_sends_exactly_one_flood_message_per_node(self, params):
        trace = run(
            line(6), FreeRunningAlgorithm(), ConstantDrift(params.epsilon),
            ConstantDelay(1.0),
        )
        for node in range(6):
            assert trace.messages_sent[node] == len(line(6).neighbors(node))

    def test_logical_equals_hardware(self, params):
        trace = run(
            line(4), FreeRunningAlgorithm(), TwoGroupDrift(params.epsilon, [0]),
            ConstantDelay(1.0),
        )
        for node in range(4):
            assert trace.logical_value(node, 100.0) == pytest.approx(
                trace.hardware_value(node, 100.0)
            )


class TestMaxForward:
    def test_global_skew_bounded(self, params):
        drift = TwoGroupDrift(params.epsilon, [0, 1, 2])
        trace = run(line(6), MaxForwardAlgorithm(send_period=2.0), drift,
                    ConstantDelay(1.0), horizon=200.0)
        # O(D T) global skew: far below the free-running 2*eps*t growth.
        assert trace.global_skew().value < 2 * 6 * 1.0 + 2.0

    def test_clocks_jump_to_maximum(self, params):
        drift = TwoGroupDrift(params.epsilon, [0])
        trace = run(line(3), MaxForwardAlgorithm(send_period=2.0), drift,
                    ConstantDelay(0.5), horizon=100.0)
        assert trace.logical[1].jump_times  # laggards jumped

    def test_ring_local_skew_is_linear_in_d(self, params):
        """The Θ(D) local-skew weakness (Section 2 of the paper).

        On a ring with the fast node at 0 and slow delays, the antipodal
        edge connects a node that learned the maximum over a short path
        with one that learned it over a Θ(D)-hop path, so the edge skew
        approaches the global skew.
        """
        n = 12
        topology = ring(n)
        drift = TwoGroupDrift(params.epsilon, [0])
        delay = ConstantDelay(1.0)
        trace = run(topology, MaxForwardAlgorithm(send_period=2.0), drift, delay,
                    horizon=300.0)
        local = trace.local_skew().value
        # Local skew within a constant factor of the D/2-distance skew.
        assert local > 0.3 * (n / 2) * params.epsilon * 2

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            MaxForwardAlgorithm(send_period=0.0)


class TestMidpoint:
    def test_keeps_connected_system_bounded(self, params):
        drift = TwoGroupDrift(params.epsilon, [0, 1, 2])
        trace = run(line(6), MidpointAlgorithm(send_period=1.0, mu=params.mu),
                    drift, ConstantDelay(1.0), horizon=200.0)
        free = 2 * params.epsilon * 200.0
        assert trace.global_skew().value < free

    def test_worse_than_aopt_under_same_adversary(self, params):
        """The §4.2 remark: midpoint chasing is weaker than A^opt's rule."""
        topology = line(10)
        distances = bfs_distances(topology, 0)
        drift = TwoGroupDrift(params.epsilon, list(range(5)))
        delay = DistanceDirectedDelay(distances, toward=1.0, away=0.0)
        horizon = 250.0
        midpoint_trace = run(
            topology, MidpointAlgorithm(send_period=params.h0, mu=params.mu),
            drift, delay, horizon,
        )
        aopt_trace = run(
            topology, AoptAlgorithm(params), drift, delay, horizon,
        )
        assert (
            aopt_trace.global_skew().value
            <= midpoint_trace.global_skew().value + 1e-9
        )

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            MidpointAlgorithm(send_period=0.0, mu=0.5)
        with pytest.raises(ValueError):
            MidpointAlgorithm(send_period=1.0, mu=0.0)


class TestObliviousGradient:
    def test_tracks_leader(self, params):
        threshold = blocking_threshold(params, 5)
        drift = TwoGroupDrift(params.epsilon, [0, 1, 2])
        trace = run(line(6), ObliviousGradientAlgorithm(params, threshold),
                    drift, ConstantDelay(1.0), horizon=200.0)
        assert trace.global_skew().value < 2 * params.epsilon * 200.0

    def test_blocking_threshold_scales_with_sqrt_d(self, params):
        """B ∈ Θ(√D) once the drift term dominates; saturates at κ below."""
        assert blocking_threshold(params, 4) == pytest.approx(params.kappa)
        small = blocking_threshold(params, 512)
        large = blocking_threshold(params, 8192)
        assert large > small > params.kappa
        assert large / small == pytest.approx((8192 / 512) ** 0.5, rel=0.05)

    def test_invalid_threshold_rejected(self, params):
        with pytest.raises(ValueError):
            ObliviousGradientAlgorithm(params, 0.0)

    def test_blocking_threshold_invalid_diameter(self, params):
        with pytest.raises(ValueError):
            blocking_threshold(params, 0)

    def test_respects_envelope(self, params):
        from repro.analysis.metrics import check_envelope

        threshold = blocking_threshold(params, 5)
        drift = TwoGroupDrift(params.epsilon, [0, 1, 2])
        trace = run(line(6), ObliviousGradientAlgorithm(params, threshold),
                    drift, ConstantDelay(1.0), horizon=150.0)
        assert check_envelope(trace, params.epsilon) <= 1e-7
