"""Equivalence suite: the parallel sweep executor is bit-for-bit serial.

A parallel executor only earns trust if its results are *indistinguishable*
from the serial path.  For a grid of (topology, adversary, algorithm)
cases these tests assert that ``SweepExecutor(workers=4)`` and
``workers=1`` produce byte-identical result summaries — skews compared
exactly (``==`` on floats, and equality of the pickled bytes), never
approximately — including when a spec fails inside a worker, and that the
harness-level entry points (``run_adversary_suite``, ``run_monte_carlo``)
inherit the property.

The multi-worker crash/stress cases are marked ``slow`` and excluded from
tier-1 runs (see pyproject ``addopts``); CI opts in with ``-m slow``.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.baselines import MidpointAlgorithm
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import SimulationError
from repro.exec import ExecutionSpec, SweepExecutor
from repro.faults import FaultSchedule
from repro.sim.delays import ConstantDelay, DelayModel, UniformDelay
from repro.sim.drift import AlternatingDrift, RandomWalkDrift, TwoGroupDrift
from repro.topology.generators import grid, line, ring, star
from repro.variants import FtgcsAlgorithm, JumpAoptAlgorithm, ftgcs_rejection_window

PARAMS = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
HORIZON = 40.0


class ExplodingDelay(DelayModel):
    """Delay model that raises once messages start flowing — the injected
    worker failure.  Module-level so it pickles into worker processes."""

    def __init__(self, detonate_after: int = 3):
        super().__init__(1.0)
        self.detonate_after = detonate_after
        self._calls = 0

    def delay(self, sender, receiver, send_time, seq) -> float:
        self._calls += 1
        if self._calls > self.detonate_after:
            raise RuntimeError(f"injected failure after {self.detonate_after} sends")
        return 0.5


class CrashingDelay(DelayModel):
    """Kills the worker process outright (no Python unwind) — simulates a
    segfault for the crash-isolation tests."""

    def __init__(self, detonate_after: int = 3):
        super().__init__(1.0)
        self.detonate_after = detonate_after
        self._calls = 0

    def delay(self, sender, receiver, send_time, seq) -> float:
        self._calls += 1
        if self._calls > self.detonate_after:
            os._exit(13)
        return 0.5


def _case_grid():
    """(topology, adversary models, algorithm) grid for the equivalence runs."""
    n = 5
    half = list(range(n // 2))
    return [
        ExecutionSpec(
            line(n), AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, half), ConstantDelay(1.0),
            HORIZON, label="line/two-group/aopt",
        ),
        ExecutionSpec(
            line(n), AoptAlgorithm(PARAMS),
            RandomWalkDrift(0.05, step_period=5.0, step_size=0.02, seed=3),
            UniformDelay(0.0, 1.0, seed=3),
            HORIZON, seed=3, label="line/random/aopt",
        ),
        ExecutionSpec(
            ring(6), JumpAoptAlgorithm(PARAMS),
            AlternatingDrift(0.05, 12.0, {i: i % 2 for i in range(6)}),
            ConstantDelay(1.0),
            HORIZON, label="ring/antiphase/aopt-jump",
        ),
        ExecutionSpec(
            grid(3, 3), MidpointAlgorithm(send_period=PARAMS.h0, mu=PARAMS.mu),
            TwoGroupDrift(0.05, [(0, 0), (0, 1), (0, 2), (1, 0)]),
            UniformDelay(0.0, 1.0, seed=5),
            HORIZON, seed=5, label="grid/two-group/midpoint",
        ),
        ExecutionSpec(
            ring(6), AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0, 1, 2]), ConstantDelay(1.0),
            HORIZON, check_invariants=True, params=PARAMS,
            label="ring/two-group/aopt+monitors",
        ),
    ]


def _assert_outcomes_byte_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for s, p in zip(serial, parallel):
        assert s.index == p.index
        assert s.error == p.error
        # Byte-identical, not approximately equal: the pickled summaries
        # (every float bit pattern included) must match exactly.
        assert pickle.dumps(s.summary) == pickle.dumps(p.summary), (
            f"summary mismatch for {s.spec.label}"
        )


class TestParallelEquivalence:
    def test_grid_workers4_equals_workers1(self):
        specs = _case_grid()
        serial = SweepExecutor(workers=1).run(specs)
        parallel = SweepExecutor(workers=4).run(specs)
        assert all(outcome.ok for outcome in serial)
        _assert_outcomes_byte_identical(serial, parallel)
        # Skews are compared exactly — spot-check the float equality too.
        for s, p in zip(serial, parallel):
            assert s.summary.global_skew == p.summary.global_skew
            assert s.summary.local_skew == p.summary.local_skew

    def test_grid_workers4_equals_workers1_with_metrics(self):
        """Metrics collection must not perturb results: summaries with the
        deterministic engine counters attached stay byte-identical across
        worker counts (wall-clock timings are stripped before attachment)."""
        specs = _case_grid()
        serial = SweepExecutor(workers=1, collect_metrics=True).run(specs)
        parallel = SweepExecutor(workers=4, collect_metrics=True).run(specs)
        assert all(outcome.ok for outcome in serial)
        _assert_outcomes_byte_identical(serial, parallel)
        for outcome in serial:
            metrics = outcome.summary.run_metrics
            assert metrics is not None
            assert metrics.phase_seconds == {}
            assert metrics.events_processed == outcome.summary.events_processed

    def test_metrics_on_equals_metrics_off_results(self):
        """The same grid run with and without metrics agrees on every
        result field — collection is observability only."""
        import dataclasses

        plain = SweepExecutor(workers=1).run(_case_grid())
        with_metrics = SweepExecutor(workers=1, collect_metrics=True).run(
            _case_grid()
        )
        for p, m in zip(plain, with_metrics):
            assert pickle.dumps(p.summary) == pickle.dumps(
                dataclasses.replace(m.summary, run_metrics=None)
            )

    def test_streaming_workers4_equals_workers1(self):
        """record_trace=False inherits byte-identical parallelism: the
        streaming fold runs inside each worker exactly as it does
        serially, and summaries (including the streaming-mode digests)
        pickle identically across worker counts."""
        specs = [spec.with_record_trace(False) for spec in _case_grid()]
        serial = SweepExecutor(workers=1).run(specs)
        parallel = SweepExecutor(workers=4).run(specs)
        assert all(outcome.ok for outcome in serial)
        _assert_outcomes_byte_identical(serial, parallel)
        # And streaming agrees with the trace path on the skew numbers
        # (full byte-level parity is pinned in test_engine_parity.py).
        traced = SweepExecutor(workers=1).run(_case_grid())
        for t, s in zip(traced, serial):
            assert t.summary.global_skew == s.summary.global_skew
            assert t.summary.local_skew == s.summary.local_skew
            assert t.summary.spec_digest != s.summary.spec_digest

    def test_equivalence_under_injected_worker_failure(self):
        specs = _case_grid()
        specs.insert(
            2,
            ExecutionSpec(
                line(4), AoptAlgorithm(PARAMS),
                TwoGroupDrift(0.05, [0, 1]), ExplodingDelay(detonate_after=3),
                HORIZON, label="injected-failure",
            ),
        )
        serial = SweepExecutor(workers=1).run(specs)
        parallel = SweepExecutor(workers=4).run(specs)
        _assert_outcomes_byte_identical(serial, parallel)
        failed = [o for o in serial if not o.ok]
        assert len(failed) == 1 and failed[0].spec.label == "injected-failure"
        assert "injected failure" in failed[0].error
        # The failure did not poison any healthy case.
        assert sum(o.ok for o in parallel) == len(specs) - 1

    def test_run_summaries_raises_on_failure(self):
        spec = ExecutionSpec(
            line(4), AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0, 1]), ExplodingDelay(detonate_after=0),
            HORIZON, label="always-fails",
        )
        with pytest.raises(SimulationError, match="always-fails"):
            SweepExecutor(workers=1).run_summaries([spec])

    def test_chunked_dispatch_equivalence(self):
        specs = _case_grid()
        serial = SweepExecutor(workers=1).run(specs)
        chunked = SweepExecutor(workers=2, chunk_size=2).run(specs)
        _assert_outcomes_byte_identical(serial, chunked)

    def test_auto_workers_resolves(self):
        from repro.exec import resolve_workers

        assert resolve_workers("auto") >= 1
        assert resolve_workers(3) == 3
        with pytest.raises(SimulationError):
            resolve_workers(0)


# Corruption only bites once the victim's coasting estimate of the liar
# falls behind truth by the lie depth; at a short send period and high
# drift that happens within the equivalence horizon (see test_faults).
BYZ_PARAMS = SyncParams.recommended(epsilon=0.1, delay_bound=0.5)


def _byzantine_case_grid():
    """Specs carrying Byzantine schedules, over both engines' algorithms.

    Corruption draws come from the per-message hash, so these cases probe
    the property the hash exists for: no worker count, dispatch order, or
    chunking can perturb which lie lands on which message.
    """
    window = ftgcs_rejection_window(BYZ_PARAMS, 2)
    attack = (
        FaultSchedule(seed=11, byzantine_magnitude=6.0 * window)
        .byzantine(1, at=2.0, until=30.0)
    )
    two_faced = (
        FaultSchedule(seed=12, byzantine_magnitude=6.0 * window)
        .byzantine(1, at=2.0)
        .byzantine(3, at=10.0, until=30.0)
        .crash(4, at=15.0, until=20.0)
    )
    hub = star(5)
    fast_half = hub.nodes[2:]
    return [
        ExecutionSpec(
            hub, AoptAlgorithm(BYZ_PARAMS),
            TwoGroupDrift(0.1, fast_half), ConstantDelay(0.5),
            HORIZON, faults=attack, label="star/byzantine/aopt",
        ),
        ExecutionSpec(
            hub, FtgcsAlgorithm(BYZ_PARAMS, window),
            TwoGroupDrift(0.1, fast_half), ConstantDelay(0.5),
            HORIZON, faults=attack, label="star/byzantine/ftgcs",
        ),
        ExecutionSpec(
            star(6), AoptAlgorithm(BYZ_PARAMS),
            RandomWalkDrift(0.1, step_period=5.0, step_size=0.04, seed=9),
            UniformDelay(0.0, 0.5, seed=9),
            HORIZON, seed=9, faults=two_faced,
            label="star/byzantine+crash/aopt",
        ),
    ]


@pytest.mark.byzantine
class TestByzantineParallelEquivalence:
    """Byzantine corruption inherits byte-identical parallelism."""

    def test_byzantine_workers4_equals_workers1(self):
        specs = _byzantine_case_grid()
        serial = SweepExecutor(workers=1).run(specs)
        parallel = SweepExecutor(workers=4).run(specs)
        assert all(outcome.ok for outcome in serial)
        _assert_outcomes_byte_identical(serial, parallel)
        for s, p in zip(serial, parallel):
            assert s.summary.global_skew == p.summary.global_skew
            assert s.summary.local_skew == p.summary.local_skew

    def test_byzantine_streaming_workers4_equals_workers1(self):
        specs = [
            spec.with_record_trace(False) for spec in _byzantine_case_grid()
        ]
        serial = SweepExecutor(workers=1).run(specs)
        parallel = SweepExecutor(workers=4).run(specs)
        assert all(outcome.ok for outcome in serial)
        _assert_outcomes_byte_identical(serial, parallel)

    def test_attack_actually_fired(self):
        # Guard against a silently inert schedule: the unfiltered aopt
        # case must show more skew than its Byzantine-free twin.
        spec = _byzantine_case_grid()[0]
        clean = ExecutionSpec(
            spec.topology, spec.algorithm, spec.drift, spec.delay,
            spec.horizon, label="star/clean/aopt",
        )
        attacked, unattacked = SweepExecutor(workers=1).run_summaries(
            [spec, clean]
        )
        assert attacked.global_skew > unattacked.global_skew


class TestHarnessEquivalence:
    """The analysis-layer entry points inherit byte-identical parallelism."""

    def test_adversary_suite_workers(self):
        from repro.analysis.experiments import run_adversary_suite

        serial = run_adversary_suite(
            line(5), lambda: AoptAlgorithm(PARAMS), PARAMS,
            horizon=HORIZON, workers=1,
        )
        parallel = run_adversary_suite(
            line(5), lambda: AoptAlgorithm(PARAMS), PARAMS,
            horizon=HORIZON, workers=4,
        )
        assert serial.per_case == parallel.per_case  # exact float equality
        assert serial.worst_global == parallel.worst_global
        assert serial.worst_global_case == parallel.worst_global_case
        assert serial.worst_local == parallel.worst_local
        assert serial.worst_local_case == parallel.worst_local_case

    def test_monte_carlo_workers(self):
        from repro.analysis.montecarlo import run_monte_carlo

        kwargs = dict(
            topology=line(5),
            algorithm_factory=lambda: AoptAlgorithm(PARAMS),
            drift_factory=lambda seed: RandomWalkDrift(
                0.05, step_period=5.0, step_size=0.02, seed=seed
            ),
            delay_factory=lambda seed: UniformDelay(0.0, 1.0, seed=seed),
            horizon=HORIZON,
            runs=6,
        )
        serial = run_monte_carlo(workers=1, **kwargs)
        parallel = run_monte_carlo(workers=4, **kwargs)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_suite_keep_traces_matches_executor_path(self):
        """The in-process keep_traces path reports the same numbers."""
        from repro.analysis.experiments import run_adversary_suite

        with_traces = run_adversary_suite(
            line(5), lambda: AoptAlgorithm(PARAMS), PARAMS,
            horizon=HORIZON, keep_traces=True,
        )
        without = run_adversary_suite(
            line(5), lambda: AoptAlgorithm(PARAMS), PARAMS,
            horizon=HORIZON, workers=2,
        )
        assert with_traces.per_case == without.per_case
        assert set(with_traces.traces) == set(with_traces.per_case)
        assert without.traces == {}


@pytest.mark.slow
class TestCrashIsolationSlow:
    """Hard worker deaths (os._exit) must not take down the sweep."""

    def test_worker_crash_marks_only_that_spec_failed(self):
        specs = _case_grid()
        specs.insert(
            1,
            ExecutionSpec(
                line(4), AoptAlgorithm(PARAMS),
                TwoGroupDrift(0.05, [0, 1]), CrashingDelay(detonate_after=3),
                HORIZON, label="crasher",
            ),
        )
        outcomes = SweepExecutor(workers=2, max_crash_retries=2).run(specs)
        by_label = {o.spec.label: o for o in outcomes}
        assert not by_label["crasher"].ok
        assert "crash" in by_label["crasher"].error
        healthy = [o for o in outcomes if o.spec.label != "crasher"]
        assert all(o.ok for o in healthy), [o.error for o in healthy]
        # And the survivors still match the serial reference bit-for-bit.
        serial = {
            o.spec.label: o for o in SweepExecutor(workers=1).run(_case_grid())
        }
        for outcome in healthy:
            assert pickle.dumps(outcome.summary) == pickle.dumps(
                serial[outcome.spec.label].summary
            )

    def test_timeout_marks_spec_failed(self):
        slow_spec = ExecutionSpec(
            line(9), AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, list(range(4))), ConstantDelay(1.0),
            3000.0, label="slow-horizon",
        )
        quick = ExecutionSpec(
            line(4), AoptAlgorithm(PARAMS),
            TwoGroupDrift(0.05, [0, 1]), ConstantDelay(1.0),
            HORIZON, label="quick",
        )
        outcomes = SweepExecutor(workers=2, timeout=0.05).run([slow_spec, quick])
        by_label = {o.spec.label: o for o in outcomes}
        assert not by_label["slow-horizon"].ok
        assert "timed out" in by_label["slow-horizon"].error
