"""Theorem validation: A^opt's guarantees under randomized adversaries.

These are the core reproduction tests.  For randomly drawn drift and delay
schedules (within the model bounds) on several topologies, every execution
must satisfy:

* Condition (1) — the real-time envelope (Corollary 5.3);
* Condition (2) — rate bounds α = 1−ε, β = (1+ε)(1+μ) (Corollary 5.3);
* Theorem 5.5 — global skew ≤ G;
* Theorem 5.10 — local skew ≤ κ(⌈log_σ(2G/κ)⌉ + ½);
* Definition 5.6 — the system stays in the legal state;
* Lemma 5.4 — neighbor estimates err by less than H̄0.

The theorem claims are asserted through the certificate registry
(:mod:`repro.cert.certificates`) — the same predicates and bound
formulas ``repro certify`` fuzzes — so this suite and the certifier
cannot drift apart.  Legal state and estimate accuracy have no
certificate (they are proof-internal invariants, not end-to-end bounds)
and keep their direct metric checks.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import check_legal_state, estimate_accuracy_errors
from repro.cert import CERTIFICATES, execution_certificates
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import circulant, grid, line, ring, torus
from repro.topology.properties import all_pairs_distances, diameter


def random_execution(seed: int, topology, params, horizon=120.0, record_estimates=False):
    """One randomized-adversary execution of A^opt."""
    rng = random.Random(seed)
    if rng.random() < 0.5:
        drift = RandomWalkDrift(
            params.epsilon,
            step_period=rng.uniform(2.0, 10.0),
            step_size=params.epsilon,
            seed=seed,
        )
    else:
        nodes = list(topology.nodes)
        drift = TwoGroupDrift(params.epsilon, nodes[: len(nodes) // 2])
    if rng.random() < 0.5:
        delay = UniformDelay(0.0, params.delay_bound, seed=seed)
    else:
        delay = ConstantDelay(
            rng.uniform(0.0, params.delay_bound), max_delay=params.delay_bound
        )
    engine = SimulationEngine(
        topology,
        AoptAlgorithm(params, record_estimates=record_estimates),
        drift,
        delay,
        horizon,
    )
    return engine.run()


def certified(name: str, trace, params, topology):
    """Evaluate one registry certificate against a finished trace."""
    return CERTIFICATES[name].check_trace(trace, params, diameter(topology))


TOPOLOGIES = {
    "line-8": line(8),
    "ring-10": ring(10),
    "grid-3x3": grid(3, 3),
    "torus-3x3": torus(3, 3),
    "circulant-10": circulant(10, [1, 3]),
}


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestTheoremsUnderRandomAdversaries:
    def test_envelope_condition(self, name, seed, params):
        topology = TOPOLOGIES[name]
        trace = random_execution(seed, topology, params)
        verdict = certified("cond1-envelope", trace, params, topology)
        assert verdict.satisfied, verdict.detail

    def test_rate_bounds(self, name, seed, params):
        topology = TOPOLOGIES[name]
        trace = random_execution(seed, topology, params)
        verdict = certified("cond2-rate-bounds", trace, params, topology)
        assert verdict.satisfied, verdict.detail

    def test_monotonicity(self, name, seed, params):
        topology = TOPOLOGIES[name]
        trace = random_execution(seed, topology, params)
        verdict = certified("monotonicity", trace, params, topology)
        assert verdict.satisfied, verdict.detail

    def test_global_skew_theorem_5_5(self, name, seed, params):
        topology = TOPOLOGIES[name]
        trace = random_execution(seed, topology, params)
        verdict = certified("thm-5.5-global-skew", trace, params, topology)
        assert verdict.satisfied, verdict.detail
        assert verdict.measured == pytest.approx(trace.global_skew().value)
        assert verdict.margin > 0

    def test_local_skew_theorem_5_10(self, name, seed, params):
        topology = TOPOLOGIES[name]
        trace = random_execution(seed, topology, params)
        verdict = certified("thm-5.10-local-skew", trace, params, topology)
        assert verdict.satisfied, verdict.detail
        assert verdict.measured == pytest.approx(trace.local_skew().value)

    def test_legal_state_definition_5_6(self, name, seed, params):
        topology = TOPOLOGIES[name]
        trace = random_execution(seed, topology, params)
        report = check_legal_state(
            trace, params, all_pairs_distances(topology), diameter(topology),
            samples=25,
        )
        assert report.satisfied, (
            f"legal state violated by {report.worst_margin} at t={report.worst_time} "
            f"pair={report.worst_pair} level={report.worst_level}"
        )


class TestEstimateAccuracyLemma54:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_estimates_within_h_bar(self, seed, params):
        trace = random_execution(
            seed, line(6), params, horizon=100.0, record_estimates=True
        )
        margins = estimate_accuracy_errors(trace, params, samples_per_edge=10)
        assert margins, "expected estimate probes"
        assert max(margins) < 0.0, (
            f"Lemma 5.4 violated: estimate lagged the bound by {max(margins)}"
        )


class TestHypothesisRandomizedRuns:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_all_execution_certificates_fuzz(self, seed):
        """Every execution certificate holds on every hypothesis-drawn run."""
        params = SyncParams.recommended(epsilon=0.08, delay_bound=1.0)
        topology = line(5)
        trace = random_execution(seed, topology, params, horizon=80.0)
        d = diameter(topology)
        for certificate in execution_certificates():
            if not certificate.applies_to("aopt", has_faults=False):
                # The only legitimate exemptions: certificates that claim
                # a different regime (dynamic topologies, Byzantine
                # corruption) or a different algorithm (gcs-pcls).
                assert (
                    certificate.requires_dynamic
                    or certificate.requires_byzantine
                    or "aopt" not in certificate.governs
                )
                continue
            verdict = certificate.check_trace(trace, params, d)
            assert verdict.satisfied, f"{certificate.name}: {verdict.detail}"
