"""Differential regression: the fault-tolerant GCS family under attack.

Pins the headline asymmetry of the Byzantine campaign three ways:

* **fault-free agreement** — ``ftgcs`` is a conservative extension: on
  clean scenarios it certifies exactly like ``aopt``/``aopt-ft`` and the
  differential harness reports full agreement;
* **survival under attack** — on Byzantine campaigns the
  ``ftgcs-byzantine-skew`` certificate partitions the family: ``ftgcs``
  satisfies it on every scenario while the unfiltered variants violate
  it on every scenario (that asymmetry is the *finding*, reported via
  the survival matrix, never as a disagreement);
* **the planted broken variant** — ``ftgcs-trusting`` (per-neighbor
  filter swapped for blind trust) violates, ddmin-shrinks to a tiny
  counterexample, and the committed repro artifact replays
  byte-identically.
"""

import pytest

from repro.cert import (
    CERTIFICATES,
    CertScenario,
    ReproArtifact,
    differential_certify,
    replay_artifact,
    shrink_scenario,
)
from repro.cert.differential import BYZANTINE_VARIANTS

pytestmark = [pytest.mark.cert, pytest.mark.byzantine]

FIXTURE = "tests/fixtures/cert/repro-ftgcs-byzantine-skew.json"


def byzantine_attack_scenario(algorithm="ftgcs-trusting", seed=5, nodes=5,
                              horizon=450.0):
    """A star whose slow Byzantine leaf pins the hub behind the fast leaves.

    The corruption magnitude (6x the ftgcs rejection window, set by
    ``CertScenario.build_faults``) keeps every lie outside the window
    filter, so ``ftgcs`` shrugs the attack off while any variant that
    trusts raw neighbor estimates is dragged past the certified bound.
    """
    return CertScenario(
        topology_kind="star",
        nodes=nodes,
        algorithm=algorithm,
        epsilon=0.1,
        delay_bound=0.5,
        horizon=horizon,
        seed=seed,
        drift_kind="two-group-tail",
        delay_kind="constant",
        byzantine_events=((1, 1.0, None),),
    )


def check_scenario(scenario, certificate_name):
    summary = scenario.build_spec().run_summary()
    return CERTIFICATES[certificate_name].check_summary(
        summary, scenario.build_params(), scenario.diameter()
    )


def violation_oracle(certificate_name):
    def evaluate(scenario):
        verdict = check_scenario(scenario, certificate_name)
        return None if verdict.satisfied else verdict

    return evaluate


class TestFaultFreeAgreement:
    def test_ftgcs_agrees_with_the_aopt_family(self):
        report = differential_certify(
            budget=4, seed=0, variants=("aopt", "aopt-ft", "ftgcs")
        )
        assert report.agree, report.format_text()
        assert not report.byzantine
        assert report.survival == {}
        assert report.scenarios_run == 4


class TestByzantineSurvival:
    def test_ftgcs_is_the_sole_survivor(self):
        report = differential_certify(budget=4, seed=0, byzantine=True)
        assert report.byzantine
        assert set(report.variants) == set(BYZANTINE_VARIANTS)
        # Survival asymmetry is the expected finding, not a disagreement.
        assert report.agree, report.format_text()
        assert report.survivors("ftgcs-byzantine-skew") == ("ftgcs",)
        matrix = report.survival["ftgcs-byzantine-skew"]
        checks = matrix["ftgcs"][1]
        assert checks > 0
        assert matrix["ftgcs"][0] == checks
        assert matrix["aopt"][0] == 0
        assert matrix["aopt-ft"][0] == 0


class TestPlantedTrustingVariant:
    def test_trusting_variant_violates_where_ftgcs_holds(self):
        attacked = check_scenario(
            byzantine_attack_scenario(), "ftgcs-byzantine-skew"
        )
        assert not attacked.satisfied, attacked.detail
        filtered = check_scenario(
            byzantine_attack_scenario(algorithm="ftgcs"),
            "ftgcs-byzantine-skew",
        )
        assert filtered.satisfied, filtered.detail

    def test_trusting_variant_shrinks_to_a_tiny_counterexample(self):
        result = shrink_scenario(
            byzantine_attack_scenario(),
            violation_oracle("ftgcs-byzantine-skew"),
        )
        assert result.scenario.nodes <= 4
        assert result.scenario.byzantine_events, (
            "the shrunk counterexample must keep the attack"
        )
        assert not result.verdict.satisfied

    def test_committed_artifact_replays_byte_identically(self):
        with open(FIXTURE, "rb") as fh:
            raw = fh.read()
        artifact = ReproArtifact.load(FIXTURE)
        assert artifact.to_json().encode() == raw
        assert artifact.scenario.algorithm == "ftgcs-trusting"
        assert artifact.scenario.byzantine_events
        replay = replay_artifact(artifact)
        assert replay.reproduced, replay.summary_line()
