"""§6.1's burst observation: plain A^opt has no per-instant send bound.

"In a short time period, however, a node v might receive Θ(G/H0) messages
containing values L^max, each larger by H0 than the previous one, which
cause v to send as many messages."  We realize the burst with a delay
schedule that queues a backlog of mark messages on one edge and releases
them at once; the min-gap variant collapses the burst to one deferred
send.
"""

import pytest

from repro.core.node import AoptAlgorithm
from repro.sim.delays import FunctionDelay
from repro.sim.drift import PerNodeDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line
from repro.variants import MinGapAoptAlgorithm

RELEASE = 60.0


def backlog_delay_model(delay_bound):
    """Edge (1, 2): sends before RELEASE all arrive at RELEASE (queued);
    afterwards instantaneous.  Other edges instantaneous."""

    def delay_fn(sender, receiver, send_time, seq):
        if (sender, receiver) == (1, 2) and send_time < RELEASE:
            return min(RELEASE - send_time, delay_bound)
        return 0.0

    return FunctionDelay(delay_fn, max_delay=delay_bound)


def run(algorithm, params):
    # Large delay bound so the backlog window [RELEASE - T, RELEASE] spans
    # many H0 periods of the fast leader.
    engine = SimulationEngine(
        line(4),
        algorithm,
        PerNodeDrift(params.epsilon, {0: 1 + params.epsilon}, default=1.0),
        backlog_delay_model(params.delay_bound),
        RELEASE + 30.0,
        record_messages=True,
    )
    return engine.run()


def max_sends_in_window(trace, node, window):
    times = sorted(
        m.send_time for m in trace.message_log if m.sender == node
    )
    best = 0
    for i, start in enumerate(times):
        j = i
        while j < len(times) and times[j] <= start + window:
            j += 1
        best = max(best, j - i)
    return best


@pytest.fixture
def burst_params():
    from repro.core.params import SyncParams

    # Delay bound of 30 time units with H0 = 2 -> ~15 marks can queue on
    # the blocked edge before the release.
    return SyncParams.recommended(epsilon=0.05, delay_bound=30.0, h0=2.0)


class TestBurst:
    def test_plain_aopt_bursts(self, burst_params):
        trace = run(AoptAlgorithm(burst_params), burst_params)
        burst = max_sends_in_window(trace, 2, window=burst_params.h0 / 10)
        # Many forwards (one per released mark) in a tiny window.
        assert burst >= 5

    def test_min_gap_caps_the_burst(self, burst_params):
        trace = run(MinGapAoptAlgorithm(burst_params), burst_params)
        burst = max_sends_in_window(trace, 2, window=burst_params.h0 / 10)
        # At most one send per H0 of hardware time -> at most 1 per window
        # (times the neighbor count for the simultaneous broadcast).
        assert burst <= len(line(4).neighbors(2))

    def test_both_still_deliver_information(self, burst_params):
        """The gap defers but does not lose the estimate updates."""
        plain = run(AoptAlgorithm(burst_params), burst_params)
        gapped = run(MinGapAoptAlgorithm(burst_params), burst_params)
        t = plain.horizon - 1.0
        assert gapped.spread_at(t) <= plain.spread_at(t) + 10 * burst_params.h_bar_0
