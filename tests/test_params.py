"""Unit tests for SyncParams validation and derived quantities."""

import pytest

from repro.core.params import SyncParams
from repro.errors import ConfigurationError


class TestValidation:
    def test_epsilon_bounds(self):
        with pytest.raises(ConfigurationError):
            SyncParams(0.0, 1.0, 0.5, 1.0, 1.0, 0.5, 5.0)
        with pytest.raises(ConfigurationError):
            SyncParams(1.0, 1.0, 1.0, 1.0, 1.0, 0.5, 5.0)

    def test_epsilon_hat_must_dominate(self):
        with pytest.raises(ConfigurationError):
            SyncParams(0.1, 1.0, 0.05, 1.0, 1.0, 0.5, 5.0)

    def test_delay_hat_must_dominate(self):
        with pytest.raises(ConfigurationError):
            SyncParams(0.1, 1.0, 0.1, 0.5, 1.0, 0.5, 5.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            SyncParams(0.1, -1.0, 0.1, 1.0, 1.0, 0.5, 5.0)

    def test_positive_h0_mu_kappa_required(self):
        with pytest.raises(ConfigurationError):
            SyncParams(0.1, 1.0, 0.1, 1.0, 0.0, 0.5, 5.0)
        with pytest.raises(ConfigurationError):
            SyncParams(0.1, 1.0, 0.1, 1.0, 1.0, 0.0, 5.0)
        with pytest.raises(ConfigurationError):
            SyncParams(0.1, 1.0, 0.1, 1.0, 1.0, 0.5, 0.0)


class TestRecommended:
    def test_defaults_are_compliant(self):
        params = SyncParams.recommended(epsilon=0.01, delay_bound=1.0)
        assert params.is_compliant()
        assert params.sigma >= 2

    def test_mu_scales_with_sigma_target(self):
        p2 = SyncParams.recommended(epsilon=0.01, delay_bound=1.0, sigma_target=2)
        p4 = SyncParams.recommended(epsilon=0.01, delay_bound=1.0, sigma_target=4)
        assert p4.mu == pytest.approx(2 * p2.mu)
        assert p4.sigma >= 4

    def test_sigma_target_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            SyncParams.recommended(epsilon=0.01, delay_bound=1.0, sigma_target=1)

    def test_h0_default_is_delay_over_mu(self):
        params = SyncParams.recommended(epsilon=0.05, delay_bound=2.0)
        assert params.h0 == pytest.approx(2.0 / params.mu)

    def test_zero_delay_needs_explicit_h0(self):
        with pytest.raises(ConfigurationError):
            SyncParams.recommended(epsilon=0.05, delay_bound=0.0)
        params = SyncParams.recommended(epsilon=0.05, delay_bound=0.0, h0=1.0)
        assert params.h0 == 1.0

    def test_kappa_meets_inequality_4(self):
        params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
        assert params.kappa >= params.kappa_minimum

    def test_inaccurate_knowledge_enlarges_kappa(self):
        exact = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
        loose = SyncParams.recommended(
            epsilon=0.05, delay_bound=1.0, epsilon_hat=0.1, delay_bound_hat=2.0
        )
        assert loose.kappa > exact.kappa

    def test_too_small_mu_rejected_via_sigma(self):
        with pytest.raises(ConfigurationError):
            SyncParams.recommended(epsilon=0.1, delay_bound=1.0, mu=0.1)


class TestDerived:
    def test_h_bar(self, params):
        expected = (2 * params.epsilon + params.mu) * params.h0
        assert params.h_bar_0 == pytest.approx(expected)

    def test_alpha_beta(self, params):
        assert params.alpha == pytest.approx(1 - params.epsilon)
        assert params.beta == pytest.approx((1 + params.epsilon) * (1 + params.mu))

    def test_sigma_formula(self):
        # mu = 7 * 3 * eps/(1-eps) exactly -> sigma = 3.
        eps = 0.02
        mu = 7 * 3 * eps / (1 - eps)
        params = SyncParams.recommended(epsilon=eps, delay_bound=1.0, mu=mu)
        assert params.sigma == 3

    def test_sigma_infeasible_raises(self):
        params = SyncParams(0.1, 1.0, 0.1, 1.0, 1.0, 0.5, 50.0)
        with pytest.raises(ConfigurationError):
            _ = params.sigma
        assert not params.is_compliant()

    def test_with_overrides(self, params):
        changed = params.with_overrides(kappa=params.kappa * 2)
        assert changed.kappa == pytest.approx(2 * params.kappa)
        assert changed.mu == params.mu

    def test_non_compliant_kappa_detected(self, params):
        broken = params.with_overrides(kappa=params.kappa_minimum / 10)
        assert not broken.is_compliant()
