"""Property suite: the streaming skew fold equals exact trace evaluation.

:class:`~repro.sim.monitors.StreamingSkewTracker` claims bit-identical
results to :meth:`ExecutionTrace.global_skew` / :meth:`local_skew` /
:meth:`spread_at` while holding O(nodes + edges) state.  These tests
drive the tracker directly — no engine — over randomized piecewise-linear
clock ensembles (random drift schedules, random rate-multiplier
checkpoints, jumps, staggered starts) and compare every folded quantity
against a freshly built :class:`ExecutionTrace` oracle over *separate but
identically constructed* records (the tracker is run with ``prune=True``,
so its own records are progressively consumed).

Equality is exact (``==`` on floats, never ``pytest.approx``): both paths
must evaluate the same point set in the same order with the same
arithmetic, which is the engine-parity contract (docs/ENGINE.md).

The dedup regression from PR 3 — a logical checkpoint landing exactly on
a hardware rate breakpoint is ONE linearity breakpoint, not two — gets a
deterministic case plus property coverage (checkpoint times are drawn
from a grid that overlaps the drift breakpoint grid).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import HardwareClock
from repro.sim.monitors import StreamingSkewTracker
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.trace import ExecutionTrace, LogicalClockRecord
from repro.topology.generators import line

pytestmark = pytest.mark.parity

HORIZON = 50.0


def _build_ensemble(seed: int, n_nodes: int):
    """Deterministic random clock ensemble: per-node rate schedules,
    start times, and sorted mutation events ``(t, kind, payload)``.

    Mutation times are drawn from a 0.5-step grid and hardware breakpoints
    from a 2.5-step grid, so checkpoint-meets-rate-change collisions occur
    routinely — the dedup path is exercised, not just possible.
    """
    rng = random.Random(f"monitors-streaming:{seed}")
    ensemble = []
    for i in range(n_nodes):
        bp_count = rng.randrange(0, 5)
        bps = sorted(
            rng.sample([2.5 * k for k in range(1, 20)], bp_count)
        )
        rates = [rng.uniform(0.9, 1.1) for _ in range(bp_count + 1)]
        start = 0.0 if i == 0 or rng.random() < 0.5 else round(
            rng.uniform(0.5, HORIZON / 4), 1
        )
        events = []
        n_events = rng.randrange(0, 8)
        times = sorted(
            t
            for t in rng.sample([0.5 * k for k in range(1, 100)], n_events)
            if t > start
        )
        for t in times:
            if rng.random() < 0.25:
                events.append((t, "jump", rng.uniform(0.0, 0.5)))
            else:
                events.append((t, "checkpoint", rng.uniform(1.0, 1.2)))
        ensemble.append(
            {"bps": [0.0] + bps, "rates": rates, "start": start, "events": events}
        )
    return ensemble


def _make_record(node_cfg):
    clock = HardwareClock(
        PiecewiseConstantRate(node_cfg["bps"], node_cfg["rates"]),
        start_time=node_cfg["start"],
    )
    return clock, LogicalClockRecord(clock)


def _drive_tracker(ensemble, topology, **tracker_kwargs):
    """Replay the ensemble through a tracker exactly as the engine would:
    advance to each event time first, then mutate, then note."""
    nodes = list(topology.nodes)
    tracker = StreamingSkewTracker(
        nodes, list(topology.edges()), HORIZON, **tracker_kwargs
    )
    clocks = [_make_record(cfg) for cfg in ensemble]
    timeline = []
    for idx, cfg in enumerate(ensemble):
        timeline.append((cfg["start"], idx, ("start", None)))
        for t, kind, payload in cfg["events"]:
            timeline.append((t, idx, (kind, payload)))
    timeline.sort(key=lambda item: (item[0], item[1]))
    for t, idx, (kind, payload) in timeline:
        tracker.advance(t)
        clock, record = clocks[idx]
        if kind == "start":
            tracker.note_start(idx, record, clock)
        elif kind == "checkpoint":
            record.checkpoint(t, payload)
            tracker.note_checkpoint(idx, t)
        else:  # jump
            record.jump(t, record.value(t) + payload)
            tracker.note_checkpoint(idx, t)
    tracker.finalize()
    return tracker


def _build_oracle_trace(ensemble, topology) -> ExecutionTrace:
    """An identical, *unpruned* ensemble wrapped as a trace for the oracle."""
    nodes = list(topology.nodes)
    logical, hardware = {}, {}
    for idx, cfg in enumerate(ensemble):
        clock, record = _make_record(cfg)
        for t, kind, payload in cfg["events"]:
            if kind == "checkpoint":
                record.checkpoint(t, payload)
            else:
                record.jump(t, record.value(t) + payload)
        logical[nodes[idx]] = record
        hardware[nodes[idx]] = clock
    return ExecutionTrace(
        topology=topology,
        horizon=HORIZON,
        logical=logical,
        hardware=hardware,
        start_times={nodes[i]: cfg["start"] for i, cfg in enumerate(ensemble)},
        messages_sent={},
        messages_received={},
        bits_sent={},
    )


class TestFoldEqualsTraceEvaluation:
    @given(seed=st.integers(0, 10_000), n_nodes=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_global_and_local_extrema_bit_identical(self, seed, n_nodes):
        ensemble = _build_ensemble(seed, n_nodes)
        topology = line(n_nodes)
        tracker = _drive_tracker(ensemble, topology, prune=True)
        trace = _build_oracle_trace(ensemble, topology)

        folded_g = tracker.global_extremum()
        exact_g = trace.global_skew()
        assert (folded_g.value, folded_g.time) == (exact_g.value, exact_g.time)
        assert (folded_g.node_a, folded_g.node_b) == (
            exact_g.node_a, exact_g.node_b,
        )

        folded_l = tracker.local_extremum()
        exact_l = trace.local_skew()
        assert (folded_l.value, folded_l.time) == (exact_l.value, exact_l.time)
        assert (folded_l.node_a, folded_l.node_b) == (
            exact_l.node_a, exact_l.node_b,
        )

        assert tracker.final_spread == trace.spread_at(HORIZON)

    @given(seed=st.integers(0, 10_000), n_nodes=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_breakpoint_counts_match_trace_breakpoints(self, seed, n_nodes):
        ensemble = _build_ensemble(seed, n_nodes)
        topology = line(n_nodes)
        tracker = _drive_tracker(ensemble, topology, prune=True)
        trace = _build_oracle_trace(ensemble, topology)
        for idx, node in enumerate(topology.nodes):
            record = trace.logical[node]
            expected = len(record.breakpoints_in(record.start_time, HORIZON))
            assert tracker.breakpoint_count(idx) == expected, (
                f"node {node}: folded {tracker.breakpoint_count(idx)} "
                f"breakpoints, trace has {expected}"
            )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_pruning_does_not_change_results(self, seed):
        ensemble = _build_ensemble(seed, 4)
        topology = line(4)
        pruned = _drive_tracker(ensemble, topology, prune=True)
        unpruned = _drive_tracker(ensemble, topology, prune=False)
        assert pruned.global_extremum() == unpruned.global_extremum()
        assert pruned.local_extremum() == unpruned.local_extremum()
        assert pruned.final_spread == unpruned.final_spread


class TestFirstViolation:
    def _global_oracle(self, trace, bound):
        """Replicate the fold order: ascending union points, right values
        then left values, first instant with spread strictly above bound."""
        points = {0.0, HORIZON}
        for rec in trace.logical.values():
            points.update(rec.breakpoints_in(0.0, HORIZON))
        nodes = list(trace.logical)
        for t in sorted(points):
            for left in (False, True):
                values = [
                    trace.logical[n].value_left(t) if left
                    else trace.logical[n].value(t)
                    for n in nodes
                ]
                spread = max(values) - min(values)
                if spread > bound:
                    return (t, spread)
        return None

    @given(seed=st.integers(0, 10_000), fraction=st.sampled_from([0.3, 0.6, 0.9]))
    @settings(max_examples=25, deadline=None)
    def test_first_global_violation_matches_oracle(self, seed, fraction):
        ensemble = _build_ensemble(seed, 4)
        topology = line(4)
        baseline = _drive_tracker(ensemble, topology)
        bound = baseline.global_extremum().value * fraction
        tracker = _drive_tracker(ensemble, topology, global_bound=bound)
        trace = _build_oracle_trace(ensemble, topology)
        assert tracker.first_global_violation == self._global_oracle(
            trace, bound
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_first_local_violation_time_is_earliest(self, seed):
        ensemble = _build_ensemble(seed, 4)
        topology = line(4)
        baseline = _drive_tracker(ensemble, topology)
        bound = baseline.local_extremum().value * 0.5
        if bound <= 0.0:
            return  # degenerate draw: clocks never diverge
        tracker = _drive_tracker(ensemble, topology, local_bound=bound)
        trace = _build_oracle_trace(ensemble, topology)
        # Oracle: each edge's earliest exceeding instant over the *pair's
        # own* evaluation points; overall first violation time is their
        # minimum (which edge reports it can depend on fold order, so
        # only time and exceedance are asserted).
        earliest = None
        for a, b in topology.edges():
            for t in trace._pair_eval_points(a, b, 0.0, HORIZON):
                exceeded = any(
                    abs(
                        (trace.logical[a].value_left(t) if left
                         else trace.logical[a].value(t))
                        - (trace.logical[b].value_left(t) if left
                           else trace.logical[b].value(t))
                    ) > bound
                    for left in (False, True)
                )
                if exceeded:
                    if earliest is None or t < earliest:
                        earliest = t
                    break
        assert tracker.first_local_violation is not None
        t, magnitude, edge = tracker.first_local_violation
        assert t == earliest
        assert magnitude > bound
        assert edge in tracker.edges


class TestCheckpointMeetsRateChange:
    """The PR 3 dedup case: a rate-rule update firing exactly at a drift
    breakpoint is one linearity breakpoint, evaluated exactly once."""

    def _colliding_ensemble(self):
        return [
            # Node 0: hardware bp at t=10 AND a checkpoint at t=10.
            {
                "bps": [0.0, 10.0],
                "rates": [1.05, 0.95],
                "start": 0.0,
                "events": [(10.0, "checkpoint", 1.1)],
            },
            # Node 1: plain drift-free clock with one jump.
            {
                "bps": [0.0],
                "rates": [1.0],
                "start": 0.0,
                "events": [(20.0, "jump", 0.25)],
            },
        ]

    def test_collision_counts_once_and_extrema_match(self):
        ensemble = self._colliding_ensemble()
        topology = line(2)
        tracker = _drive_tracker(ensemble, topology, prune=True)
        trace = _build_oracle_trace(ensemble, topology)
        record = trace.logical[0]
        # breakpoints_in dedups the collision; the tracker must agree.
        expected = len(record.breakpoints_in(0.0, HORIZON))
        assert 10.0 in record.breakpoints_in(0.0, HORIZON)
        assert tracker.breakpoint_count(0) == expected
        exact = trace.global_skew()
        folded = tracker.global_extremum()
        assert (folded.value, folded.time) == (exact.value, exact.time)
        assert tracker.final_spread == trace.spread_at(HORIZON)

    def test_checkpoint_at_horizon_counts_but_folds_once(self):
        ensemble = [
            {
                "bps": [0.0],
                "rates": [1.02],
                "start": 0.0,
                "events": [(HORIZON, "checkpoint", 1.0)],
            },
            {"bps": [0.0], "rates": [0.98], "start": 0.0, "events": []},
        ]
        topology = line(2)
        tracker = _drive_tracker(ensemble, topology)
        trace = _build_oracle_trace(ensemble, topology)
        record = trace.logical[0]
        assert tracker.breakpoint_count(0) == len(
            record.breakpoints_in(0.0, HORIZON)
        )
        exact = trace.global_skew()
        folded = tracker.global_extremum()
        assert (folded.value, folded.time) == (exact.value, exact.time)
