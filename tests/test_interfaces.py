"""Tests for the algorithm interface layer and error types."""

import pytest

from repro.core.interfaces import DEFAULT_FIELD_BITS, Algorithm, AlgorithmNode
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    ReproError,
    ScheduleError,
    SimulationError,
    TopologyError,
    TraceError,
)


class MinimalAlgorithm(Algorithm):
    def make_node(self, node_id, neighbors):
        return AlgorithmNode()


class TestPayloadBits:
    def test_tuple_charged_per_field(self):
        algorithm = MinimalAlgorithm()
        assert algorithm.payload_bits((1.0, 2.0)) == 2 * DEFAULT_FIELD_BITS
        assert algorithm.payload_bits((1.0,)) == DEFAULT_FIELD_BITS
        assert algorithm.payload_bits([1.0, 2.0, 3.0]) == 3 * DEFAULT_FIELD_BITS

    def test_scalar_charged_once(self):
        assert MinimalAlgorithm().payload_bits(42.0) == DEFAULT_FIELD_BITS


class TestAlgorithmNodeDefaults:
    def test_default_callbacks_are_noops(self):
        node = AlgorithmNode()
        node.on_start(None)
        node.on_message(None, "w", ())
        node.on_alarm(None, "x")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            ConfigurationError,
            TopologyError,
            SimulationError,
            ScheduleError,
            TraceError,
            InvariantViolation,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_invariant_violation_carries_context(self):
        violation = InvariantViolation("detail text", node=3, time=1.5)
        assert violation.node == 3
        assert violation.time == 1.5
        assert violation.detail == "detail text"
        assert "detail text" in str(violation)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise TopologyError("broken")
