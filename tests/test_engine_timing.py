"""Exact-timing tests for hardware alarms under drifting clocks.

The engine converts hardware-time alarm targets into real times by
inverting the (fully known) rate schedule.  These tests pin down the
exactness: alarms must fire at the exact real time the hardware clock
reaches the target, even when the target lies beyond rate changes that
happen after the alarm was armed.
"""

import pytest

from repro.core.interfaces import Algorithm, AlgorithmNode
from repro.sim.delays import ConstantDelay
from repro.sim.drift import ExplicitDrift
from repro.sim.engine import SimulationEngine
from repro.sim.rates import PiecewiseConstantRate
from repro.topology.generators import line


class AlarmProbe(AlgorithmNode):
    def __init__(self, targets):
        self._targets = targets
        self.fired = []

    def on_start(self, ctx):
        ctx.send_all(("wake",))
        for index, target in enumerate(self._targets):
            ctx.set_alarm(f"probe-{index}", target)

    def on_alarm(self, ctx, name):
        self.fired.append((name, ctx.hardware()))

    def on_message(self, ctx, sender, payload):
        pass


class AlarmAlgorithm(Algorithm):
    allows_jumps = False
    name = "alarm-probe"

    def __init__(self, targets):
        self.targets = targets
        self.nodes = {}

    def make_node(self, node_id, neighbors):
        node = AlarmProbe(self.targets)
        self.nodes[node_id] = node
        return node


class TestAlarmExactness:
    def test_alarm_across_rate_changes(self):
        # Node 0's clock: rate 0.9 on [0, 10), 1.1 on [10, 20), 1.0 after.
        schedule = PiecewiseConstantRate([0.0, 10.0, 20.0], [0.9, 1.1, 1.0])
        drift = ExplicitDrift(0.11, {0: schedule}, default_rate=1.0)
        targets = [5.0, 15.0, 25.0]
        algo = AlarmAlgorithm(targets)
        engine = SimulationEngine(
            line(2), algo, drift, ConstantDelay(0.1), 60.0
        )
        trace = engine.run()
        fired = dict(algo.nodes[0].fired)
        # Fired hardware readings equal the targets exactly.
        for index, target in enumerate(targets):
            assert fired[f"probe-{index}"] == pytest.approx(target, abs=1e-9)
        # And the real firing times match the analytic inverses:
        # H(10) = 9; target 5 -> t = 5/0.9; target 15 -> 10 + 6/1.1;
        # H(20) = 9 + 11 = 20; target 25 -> 20 + 5/1.0.
        clock = trace.hardware[0]
        assert clock.time_at_value(5.0) == pytest.approx(5.0 / 0.9)
        assert clock.time_at_value(15.0) == pytest.approx(10 + 6.0 / 1.1)
        assert clock.time_at_value(25.0) == pytest.approx(25.0)

    def test_simultaneous_alarms_fire_in_arm_order(self):
        schedule = PiecewiseConstantRate([0.0], [1.0])
        drift = ExplicitDrift(0.01, {0: schedule}, default_rate=1.0)
        algo = AlarmAlgorithm([3.0, 3.0, 3.0])
        engine = SimulationEngine(line(2), algo, drift, ConstantDelay(0.1), 10.0)
        engine.run()
        names = [name for name, _ in algo.nodes[0].fired]
        assert names == ["probe-0", "probe-1", "probe-2"]

    def test_alarm_for_woken_node_uses_local_clock(self):
        """A node started at t>0 measures alarm targets from its own zero."""
        schedule = PiecewiseConstantRate([0.0], [1.0])
        drift = ExplicitDrift(0.01, {}, default_rate=1.0)
        algo = AlarmAlgorithm([2.0])
        engine = SimulationEngine(
            line(2), algo, drift, ConstantDelay(1.5, max_delay=2.0), 10.0
        )
        trace = engine.run()
        # Node 1 starts at t=1.5; its probe-0 fires at H=2 i.e. t=3.5.
        fired = dict(algo.nodes[1].fired)
        assert fired["probe-0"] == pytest.approx(2.0)
        assert trace.hardware[1].time_at_value(2.0) == pytest.approx(3.5)


class TestDeterministicReplay:
    """Regression guard for event-queue determinism.

    The parallel sweep executor's byte-identical-replay guarantee rests
    on the engine resolving simultaneous events in a stable order (the
    heap breaks timestamp ties by insertion sequence, never by object
    id).  These tests run the same execution twice back to back —
    constructed so that many events share exact timestamps — and require
    the *entire* message log and event count to be identical, not merely
    the end-state skews.
    """

    def _run_once(self):
        from repro.core.node import AoptAlgorithm
        from repro.core.params import SyncParams
        from repro.sim.drift import TwoGroupDrift
        from repro.sim.runner import run_execution
        from repro.topology.generators import ring

        params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
        # ConstantDelay + a ring + synchronized send periods ⇒ every round
        # of messages arrives in simultaneous bursts: maximal tie pressure
        # on the event queue.
        return run_execution(
            ring(6),
            AoptAlgorithm(params),
            TwoGroupDrift(0.05, [0, 1, 2]),
            ConstantDelay(1.0),
            horizon=30.0,
            record_messages=True,
        )

    def test_back_to_back_runs_produce_identical_event_orderings(self):
        first = self._run_once()
        second = self._run_once()
        assert first.events_processed == second.events_processed
        assert len(first.message_log) == len(second.message_log)
        # The logs must match record for record *in order* — equal
        # multisets with different interleavings would already be a
        # determinism failure.
        assert first.message_log == second.message_log

    def test_back_to_back_runs_produce_identical_traces(self):
        from repro.exec.summary import summarize_trace

        first = self._run_once()
        second = self._run_once()
        # Exact float equality throughout — the summaries fold in the
        # global/local skew extrema, their witness times and node pairs,
        # final spread, and message/bit counters.
        assert summarize_trace(first) == summarize_trace(second)
        assert first.start_times == second.start_times
        assert first.messages_sent == second.messages_sent
        assert first.messages_received == second.messages_received
        for node in first.topology.nodes:
            probe_times = [0.0, 7.5, 15.0, 22.5, 30.0]
            for t in probe_times:
                assert first.logical_value(node, t) == second.logical_value(node, t)

    def test_spec_replay_matches_direct_run(self):
        """ExecutionSpec.run() twice ⇒ identical traces, even though the
        delay model carries live RNG state (the spec must replay from a
        pristine copy every time)."""
        from repro.core.node import AoptAlgorithm
        from repro.core.params import SyncParams
        from repro.exec import ExecutionSpec
        from repro.sim.delays import UniformDelay
        from repro.sim.drift import TwoGroupDrift

        params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
        spec = ExecutionSpec(
            line(5),
            AoptAlgorithm(params),
            TwoGroupDrift(0.05, [0, 1]),
            UniformDelay(0.0, 1.0, seed=11),
            horizon=30.0,
            seed=11,
        )
        first, _ = spec.run(record_messages=True)
        second, _ = spec.run(record_messages=True)
        assert first.message_log == second.message_log
        assert first.events_processed == second.events_processed
        assert spec.run_summary() == spec.run_summary()
