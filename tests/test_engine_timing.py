"""Exact-timing tests for hardware alarms under drifting clocks.

The engine converts hardware-time alarm targets into real times by
inverting the (fully known) rate schedule.  These tests pin down the
exactness: alarms must fire at the exact real time the hardware clock
reaches the target, even when the target lies beyond rate changes that
happen after the alarm was armed.
"""

import pytest

from repro.core.interfaces import Algorithm, AlgorithmNode
from repro.sim.delays import ConstantDelay
from repro.sim.drift import ExplicitDrift
from repro.sim.engine import SimulationEngine
from repro.sim.rates import PiecewiseConstantRate
from repro.topology.generators import line


class AlarmProbe(AlgorithmNode):
    def __init__(self, targets):
        self._targets = targets
        self.fired = []

    def on_start(self, ctx):
        ctx.send_all(("wake",))
        for index, target in enumerate(self._targets):
            ctx.set_alarm(f"probe-{index}", target)

    def on_alarm(self, ctx, name):
        self.fired.append((name, ctx.hardware()))

    def on_message(self, ctx, sender, payload):
        pass


class AlarmAlgorithm(Algorithm):
    allows_jumps = False
    name = "alarm-probe"

    def __init__(self, targets):
        self.targets = targets
        self.nodes = {}

    def make_node(self, node_id, neighbors):
        node = AlarmProbe(self.targets)
        self.nodes[node_id] = node
        return node


class TestAlarmExactness:
    def test_alarm_across_rate_changes(self):
        # Node 0's clock: rate 0.9 on [0, 10), 1.1 on [10, 20), 1.0 after.
        schedule = PiecewiseConstantRate([0.0, 10.0, 20.0], [0.9, 1.1, 1.0])
        drift = ExplicitDrift(0.11, {0: schedule}, default_rate=1.0)
        targets = [5.0, 15.0, 25.0]
        algo = AlarmAlgorithm(targets)
        engine = SimulationEngine(
            line(2), algo, drift, ConstantDelay(0.1), 60.0
        )
        trace = engine.run()
        fired = dict(algo.nodes[0].fired)
        # Fired hardware readings equal the targets exactly.
        for index, target in enumerate(targets):
            assert fired[f"probe-{index}"] == pytest.approx(target, abs=1e-9)
        # And the real firing times match the analytic inverses:
        # H(10) = 9; target 5 -> t = 5/0.9; target 15 -> 10 + 6/1.1;
        # H(20) = 9 + 11 = 20; target 25 -> 20 + 5/1.0.
        clock = trace.hardware[0]
        assert clock.time_at_value(5.0) == pytest.approx(5.0 / 0.9)
        assert clock.time_at_value(15.0) == pytest.approx(10 + 6.0 / 1.1)
        assert clock.time_at_value(25.0) == pytest.approx(25.0)

    def test_simultaneous_alarms_fire_in_arm_order(self):
        schedule = PiecewiseConstantRate([0.0], [1.0])
        drift = ExplicitDrift(0.01, {0: schedule}, default_rate=1.0)
        algo = AlarmAlgorithm([3.0, 3.0, 3.0])
        engine = SimulationEngine(line(2), algo, drift, ConstantDelay(0.1), 10.0)
        engine.run()
        names = [name for name, _ in algo.nodes[0].fired]
        assert names == ["probe-0", "probe-1", "probe-2"]

    def test_alarm_for_woken_node_uses_local_clock(self):
        """A node started at t>0 measures alarm targets from its own zero."""
        schedule = PiecewiseConstantRate([0.0], [1.0])
        drift = ExplicitDrift(0.01, {}, default_rate=1.0)
        algo = AlarmAlgorithm([2.0])
        engine = SimulationEngine(
            line(2), algo, drift, ConstantDelay(1.5, max_delay=2.0), 10.0
        )
        trace = engine.run()
        # Node 1 starts at t=1.5; its probe-0 fires at H=2 i.e. t=3.5.
        fired = dict(algo.nodes[1].fired)
        assert fired["probe-0"] == pytest.approx(2.0)
        assert trace.hardware[1].time_at_value(2.0) == pytest.approx(3.5)
