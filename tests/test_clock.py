"""Unit tests for hardware clocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.sim.clock import HardwareClock
from repro.sim.rates import PiecewiseConstantRate


class TestBasics:
    def test_zero_before_start(self):
        clock = HardwareClock(PiecewiseConstantRate.constant(1.0), start_time=5.0)
        assert clock.value(0.0) == 0.0
        assert clock.value(5.0) == 0.0
        assert clock.value(7.0) == pytest.approx(2.0)

    def test_rate_zero_before_start(self):
        clock = HardwareClock(PiecewiseConstantRate.constant(1.1), start_time=5.0)
        assert clock.rate_at(4.9) == 0.0
        assert clock.rate_at(5.0) == 1.1

    def test_start_before_domain_rejected(self):
        rate = PiecewiseConstantRate([2.0], [1.0])
        with pytest.raises(TraceError):
            HardwareClock(rate, start_time=1.0)

    def test_elapsed(self):
        clock = HardwareClock(PiecewiseConstantRate.constant(0.5))
        assert clock.elapsed(2.0, 6.0) == pytest.approx(2.0)

    def test_drifting_value(self):
        rate = PiecewiseConstantRate([0.0, 10.0], [0.9, 1.1])
        clock = HardwareClock(rate)
        assert clock.value(20.0) == pytest.approx(9.0 + 11.0)


class TestInversion:
    def test_time_at_value_simple(self):
        clock = HardwareClock(PiecewiseConstantRate.constant(2.0), start_time=1.0)
        assert clock.time_at_value(4.0) == pytest.approx(3.0)

    def test_time_at_zero_is_start(self):
        clock = HardwareClock(PiecewiseConstantRate.constant(1.0), start_time=3.0)
        assert clock.time_at_value(0.0) == 3.0

    def test_negative_value_rejected(self):
        clock = HardwareClock(PiecewiseConstantRate.constant(1.0))
        with pytest.raises(TraceError):
            clock.time_at_value(-0.1)

    @given(
        rates=st.lists(st.floats(0.8, 1.2), min_size=1, max_size=5),
        start=st.floats(0.0, 3.0),
        target=st.floats(0.0, 30.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, rates, start, target):
        times = [float(i) for i in range(len(rates))]
        clock = HardwareClock(PiecewiseConstantRate(times, rates), start_time=start + times[-1])
        t = clock.time_at_value(target)
        assert clock.value(t) == pytest.approx(target, abs=1e-9)


class TestBreakpoints:
    def test_includes_start_time(self):
        rate = PiecewiseConstantRate([0.0, 10.0], [1.0, 1.1])
        clock = HardwareClock(rate, start_time=5.0)
        assert list(clock.breakpoints_in(0.0, 20.0)) == [5.0, 10.0]

    def test_excludes_outside_window(self):
        rate = PiecewiseConstantRate([0.0, 10.0, 20.0], [1.0, 1.1, 0.9])
        clock = HardwareClock(rate)
        assert list(clock.breakpoints_in(12.0, 18.0)) == []
