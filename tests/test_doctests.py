"""Run the documentation examples embedded in docstrings."""

import doctest

import pytest

import repro.analysis.tables
import repro.core.bounds
import repro.core.rate_rule

MODULES = [
    repro.core.rate_rule,
    repro.core.bounds,
    repro.analysis.tables,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"
    assert results.attempted > 0, f"no doctests found in {module}"
