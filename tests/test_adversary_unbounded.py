"""Tests for the Section 7.3 machinery (Lemma 7.10, rate capture)."""

import pytest

from repro.adversary.unbounded_rates import (
    find_largest_jump,
    phi_for_epsilon,
    run_rate_capture,
    slowed_node_schedules,
)
from repro.baselines import MaxForwardAlgorithm
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import ScheduleError
from repro.sim.rates import PiecewiseConstantRate
from repro.topology.generators import line

EPSILON = 0.1
DELAY = 1.0
N = 9


def phi_framed_setup(t_switch=60.0):
    """A φ-framed staleness-release schedule on a line of N nodes."""
    phi = phi_for_epsilon(EPSILON)
    blocked = N - 2

    def base_delay(sender, receiver, send_time, seq):
        low, high = phi * DELAY, (1 - phi) * DELAY
        if receiver == sender + 1 and send_time >= t_switch and sender < blocked:
            return low
        return high

    schedules = {
        u: PiecewiseConstantRate.constant(1 + EPSILON if u == 0 else 1.0)
        for u in range(N)
    }
    return schedules, base_delay, phi, blocked


class TestPhi:
    def test_phi_formula(self):
        assert phi_for_epsilon(0.1) == pytest.approx(0.1 / 2.2)

    def test_phi_invalid_epsilon(self):
        with pytest.raises(ScheduleError):
            phi_for_epsilon(0.0)


class TestSlowedSchedules:
    def test_victim_rate_reduced_then_restored(self):
        schedules, base_delay, phi, _ = phi_framed_setup()
        drift, _delay, t_prime = slowed_node_schedules(
            schedules, 3, t_eval=50.0, phi=phi, delay_bound=DELAY,
            epsilon=EPSILON, base_delay=base_delay,
        )
        rate = drift.rate_function(3, 100.0)
        assert rate.rate_at(0.0) == pytest.approx(1.0 - EPSILON)
        assert rate.rate_at(99.0) == pytest.approx(1.0)
        assert t_prime == pytest.approx(50.0 - phi * DELAY / (1 + EPSILON))

    def test_other_nodes_untouched(self):
        schedules, base_delay, phi, _ = phi_framed_setup()
        drift, _delay, _ = slowed_node_schedules(
            schedules, 3, 50.0, phi, DELAY, EPSILON, base_delay
        )
        assert drift.rate_function(0, 100.0).rate_at(10.0) == pytest.approx(
            1 + EPSILON
        )

    def test_too_early_t_eval_rejected(self):
        schedules, base_delay, phi, _ = phi_framed_setup()
        with pytest.raises(ScheduleError):
            slowed_node_schedules(
                schedules, 3, t_eval=1e-6, phi=phi, delay_bound=DELAY,
                epsilon=EPSILON, base_delay=base_delay,
            )


class TestRateCapture:
    def test_non_framed_delays_rejected(self):
        schedules, _, phi, _ = phi_framed_setup()
        with pytest.raises(ScheduleError):
            run_rate_capture(
                line(N),
                lambda: MaxForwardAlgorithm(send_period=1.0),
                schedules,
                lambda s, r, t, q: 0.0,  # below phi*T
                DELAY,
                EPSILON,
                victim=3,
                t_eval=30.0,
                verify_indistinguishability=False,
            )

    def test_indistinguishable_for_both_algorithm_kinds(self):
        schedules, base_delay, phi, blocked = phi_framed_setup()
        params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        for factory in (
            lambda: MaxForwardAlgorithm(send_period=params.h0),
            lambda: AoptAlgorithm(params),
        ):
            result = run_rate_capture(
                line(N), factory, schedules, base_delay, DELAY, EPSILON,
                victim=blocked, t_eval=70.0,
            )
            assert result.indistinguishable

    def test_jump_is_converted_into_neighbor_skew(self):
        """Aim the lemma at max-forward's largest catch-up jump: the
        exposed neighbor skew must cover the erased progress."""
        schedules, base_delay, phi, blocked = phi_framed_setup(t_switch=60.0)
        params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        factory = lambda: MaxForwardAlgorithm(send_period=params.h0)
        probe = run_rate_capture(
            line(N), factory, schedules, base_delay, DELAY, EPSILON,
            victim=blocked, t_eval=70.0, verify_indistinguishability=False,
        )
        victim, jump_time, jump_size = find_largest_jump(probe.base_trace, after=60.0)
        assert victim is not None and jump_size > 1.0
        t_eval = jump_time + phi * DELAY / (2 * (1 + EPSILON))
        result = run_rate_capture(
            line(N), factory, schedules, base_delay, DELAY, EPSILON,
            victim=victim, t_eval=t_eval,
        )
        assert result.indistinguishable
        assert result.base_progress >= jump_size - 1e-6
        assert result.forced_skew >= jump_size * 0.8

    def test_rate_bounded_algorithm_exposes_little(self):
        """A^opt's exposure is capped by β·(t − t'): the smoothness pays."""
        schedules, base_delay, phi, blocked = phi_framed_setup()
        params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
        result = run_rate_capture(
            line(N), lambda: AoptAlgorithm(params), schedules, base_delay,
            DELAY, EPSILON, victim=blocked, t_eval=70.0,
            verify_indistinguishability=False,
        )
        window = phi * DELAY / (1 + EPSILON)
        assert result.base_progress <= params.beta * window + 1e-9


class TestFindLargestJump:
    def test_no_jumps(self, params):
        from repro.sim.delays import ConstantDelay
        from repro.sim.drift import ConstantDrift
        from repro.sim.runner import run_execution

        trace = run_execution(
            line(3), AoptAlgorithm(params), ConstantDrift(params.epsilon),
            ConstantDelay(params.delay_bound), 30.0,
        )
        node, t, size = find_largest_jump(trace)
        assert node is None and size == 0.0
