"""Unit tests for the closed-form bound formulas.

The theorem bounds (5.5 and 5.10) are asserted through the certificate
registry's :func:`repro.cert.certificate_bound` — the registry delegates
to :mod:`repro.core.bounds`, and :class:`TestRegistryConsistency` pins
that delegation, so the certifier and this suite can never disagree on a
formula.  Helper formulas without a certificate (gradient bound, legal
state geometry, the closed-form lower bounds) are tested directly.
"""

import math

import pytest

from repro.cert import CERTIFICATES, certificate_bound, resolve_certificates
from repro.cert.certificates import TOLERANCE
from repro.core.bounds import (
    global_skew_bound,
    global_skew_lower_bound,
    gradient_bound,
    legal_state_distance,
    legal_state_levels,
    local_skew_bound,
    local_skew_lower_bound,
    local_skew_lower_bound_unbounded,
    rho_accuracy_penalty,
)
from repro.core.params import SyncParams
from repro.errors import ConfigurationError

GLOBAL = "thm-5.5-global-skew"
LOCAL = "thm-5.10-local-skew"


class TestGlobalBound:
    def test_formula(self, params):
        expected = (1 + params.epsilon) * 10 * params.delay_bound + (
            2 * params.epsilon / (1 + params.epsilon)
        ) * params.h0
        assert certificate_bound(GLOBAL, params, 10) == pytest.approx(expected)

    def test_linear_in_diameter(self, params):
        g5 = certificate_bound(GLOBAL, params, 5)
        g10 = certificate_bound(GLOBAL, params, 10)
        slope = (g10 - g5) / 5
        assert slope == pytest.approx((1 + params.epsilon) * params.delay_bound)

    def test_negative_diameter_rejected(self, params):
        with pytest.raises(ConfigurationError):
            certificate_bound(GLOBAL, params, -1)


class TestLocalBound:
    def test_logarithmic_growth(self, params):
        """Doubling D adds at most one level (log growth)."""
        values = [certificate_bound(LOCAL, params, 2 ** k) for k in range(2, 9)]
        increments = [b - a for a, b in zip(values, values[1:])]
        assert all(0 <= inc <= params.kappa + 1e-9 for inc in increments)

    def test_levels_zero_for_tiny_systems(self, params):
        small = params.with_overrides(kappa=10 * global_skew_bound(params, 1))
        assert legal_state_levels(small, 1) == 0
        assert certificate_bound(LOCAL, small, 1) == pytest.approx(small.kappa / 2)

    def test_levels_match_sigma_base(self, params):
        d = 64
        g = certificate_bound(GLOBAL, params, d)
        expected = math.ceil(math.log(2 * g / params.kappa, params.sigma))
        assert legal_state_levels(params, d) == expected

    def test_legal_state_distance_decreasing_in_s(self, params):
        d = 32
        c = [legal_state_distance(params, d, s) for s in range(4)]
        assert c[0] > c[1] > c[2] > c[3]
        assert c[1] == pytest.approx(c[0] / params.sigma)

    def test_negative_level_rejected(self, params):
        with pytest.raises(ConfigurationError):
            legal_state_distance(params, 8, -1)


class TestRegistryConsistency:
    """The registry must delegate to core.bounds — never re-derive."""

    @pytest.mark.parametrize("epsilon", [0.001, 0.05, 0.1])
    @pytest.mark.parametrize("d", [1, 4, 32, 256])
    def test_certificate_bounds_match_formulas(self, epsilon, d):
        params = SyncParams.recommended(epsilon=epsilon, delay_bound=1.0)
        assert certificate_bound(GLOBAL, params, d) == global_skew_bound(params, d)
        assert certificate_bound(LOCAL, params, d) == local_skew_bound(params, d)

    def test_monitor_certificates_are_zero_excess_claims(self, params):
        for name in ("cond1-envelope", "cond2-rate-bounds", "monotonicity"):
            assert certificate_bound(name, params, 8) == TOLERANCE

    def test_unknown_certificate_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_certificates(["thm-9.9-imaginary"])

    def test_catalog_covers_the_theorems(self):
        assert {GLOBAL, LOCAL, "cond1-envelope", "cond2-rate-bounds",
                "monotonicity", "kllo-stabilization",
                "ftgcs-byzantine-skew", "gcs-pcls-local-skew",
                "thm-7.2-global-lower",
                "thm-7.7-local-lower"} == set(CERTIFICATES)

    def test_skew_certificates_require_faultless_model(self):
        for name, fault_ok in [
            (GLOBAL, False), (LOCAL, False),
            ("cond1-envelope", True), ("cond2-rate-bounds", True),
            ("monotonicity", True),
        ]:
            certificate = CERTIFICATES[name]
            assert certificate.applies_to("aopt", has_faults=False)
            assert certificate.applies_to("aopt", has_faults=True) == fault_ok
            assert not certificate.applies_to("free-running", has_faults=False)

    def test_dynamic_applicability(self):
        # Static skew bounds are vacuous under churn (a partition drifts
        # past G unavoidably); the stabilization claim only exists there.
        for name, dynamic_ok in [
            (GLOBAL, False), (LOCAL, False),
            ("cond1-envelope", True), ("cond2-rate-bounds", True),
            ("monotonicity", True),
        ]:
            certificate = CERTIFICATES[name]
            assert certificate.applies_to(
                "kllo-dynamic", has_topology_schedule=True
            ) == dynamic_ok
        stabilization = CERTIFICATES["kllo-stabilization"]
        assert stabilization.applies_to("kllo-dynamic", has_topology_schedule=True)
        assert stabilization.applies_to("kllo-frozen", has_topology_schedule=True)
        # ... but never on static runs, and never for algorithms outside
        # the kllo family (they claim no stabilization bound).
        assert not stabilization.applies_to("kllo-dynamic")
        assert not stabilization.applies_to("aopt", has_topology_schedule=True)


class TestGradientBound:
    def test_neighbor_case_matches_local_bound(self, params):
        assert gradient_bound(params, 64, 1) == pytest.approx(
            certificate_bound(LOCAL, params, 64)
        )

    def test_diameter_case_near_global(self, params):
        d = 64
        bound = gradient_bound(params, d, d)
        assert bound >= certificate_bound(GLOBAL, params, d) - 1e-9

    def test_shape_in_distance(self, params):
        """The bound is d·(s(d)+½)·κ with the level s(d) non-increasing.

        It is piecewise linear in d with small saw-tooth drops at level
        boundaries (the binding Definition 5.6 constraint changes), but it
        always dominates d·κ/2 and its per-distance slope never exceeds
        the densest level.
        """
        d = 64
        values = [gradient_bound(params, d, k) for k in range(1, d + 1)]
        levels = [v / (k * params.kappa) - 0.5 for k, v in enumerate(values, start=1)]
        assert all(b <= a + 1e-9 for a, b in zip(levels, levels[1:]))
        assert all(v >= (k * params.kappa) / 2 - 1e-9
                   for k, v in enumerate(values, start=1))

    def test_invalid_distance_rejected(self, params):
        with pytest.raises(ConfigurationError):
            gradient_bound(params, 8, 0)


class TestLowerBounds:
    def test_rho_exact_knowledge(self):
        # c1 = c2 = 1: rho = min(eps, -eps) = -eps.
        assert rho_accuracy_penalty(0.1, 0.1, 1.0, 1.0) == pytest.approx(-0.1)

    def test_rho_inaccurate_delay(self):
        # Loose delay knowledge lets the adversary force (1 + eps) D T.
        assert rho_accuracy_penalty(0.1, 0.1, 0.5, 1.0) == pytest.approx(0.1)

    def test_rho_invalid_ratios_rejected(self):
        with pytest.raises(ConfigurationError):
            rho_accuracy_penalty(0.1, 0.1, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            rho_accuracy_penalty(0.1, 0.1, 1.0, 1.5)

    def test_global_lower_bound_exact(self):
        assert global_skew_lower_bound(10, 1.0, 0.05) == pytest.approx(0.95 * 10)

    def test_global_lower_bound_below_upper(self, params):
        lower = global_skew_lower_bound(16, params.delay_bound, params.epsilon)
        upper = certificate_bound(GLOBAL, params, 16)
        assert lower <= upper

    def test_local_lower_bound_log_growth(self):
        alpha, beta, eps, delay = 0.9, 1.2, 0.1, 1.0
        v = [
            local_skew_lower_bound(d, delay, eps, alpha, beta)
            for d in (4, 16, 64, 256, 1024)
        ]
        assert all(b >= a for a, b in zip(v, v[1:]))
        assert v[-1] > v[0]

    def test_local_lower_bound_below_aopt_upper(self, params):
        """Consistency: the paper's lower bound must not exceed A^opt's upper."""
        for d in (4, 16, 64, 256):
            lower = local_skew_lower_bound(
                d, params.delay_bound, params.epsilon, params.alpha, params.beta
            )
            assert lower <= certificate_bound(LOCAL, params, d) + 1e-9

    def test_local_lower_bound_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            local_skew_lower_bound(0, 1.0, 0.1, 0.9, 1.1)
        with pytest.raises(ConfigurationError):
            local_skew_lower_bound(8, 1.0, 0.1, 0.0, 1.1)

    def test_unbounded_rate_lower_bound(self):
        value = local_skew_lower_bound_unbounded(100, 1.0, 0.1, 0.9)
        assert value == pytest.approx(0.9 * math.log(100, 10))

    def test_unbounded_rate_diameter_one(self):
        assert local_skew_lower_bound_unbounded(1, 1.0, 0.1, 0.9) == pytest.approx(
            0.45
        )

    def test_unbounded_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            local_skew_lower_bound_unbounded(0, 1.0, 0.1, 0.9)
        with pytest.raises(ConfigurationError):
            local_skew_lower_bound_unbounded(8, 1.0, 1.5, 0.9)


class TestCrossConsistency:
    def test_upper_to_lower_gap_is_constant_factor(self):
        """Cor 7.8: with kappa in O(T), A^opt is asymptotically optimal.

        The ratio upper/lower should stay bounded as D grows (it tends to
        roughly 2·kappa/T times a constant).
        """
        params = SyncParams.recommended(epsilon=0.01, delay_bound=1.0)
        ratios = []
        for d in (16, 256, 4096, 65536):
            upper = certificate_bound(LOCAL, params, d)
            lower = local_skew_lower_bound(
                d, params.delay_bound, params.epsilon, params.alpha, params.beta
            )
            ratios.append(upper / lower)
        # Ratios settle rather than diverge.
        assert ratios[-1] < 2 * ratios[0]
