"""Public-API surface tests: imports, exports, and version metadata.

A downstream user's first contact with the library is ``import repro``
and the documented entry points; these tests pin that surface so
refactors cannot silently break it.
"""

import importlib

import pytest

import repro


class TestTopLevelPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_surface(self):
        """The README quickstart's names all exist."""
        from repro import (  # noqa: F401
            SyncParams,
            global_skew_bound,
            local_skew_bound,
            simulate_aopt,
            topology,
        )


SUBPACKAGES = [
    "repro.core",
    "repro.sim",
    "repro.topology",
    "repro.baselines",
    "repro.adversary",
    "repro.variants",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"


class TestDocstringCoverage:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_public_callables_documented(self):
        """Every exported callable/class carries a docstring."""
        undocumented = []
        for module_name in SUBPACKAGES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                item = getattr(module, name)
                if callable(item) and not getattr(item, "__doc__", None):
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestErrorExports:
    def test_exception_hierarchy_exported_at_top_level(self):
        from repro import (  # noqa: F401
            ConfigurationError,
            InvariantViolation,
            ReproError,
            ScheduleError,
            SimulationError,
            TopologyError,
            TraceError,
        )
