# Convenience targets for the repro library.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test test-slow test-faults test-obs test-lint test-cert test-parity test-backend test-dynamic test-byzantine perf-smoke lint lint-cold bench examples report sweep-smoke profile-smoke certify-smoke check clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The multi-worker stress tests skipped by tier-1 (`-m "not slow"` is the
# configured default); CI opts in with this target.
test-slow:
	$(PYTHON) -m pytest tests/ benchmarks/ -m slow

# The fault-injection subsystem end to end: unit/equivalence tests plus
# the E27 degradation benchmarks.
test-faults:
	$(PYTHON) -m pytest tests/ benchmarks/ -m faults

# The observability layer: metrics/export/profile units plus the cache
# accounting and hygiene regressions.
test-obs:
	$(PYTHON) -m pytest tests/ -m obs

# The reprolint self-tests (single-file + whole-program pass), the
# golden-digest pins that back R004, and the lint perf smoke floor.
test-lint:
	$(PYTHON) -m pytest tests/ benchmarks/bench_lint.py -m lint

# The theorem-certification harness: fuzzer/shrinker/artifact units, CLI
# exit codes and golden report, and the E28 margin-trend benchmarks.
test-cert:
	$(PYTHON) -m pytest tests/ benchmarks/ -m cert

# The engine-parity lockdown: fast path vs reference engine vs streaming
# folds, byte-identical summaries (docs/ENGINE.md).
test-parity:
	$(PYTHON) -m pytest tests/ -m parity

# The fault-tolerant campaign stack: retry/lease/manifest units plus the
# SIGKILL chaos acceptance (docs/EXECUTION.md).  The explicit `-m backend`
# overrides the tier-1 `-m "not slow"` default, so the slow chaos cases
# run here too.
test-backend:
	$(PYTHON) -m pytest tests/test_backend.py tests/test_backend_chaos.py -m backend

# The dynamic-topology model end to end: schedule/engine/parity units,
# the network-merge suite on TopologySchedule, and the E24/E30
# merge-and-churn benchmarks (docs/DYNAMIC.md).
test-dynamic:
	$(PYTHON) -m pytest tests/ benchmarks/ -m dynamic

# The Byzantine fault model end to end: corruption-hash units, the
# engine attack/recovery suite, the differential-survival regression,
# and the skew-vs-fraction degradation benchmarks (docs/FAULTS.md).
test-byzantine:
	$(PYTHON) -m pytest tests/ benchmarks/ -m byzantine

# Speedup floors vs the recorded seed baseline JSON (small + mid
# workloads; the full curve runs under `make bench`).
perf-smoke:
	$(PYTHON) -m pytest benchmarks/bench_perf_smoke.py -m perf_smoke

# Determinism & digest-safety gate: the tree must lint clean (modulo the
# committed baseline) before anything ships.  The whole-program pass
# (call graph + R006/R009) always runs; the content-hash cache keeps
# repeat runs fast.
lint:
	$(PYTHON) -m repro lint --cache .reprolint-cache.json src benchmarks

# Proof that the cache is an accelerator, not a source of truth: a cold
# run (cache deleted) and a warm re-run must emit byte-identical JSON.
lint-cold:
	rm -f .reprolint-cache.json
	$(PYTHON) -m repro lint --format json --cache .reprolint-cache.json \
		src benchmarks > .reprolint-cold.json
	$(PYTHON) -m repro lint --format json --cache .reprolint-cache.json \
		src benchmarks > .reprolint-warm.json
	cmp .reprolint-cold.json .reprolint-warm.json
	rm -f .reprolint-cold.json .reprolint-warm.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick end-to-end proof of the parallel sweep executor: a small diameter
# grid through `python -m repro sweep` on every core, cache bypassed.
# The final three commands are the campaign-resume smoke: a chaos run
# that SIGKILLs every work-queue worker must exit non-zero and leave a
# resumable manifest, and the `--resume` run must then complete clean.
sweep-smoke: lint lint-cold profile-smoke certify-smoke perf-smoke
	$(PYTHON) -m repro sweep --topology line --diameters 2 4 8 \
		--workers auto --no-cache --metrics table
	$(PYTHON) -m repro sweep --topology line --diameters 2 4 8 \
		--workers auto --no-cache --streaming
	$(PYTHON) -m repro sweep --topology line --diameters 3 \
		--algorithm kllo-dynamic --churn 0.02 --churn-outage 3.0 \
		--workers auto --no-cache
	$(PYTHON) -m repro faults --scenario partition --nodes 8 \
		--workers auto --no-cache
	$(PYTHON) -m repro faults --byzantine --nodes 8 \
		--workers auto --no-cache
	rm -rf /tmp/repro-smoke-queue /tmp/repro-smoke-manifest.json
	! $(PYTHON) -m repro sweep --topology line --diameters 2 4 \
		--workers 2 --no-cache --backend work-queue \
		--queue-dir /tmp/repro-smoke-queue \
		--manifest /tmp/repro-smoke-manifest.json \
		--chaos-kill 1.0 --no-respawn
	$(PYTHON) -m repro sweep --topology line --diameters 2 4 \
		--workers 2 --no-cache --backend work-queue \
		--queue-dir /tmp/repro-smoke-queue \
		--resume /tmp/repro-smoke-manifest.json --max-retries 2 \
		--metrics table
	rm -rf /tmp/repro-smoke-queue /tmp/repro-smoke-manifest.json

# Quick end-to-end proof of the telemetry layer: profile one small spec
# suite and print the hot-spec / hot-phase ranking.
profile-smoke:
	$(PYTHON) -m repro profile --topology line --nodes 5 --horizon 40 --top 3

# Quick end-to-end proof of the certification harness: a small fixed-seed
# fuzz campaign must certify clean (exit 0), and the committed planted
# counterexample must still replay (exit 1 = reproduced, by contract).
certify-smoke:
	$(PYTHON) -m repro certify --budget 12 --seed 0 --workers auto
	$(PYTHON) -m repro certify --byzantine --differential --budget 3 --seed 0
	! $(PYTHON) -m repro certify \
		--replay tests/fixtures/cert/repro-thm-5.5-global-skew.json

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

report:
	$(PYTHON) -m repro report --output report.md

check: lint lint-cold test test-parity test-backend test-dynamic test-byzantine perf-smoke certify-smoke bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
