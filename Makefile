# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench examples report check clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

report:
	$(PYTHON) -m repro report --output report.md

check: test bench

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
