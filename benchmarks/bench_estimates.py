"""E14 — Lemma 5.4: estimate accuracy ``L_v^w(t) > L_w(t − T) − H̄0``.

Reconstructs every neighbor estimate from the probe stream of an
instrumented run and samples the violation margin
``(L_w(t − T) − H̄0) − L_v^w(t)`` densely between updates: all margins
must be negative, and the worst margin quantifies the actual slack of
the lemma on the executed schedule.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.metrics import estimate_accuracy_errors
from repro.analysis.tables import format_table
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0
N = 7


@pytest.mark.benchmark(group="E14-estimates")
def test_estimate_accuracy_lemma_5_4(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    scenarios = [
        ("two-group + slow delays", TwoGroupDrift(EPSILON, [0, 1, 2]),
         ConstantDelay(DELAY)),
        ("random walk + random delays",
         RandomWalkDrift(EPSILON, step_period=5.0, step_size=EPSILON / 2, seed=2),
         UniformDelay(0.0, DELAY, seed=2)),
    ]

    def experiment():
        rows = []
        for name, drift, delay in scenarios:
            trace = run_execution(
                line(N),
                AoptAlgorithm(params, record_estimates=True),
                drift,
                delay,
                200.0,
            )
            margins = estimate_accuracy_errors(trace, params, samples_per_edge=10)
            rows.append([name, len(margins), max(margins), params.h_bar_0])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E14: Lemma 5.4 estimate accuracy — worst margin (negative = OK)",
        format_table(["scenario", "samples", "worst margin", "H_bar_0"], rows),
    )
    for _name, samples, worst_margin, _h_bar in rows:
        assert samples > 100
        assert worst_margin < 0.0
