"""E7 — Corollary 7.9 / Definition 5.6: the gradient property.

On a line of 33 nodes under the worst suite adversary, the maximum skew
between nodes at distance d must stay below the legal-state bound
d·(s(d)+½)·κ, and the *per-hop* skew must decrease as d grows — distant
nodes are allowed proportionally more skew, nearby nodes are tightly
coupled.  That is the gradient property in one table.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_adversary_suite, standard_adversaries
from repro.analysis.metrics import gradient_curve
from repro.analysis.tables import format_table
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology.generators import line
from repro.topology.properties import all_pairs_distances

EPSILON = 0.05
DELAY = 1.0
N = 33


@pytest.mark.benchmark(group="E7-gradient")
def test_gradient_property(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = line(N)
    distances = all_pairs_distances(topology)

    def experiment():
        suite = run_adversary_suite(
            topology, lambda: AoptAlgorithm(params), params, keep_traces=True
        )
        trace = suite.traces[suite.worst_local_case]
        return gradient_curve(trace, params, distances, N - 1)

    curve = run_once(benchmark, experiment)
    shown = [row for row in curve if row[0] in (1, 2, 4, 8, 16, 32)]
    report(
        "E7: skew vs distance (worst suite adversary, line of 33)",
        format_table(
            ["distance d", "measured max skew", "legal-state bound"],
            [[d, measured, bound] for d, measured, bound in shown],
        ),
    )
    for d, measured, bound in curve:
        assert measured <= bound + 1e-7
    # Gradient shape: per-hop skew at d=1 exceeds per-hop skew at d=D-1.
    per_hop = {d: measured / d for d, measured, _ in curve}
    assert per_hop[1] >= per_hop[max(per_hop)] - 1e-9


@pytest.mark.benchmark(group="E7-gradient")
def test_forced_gradient_from_amplification(benchmark, report):
    """E7b — Corollary 7.9 from below: the amplification adversary forces,
    at each of its round distances d, an *average* skew of Θ(d·T) — while
    the legal-state upper bound at that distance still holds.  Together
    with the upper curve this brackets the gradient property."""
    from repro.adversary.local_bound import run_skew_amplification
    from repro.core.bounds import gradient_bound

    epsilon = 0.1
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=DELAY)

    def experiment():
        result = run_skew_amplification(
            lambda: AoptAlgorithm(params),
            n=17,
            epsilon=epsilon,
            delay_bound=DELAY,
            base=4,
        )
        rows = []
        for r in result.rounds:
            rows.append(
                [
                    r.distance,
                    r.skew_after_shift,
                    (1 - epsilon) * r.distance * DELAY,
                    gradient_bound(params, 16, r.distance),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E7b: forced skew at distance d (amplification) vs gradient bound",
        format_table(
            ["distance d", "forced skew", "alpha*d*T", "upper bound"], rows
        ),
    )
    for _d, forced, floor, upper in rows:
        assert forced >= floor - 1e-6
        assert forced <= upper + 1e-6
