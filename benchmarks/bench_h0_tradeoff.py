"""E4 — §6.1: the message-frequency vs skew trade-off in H0.

Amortized message frequency is Θ(1/H0) (Corollary 5.2 (ii)); the global
skew bound only pays 2ε/(1+ε)·H0 for it, and κ — hence the local skew —
pays Θ(μ·H0).  Quadrupling H0 should quarter the message count while the
measured skews degrade by no more than the bounds predict.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_adversary_suite
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0
N = 13


@pytest.mark.benchmark(group="E4-h0-tradeoff")
def test_h0_frequency_skew_tradeoff(benchmark, report):
    base = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    horizon = 250.0

    def experiment():
        rows = []
        for factor in (0.5, 1.0, 4.0, 16.0):
            params = SyncParams.recommended(
                epsilon=EPSILON, delay_bound=DELAY, h0=base.h0 * factor
            )
            result = run_adversary_suite(
                line(N), lambda: AoptAlgorithm(params), params, horizon=horizon
            )
            messages = sum(
                case["messages"] for case in result.per_case.values()
            ) / len(result.per_case)
            rows.append(
                [
                    params.h0,
                    messages,
                    result.worst_global,
                    global_skew_bound(params, N - 1),
                    result.worst_local,
                    params.kappa,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E4: H0 sweep — messages vs skew (line of 13, fixed horizon)",
        format_table(
            ["H0", "msgs/case", "global", "G bound", "local", "kappa"], rows
        ),
    )
    # Message counts fall roughly inversely with H0.
    messages = [row[1] for row in rows]
    assert messages == sorted(messages, reverse=True)
    assert messages[0] > 5 * messages[-1]
    # Bounds are respected at every H0.
    for row in rows:
        assert row[2] <= row[3] + 1e-7
    # The global-skew *price* of H0 is the 2eps/(1+eps) H0 term: going from
    # the smallest to the largest H0 costs less than 2 eps * delta_H0.
    h_small, h_large = rows[0][0], rows[-1][0]
    assert rows[-1][3] - rows[0][3] <= 2 * EPSILON * (h_large - h_small) + 1e-9
