"""E30 — extension: sustained edge churn vs skew and re-stabilization.

The dynamic-networks extension of the KLLO analysis promises graceful
degradation: while edges flap, components can drift apart at up to
``2ε``, but once the topology settles the spread re-converges to the
static bound ``G``.  This benchmark drives ``kllo-dynamic`` over a line
whose interior edges flap under :meth:`TopologySchedule.churn` at
increasing rates (every outage of a line edge is a real partition) and
reports the peak spread, the final spread, and the stabilization-monitor
verdict from the spec-built monitor stack.

Expected shape: the churn-free run brushes ``G``; churned runs overshoot
``G`` while partitioned but end clean — zero stabilization violations at
every rate, because every outage eventually heals and the settle bound
(:func:`~repro.core.bounds.stabilization_settle_bound`) is honored.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.params import SyncParams
from repro.exec.spec import ExecutionSpec
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.topology.dynamic import TopologySchedule
from repro.topology.generators import line
from repro.variants.kllo_dynamic import KlloDynamicAlgorithm

pytestmark = pytest.mark.dynamic

EPSILON = 0.05
DELAY = 1.0
N = 8
HORIZON = 300.0
MEAN_OUTAGE = 6.0
CHURN_START = 40.0  # leave the initialization flood undisturbed


@pytest.mark.benchmark(group="E30-churn")
def test_churn_rate_vs_skew(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = line(N)
    bound = global_skew_bound(params, N - 1)

    def run_one(rate):
        schedule = None
        outages = 0
        if rate is not None:
            schedule = TopologySchedule.churn(
                topology.edges(), rate, MEAN_OUTAGE, HORIZON,
                start=CHURN_START, seed=3,
            )
            outages = len(schedule.edge_events) // 2
        spec = ExecutionSpec(
            topology=topology,
            algorithm=KlloDynamicAlgorithm(params),
            drift=TwoGroupDrift(EPSILON, fast_nodes=topology.nodes[: N // 2]),
            delay=ConstantDelay(DELAY),
            horizon=HORIZON,
            check_invariants=True,
            params=params,
            topology_schedule=schedule,
        )
        summary = spec.run_summary()
        stab = sum(
            1 for v in summary.monitor_violations
            if v.startswith("stabilization@")
        )
        return [
            rate if rate is not None else 0.0,
            outages,
            summary.global_skew,
            summary.final_spread,
            stab,
        ]

    def experiment():
        return [run_one(rate) for rate in (None, 0.002, 0.005, 0.01)]

    rows = run_once(benchmark, experiment)
    report(
        f"E30 (extension): edge churn vs skew (kllo-dynamic, line of {N}, "
        f"G={bound:.4f})",
        format_table(
            ["churn rate", "outages", "peak spread", "final spread",
             "stabilization violations"],
            rows,
        ),
    )
    baseline = rows[0]
    assert baseline[1] == 0
    assert baseline[2] <= bound + 1e-7
    # Partitions push the peak past the static bound; more churn, more
    # outages to recover from.
    outage_counts = [row[1] for row in rows[1:]]
    assert all(count > 0 for count in outage_counts)
    assert outage_counts == sorted(outage_counts)
    assert max(row[2] for row in rows[1:]) > baseline[2]
    # The re-stabilization claim: every run ends clean.
    for row in rows:
        assert row[4] == 0, f"stabilization violated at churn rate {row[0]}"
