"""E25 — §7.2's duration remark: forced local skew *persists*.

After Theorem 7.7 the paper notes the forced neighbor skew is not a
fleeting spike: "for Θ(T·√D) time there are always some neighbors with a
clock skew of Ω(α·T·log_b D)" — because decaying the skew takes time
proportional to the accumulated amount at bounded rates.

The benchmark forces skew with the amplification adversary against a
weak corrector, then lets the system run on (drift-free, fast delays) and
measures how long the worst *edge* skew stays above half its peak: the
duration must be at least peak/(2·(β−α)) — the fastest any rate-bounded
algorithm can burn skew.
"""

import pytest

from benchmarks.conftest import run_once
from repro.adversary.local_bound import run_skew_amplification
from repro.analysis.tables import format_table
from repro.analysis.timeseries import time_above
from repro.baselines import MidpointAlgorithm
from repro.core.params import SyncParams

EPSILON = 0.1
DELAY = 1.0
MU = 0.12  # weak corrector: beta - alpha = (1+eps)(1+mu) - (1-eps)


@pytest.mark.benchmark(group="E25-duration")
def test_forced_skew_persists(benchmark, report):
    beta = (1 + EPSILON) * (1 + MU)
    alpha = 1 - EPSILON
    decay_rate = beta - alpha

    def experiment():
        rows = []
        for n in (17, 65):
            result = run_skew_amplification(
                lambda: MidpointAlgorithm(send_period=1.0, mu=MU),
                n=n,
                epsilon=EPSILON,
                delay_bound=DELAY,
                base=4,
                tail=60.0,
            )
            trace = result.trace
            last = result.rounds[-1]
            v, w = last.v, last.w
            peak = abs(trace.skew(v, w, last.t_eval))
            # Edge-skew series on the final pair through the tail of the run.
            samples = 400
            t0 = max(0.0, last.t_eval - 5.0)
            step = (trace.horizon - t0) / samples
            series = [
                (t0 + i * step, abs(trace.skew(v, w, t0 + i * step)))
                for i in range(samples + 1)
            ]
            duration = time_above(series, peak / 2)
            rows.append([n - 1, peak, duration, peak / (2 * decay_rate)])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E25: forced neighbor skew persists (midpoint, final pair)",
        format_table(
            ["D", "peak edge skew", "time above peak/2", "peak/(2(beta-alpha))"],
            rows,
        ),
    )
    for _d, peak, duration, floor in rows:
        assert peak > (1 - EPSILON) * DELAY - 1e-6
        # Decaying from peak to peak/2 takes at least peak/(2*decay_rate).
        assert duration >= min(floor, 1.0) * 0.8
    # Larger forced skew persists longer.
    assert rows[1][2] >= rows[0][2]