"""E21 — substrate performance: event throughput of the simulator.

Not a paper claim — a harness property worth tracking: the discrete-event
engine's events/second determines which experiment scales are feasible.
Unlike the experiment benchmarks (deterministic, single-round), these run
multiple rounds for stable timing statistics.
"""

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import grid, line

EPSILON = 0.05
DELAY = 1.0


def build_and_run(topology, params, drift, delay, horizon):
    engine = SimulationEngine(topology, AoptAlgorithm(params), drift, delay, horizon)
    return engine.run()


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_throughput_line_constant(benchmark):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = line(16)

    def run():
        return build_and_run(
            topology, params, TwoGroupDrift(EPSILON, list(range(8))),
            ConstantDelay(DELAY), 150.0,
        )

    trace = benchmark(run)
    assert trace.events_processed > 1000
    benchmark.extra_info["events"] = trace.events_processed


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_throughput_grid_random(benchmark):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = grid(5, 5)

    def run():
        return build_and_run(
            topology, params,
            RandomWalkDrift(EPSILON, step_period=5.0, step_size=0.02, seed=1),
            UniformDelay(0.0, DELAY, seed=1), 100.0,
        )

    trace = benchmark(run)
    assert trace.events_processed > 1000
    benchmark.extra_info["events"] = trace.events_processed


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_exact_skew_evaluation_cost(benchmark):
    """The price of exactness: global-skew evaluation over all breakpoints."""
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    trace = build_and_run(
        line(16), params, TwoGroupDrift(EPSILON, list(range(8))),
        ConstantDelay(DELAY), 150.0,
    )

    result = benchmark(trace.global_skew)
    assert result.value > 0


@pytest.mark.benchmark(group="E21-engine-speedup", min_rounds=3)
@pytest.mark.parametrize("name", ["small", "mid", "large"])
def test_speedup_vs_seed_baseline(benchmark, name):
    """End-to-end speedup curve vs the recorded pre-fast-path baseline.

    The baseline JSON stores seed-engine wall times (see
    ``record_engine_baseline.py``); each point here runs the same
    workload (engine + exact skew summary) on the current tree and
    asserts the recorded floor — ≥5x on the mid-size config is the PR-6
    acceptance bar.  ``make perf-smoke`` is the quick subset of this.
    """
    import json
    from pathlib import Path

    from benchmarks.record_engine_baseline import run_workload

    baseline_path = (
        Path(__file__).parent / "baselines" / "engine_perf_baseline.json"
    )
    workload = next(
        w
        for w in json.loads(baseline_path.read_text())["workloads"]
        if w["name"] == name
    )

    def run():
        return run_workload(workload["nodes"], workload["horizon"])

    _, events = benchmark(run)
    assert events == workload["events"]
    wall = benchmark.stats.stats.min
    speedup = workload["seed_wall_seconds"] / wall
    benchmark.extra_info["seed_wall_seconds"] = workload["seed_wall_seconds"]
    benchmark.extra_info["speedup_vs_seed"] = round(speedup, 2)
    assert speedup >= workload["min_speedup"], (
        f"{name}: {speedup:.2f}x vs seed is below the "
        f"{workload['min_speedup']}x floor"
    )


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_streaming_matches_trace_throughput(benchmark):
    """Streaming mode: same numbers, O(nodes) memory; time the fold."""
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = line(16)

    def run():
        engine = SimulationEngine(
            topology, AoptAlgorithm(params),
            TwoGroupDrift(EPSILON, list(range(8))), ConstantDelay(DELAY),
            150.0, record_trace=False,
        )
        return engine.run_streaming()

    result = benchmark(run)
    assert result.events_processed > 1000
    assert result.global_skew.value > 0
    benchmark.extra_info["events"] = result.events_processed


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_numpy_fastpath_cost(benchmark):
    """The vectorized evaluation: same exact answer, faster."""
    numpy = pytest.importorskip("numpy")
    from repro.analysis.fastpath import global_skew_fast

    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    trace = build_and_run(
        line(16), params, TwoGroupDrift(EPSILON, list(range(8))),
        ConstantDelay(DELAY), 150.0,
    )

    result = benchmark(global_skew_fast, trace)
    assert result.value == pytest.approx(trace.global_skew().value, abs=1e-9)
