"""E21 — substrate performance: event throughput of the simulator.

Not a paper claim — a harness property worth tracking: the discrete-event
engine's events/second determines which experiment scales are feasible.
Unlike the experiment benchmarks (deterministic, single-round), these run
multiple rounds for stable timing statistics.
"""

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import grid, line

EPSILON = 0.05
DELAY = 1.0


def build_and_run(topology, params, drift, delay, horizon):
    engine = SimulationEngine(topology, AoptAlgorithm(params), drift, delay, horizon)
    return engine.run()


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_throughput_line_constant(benchmark):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = line(16)

    def run():
        return build_and_run(
            topology, params, TwoGroupDrift(EPSILON, list(range(8))),
            ConstantDelay(DELAY), 150.0,
        )

    trace = benchmark(run)
    assert trace.events_processed > 1000
    benchmark.extra_info["events"] = trace.events_processed


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_throughput_grid_random(benchmark):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = grid(5, 5)

    def run():
        return build_and_run(
            topology, params,
            RandomWalkDrift(EPSILON, step_period=5.0, step_size=0.02, seed=1),
            UniformDelay(0.0, DELAY, seed=1), 100.0,
        )

    trace = benchmark(run)
    assert trace.events_processed > 1000
    benchmark.extra_info["events"] = trace.events_processed


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_exact_skew_evaluation_cost(benchmark):
    """The price of exactness: global-skew evaluation over all breakpoints."""
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    trace = build_and_run(
        line(16), params, TwoGroupDrift(EPSILON, list(range(8))),
        ConstantDelay(DELAY), 150.0,
    )

    result = benchmark(trace.global_skew)
    assert result.value > 0


@pytest.mark.benchmark(group="E21-engine-perf", min_rounds=3)
def test_numpy_fastpath_cost(benchmark):
    """The vectorized evaluation: same exact answer, faster."""
    numpy = pytest.importorskip("numpy")
    from repro.analysis.fastpath import global_skew_fast

    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    trace = build_and_run(
        line(16), params, TwoGroupDrift(EPSILON, list(range(8))),
        ConstantDelay(DELAY), 150.0,
    )

    result = benchmark(global_skew_fast, trace)
    assert result.value == pytest.approx(trace.global_skew().value, abs=1e-9)
