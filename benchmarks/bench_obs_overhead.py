"""E22 — observability overhead: metrics collection vs the bare engine.

Not a paper claim — a harness property the telemetry layer promises: with
``collect_metrics``/``record_events`` disabled the engine pays one ``is
None`` check per event, and enabling metrics only adds counter bumps (no
allocation per event beyond the event log when requested).  These
benchmarks pin the three modes side by side so a regression that drags
collection into the hot path shows up as a diverging group.
"""

import pytest

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0
HORIZON = 150.0


def build_and_run(collect_metrics=False, record_events=False):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    engine = SimulationEngine(
        line(16),
        AoptAlgorithm(params),
        TwoGroupDrift(EPSILON, list(range(8))),
        ConstantDelay(DELAY),
        HORIZON,
        collect_metrics=collect_metrics,
        record_events=record_events,
    )
    return engine.run()


@pytest.mark.benchmark(group="E22-obs-overhead", min_rounds=3)
def test_metrics_off_baseline(benchmark):
    trace = benchmark(build_and_run)
    assert trace.metrics is None and trace.event_log is None
    benchmark.extra_info["events"] = trace.events_processed


@pytest.mark.benchmark(group="E22-obs-overhead", min_rounds=3)
def test_metrics_on(benchmark):
    trace = benchmark(lambda: build_and_run(collect_metrics=True))
    assert trace.metrics.events_processed == trace.events_processed
    benchmark.extra_info["events"] = trace.events_processed


@pytest.mark.benchmark(group="E22-obs-overhead", min_rounds=3)
def test_metrics_and_event_log(benchmark):
    trace = benchmark(
        lambda: build_and_run(collect_metrics=True, record_events=True)
    )
    assert len(trace.event_log) > 0
    benchmark.extra_info["events"] = trace.events_processed
    benchmark.extra_info["log_records"] = len(trace.event_log)
