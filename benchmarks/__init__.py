"""Benchmark suite (pytest-benchmark) for the repro library.

Each ``bench_*.py`` module is a runnable experiment (see
``EXPERIMENTS.md``); this package file only exists so shared fixtures in
``conftest.py`` resolve.  There is no public API here.
"""

__all__ = []
