"""E11/E12/E13 — the §8 model variants.

* E11 (§8.3): delays in [T1, T2] — with T2−T1 held fixed, the steady-state
  skew should track the *uncertainty*, not the absolute delay, growing
  only by the O(ε·D·T1) reaction-time term as T1 rises.
* E12 (§8.5): external synchronization — clocks never ahead of real time,
  lag linear in the distance to the source.
* E13 (§8.4): discrete ticks — T is effectively replaced by
  max(1/f, T): coarse ticks dominate the skew, fine ticks vanish into it.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import PerNodeDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.variants import (
    BoundedDelayAoptAlgorithm,
    DiscreteAoptAlgorithm,
    ExternalAoptAlgorithm,
    bounded_delay_params,
    discrete_params,
)

EPSILON = 0.05
N = 9


@pytest.mark.benchmark(group="E11-bounded-delays")
def test_bounded_delay_skew_tracks_uncertainty(benchmark, report):
    uncertainty = 1.0
    drift = TwoGroupDrift(EPSILON, list(range(N // 2)))

    def experiment():
        rows = []
        for t1 in (0.0, 2.0, 8.0):
            t2 = t1 + uncertainty
            params = bounded_delay_params(EPSILON, t1, t2)
            channel = UniformDelay(t1, t2, seed=5, max_delay=t2)
            horizon = 150.0 + 30.0 * t2
            trace = run_execution(
                line(N),
                BoundedDelayAoptAlgorithm(params, min_delay=t1),
                drift,
                channel,
                horizon,
            )
            # Steady state: spread at the end (initialization transients
            # depend on t2·D and are excluded by construction).
            rows.append([t1, t2, trace.spread_at(horizon - 1.0)])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E11: §8.3 delays in [T1, T1+1] — steady-state spread vs T1",
        format_table(["T1", "T2", "steady-state spread"], rows),
    )
    spreads = [row[2] for row in rows]
    # An 8x larger absolute delay must NOT produce an 8x larger spread:
    # the skew tracks T2-T1 (fixed) plus the O(eps D T1) reaction term.
    reaction_allowance = 2 * EPSILON * (N - 1) * 8.0 + 2.0
    assert spreads[2] <= spreads[0] + reaction_allowance
    assert spreads[2] < 8 * max(spreads[0], 1.0)


@pytest.mark.benchmark(group="E12-external")
def test_external_sync_lag_linear_in_distance(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=1.0)
    drift = PerNodeDrift(EPSILON, {0: 1.0}, default=1 - EPSILON)

    def experiment():
        trace = run_execution(
            line(N),
            ExternalAoptAlgorithm(params, source=0),
            drift,
            UniformDelay(0.0, 1.0, seed=11),
            400.0,
            initiators=[0],
        )
        t = 399.0
        rows = []
        worst_ahead = float("-inf")
        for node in range(N):
            lag = t - trace.logical_value(node, t)
            worst_ahead = max(worst_ahead, -lag)
            rows.append([node, node, lag, node * 1.0])
        return rows, worst_ahead

    rows, worst_ahead = run_once(benchmark, experiment)
    report(
        "E12: §8.5 external sync — lag behind real time vs distance",
        format_table(["node", "d(v, source)", "lag", "d*T"], rows),
    )
    assert worst_ahead <= 1e-9  # L_v(t) <= t everywhere, always
    slack = 3 * params.h0 + params.kappa
    for _node, distance, lag, budget in rows:
        assert lag <= budget + slack


@pytest.mark.benchmark(group="E13-discrete")
def test_discrete_ticks_replace_delay_uncertainty(benchmark, report):
    delay_bound = 0.25
    drift = TwoGroupDrift(EPSILON, list(range(N // 2)))
    channel = ConstantDelay(delay_bound)

    def experiment():
        rows = []
        for frequency in (1.0, 4.0, 64.0):
            params = discrete_params(EPSILON, delay_bound, frequency=frequency)
            trace = run_execution(
                line(N),
                DiscreteAoptAlgorithm(params, frequency),
                drift,
                channel,
                250.0,
            )
            rows.append(
                [
                    frequency,
                    1.0 / frequency,
                    max(1.0 / frequency, delay_bound),
                    trace.local_skew().value,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E13: §8.4 discrete ticks — local skew vs tick size (T=0.25)",
        format_table(["f", "1/f", "max(1/f, T)", "local skew"], rows),
    )
    # Coarse ticks (1/f = 1 > T) dominate; finer ticks monotonically
    # approach the continuous behaviour.
    coarse, medium, fine = (row[3] for row in rows)
    assert fine <= medium + 1e-9
    assert medium <= coarse + 1e-9
    assert fine < 0.6 * coarse
