"""E5 — Theorem 7.2: the forced global skew (1 + ϱ)·D·T.

Runs the E3 drift-apart execution against A^opt for several diameters and
knowledge accuracies.  The measured skew must match the construction's
target (1 + ϱ)·D·T essentially exactly, and lie below the Theorem 5.5
upper bound — demonstrating that upper and lower bounds meet up to the
2ε/(1+ε)·H0 additive term.
"""

import pytest

from benchmarks.conftest import run_once
from repro.adversary.global_bound import run_global_lower_bound
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0


@pytest.mark.benchmark(group="E5-lower-global")
def test_forced_global_skew_vs_diameter(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)

    def experiment():
        rows = []
        for n in (5, 9, 17):
            result = run_global_lower_bound(
                line(n), AoptAlgorithm(params), EPSILON, DELAY
            )
            rows.append(
                [
                    n - 1,
                    result.forced_skew,
                    result.predicted,
                    global_skew_bound(params, n - 1),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E5: Theorem 7.2 forced global skew (exact knowledge, rho = -eps)",
        format_table(["D", "forced", "(1+rho)DT", "upper bound G"], rows),
    )
    for _d, forced, predicted, upper in rows:
        assert forced == pytest.approx(predicted, rel=1e-5)
        assert forced <= upper + 1e-7


@pytest.mark.benchmark(group="E5-lower-global")
def test_forced_skew_vs_knowledge_accuracy(benchmark, report):
    def experiment():
        rows = []
        # rho transitions from -eps to +eps as c1 crosses (1-eps)/(1+eps);
        # beyond that the penalty saturates (Theorem 7.2's min with eps).
        for c1 in (1.0, 0.97, 0.95, 0.92, 0.6):
            params = SyncParams.recommended(
                epsilon=EPSILON, delay_bound=DELAY, delay_bound_hat=DELAY / c1
            )
            result = run_global_lower_bound(
                line(9), AoptAlgorithm(params), EPSILON, DELAY, delay_ratio=c1
            )
            rows.append([c1, result.rho, result.forced_skew, result.theoretical])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E5b: forced global skew vs delay-knowledge accuracy c1 (D=8)",
        format_table(["c1 = T/T_hat", "rho used", "forced", "paper sup"], rows),
    )
    # Worse knowledge -> (weakly) more forced skew, approaching (1+eps)DT;
    # strict growth across the transition window, saturation afterwards.
    forced = [row[2] for row in rows]
    assert forced == sorted(forced)
    assert forced[-1] > forced[0]
    assert forced[-1] <= (1 + EPSILON) * 8 * DELAY + 1e-9
    # rho saturates at +eps once c1 <= (1-eps)/(1+eps).
    assert rows[-1][1] <= EPSILON
