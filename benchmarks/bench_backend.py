"""E29 — campaign backend overhead: serial vs process-pool vs work-queue.

Not a paper claim — a harness property the execution layer promises
(``docs/EXECUTION.md``): every backend produces byte-identical summaries,
so the only thing a backend choice buys or costs is dispatch overhead.
These benchmarks pin that overhead side by side on a fixed small batch —
the work-queue backend pays for spec/result files, lease arbitration,
and worker spawning, which is the price of surviving SIGKILLed workers.
A regression that drags queue bookkeeping into the per-spec path shows
up as a diverging group.
"""

import pickle
import shutil
import tempfile

import pytest

from benchmarks.conftest import bench_workers, run_once
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.exec import ExecutionSpec, SweepExecutor
from repro.exec.backend import WorkQueueBackend
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0
HORIZON = 30.0
N_SPECS = 8

PARAMS = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)


def batch():
    return [
        ExecutionSpec(
            line(4),
            AoptAlgorithm(PARAMS),
            TwoGroupDrift(EPSILON, [0, 1]),
            ConstantDelay(DELAY),
            HORIZON,
            seed=i,
            label=f"bench-backend-{i}",
        )
        for i in range(N_SPECS)
    ]


def run_with(backend):
    executor = SweepExecutor(workers=bench_workers(), backend=backend)
    summaries = executor.run_summaries(batch())
    return summaries, executor.last_metrics


@pytest.fixture(scope="module")
def serial_baseline():
    summaries, _ = run_with("serial")
    return pickle.dumps(summaries)


@pytest.mark.benchmark(group="E29-backend-overhead")
def test_serial_backend(benchmark, serial_baseline):
    summaries, metrics = run_once(benchmark, lambda: run_with("serial"))
    assert pickle.dumps(summaries) == serial_baseline
    benchmark.extra_info["specs"] = N_SPECS
    benchmark.extra_info["executed"] = metrics.executed


@pytest.mark.benchmark(group="E29-backend-overhead")
def test_process_pool_backend(benchmark, serial_baseline):
    summaries, metrics = run_once(benchmark, lambda: run_with("process-pool"))
    assert pickle.dumps(summaries) == serial_baseline
    benchmark.extra_info["specs"] = N_SPECS
    benchmark.extra_info["executed"] = metrics.executed


@pytest.mark.benchmark(group="E29-backend-overhead")
def test_work_queue_backend(benchmark, serial_baseline):
    # A fresh queue directory per timed round: reusing one would serve
    # results straight off disk and measure nothing but file reads.
    dirs = []

    def run():
        queue_dir = tempfile.mkdtemp(prefix="repro-bench-queue-")
        dirs.append(queue_dir)
        return run_with(WorkQueueBackend(queue_dir, workers=bench_workers()))

    try:
        summaries, metrics = run_once(benchmark, run)
        assert pickle.dumps(summaries) == serial_baseline
        assert metrics.lease_reclaims == 0
        assert metrics.unfinished == 0
        benchmark.extra_info["specs"] = N_SPECS
        benchmark.extra_info["attempts"] = metrics.attempts
    finally:
        for queue_dir in dirs:
            shutil.rmtree(queue_dir, ignore_errors=True)
