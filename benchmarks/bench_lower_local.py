"""E6 — Theorem 7.7: the iterative local-skew amplification.

Per-round table: the shifted execution must gain at least α·d·T per round
(Lemma 7.6), every round must be verified indistinguishable, and against
a weak corrector the retained skew compounds across rounds — the
mechanism behind the Ω(log_b D) lower bound.
"""

import pytest

from benchmarks.conftest import run_once
from repro.adversary.local_bound import amplification_base, run_skew_amplification
from repro.analysis.tables import format_table
from repro.baselines import MidpointAlgorithm
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams

EPSILON = 0.1
DELAY = 1.0


@pytest.mark.benchmark(group="E6-lower-local")
def test_amplification_rounds_against_aopt(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)

    def experiment():
        return run_skew_amplification(
            lambda: AoptAlgorithm(params),
            n=17,
            epsilon=EPSILON,
            delay_bound=DELAY,
            base=4,
            verify_indistinguishability=True,
        )

    result = run_once(benchmark, experiment)
    rows = [
        [
            r.index,
            r.distance,
            r.skew_before_shift,
            r.skew_after_shift,
            (1 - EPSILON) * r.distance * DELAY,
            bool(r.indistinguishable),
        ]
        for r in result.rounds
    ]
    report(
        "E6: Theorem 7.7 amplification vs A^opt (n=17, b=4)",
        format_table(
            ["round", "d", "skew E", "skew shifted", "alpha*d*T", "indist"], rows
        ),
    )
    assert all(r.indistinguishable for r in result.rounds)
    for r in result.rounds:
        gain = r.skew_after_shift - max(r.skew_before_shift, 0.0)
        assert gain >= (1 - EPSILON) * r.distance * DELAY - 1e-6
    assert result.rounds[-1].distance == 1


@pytest.mark.benchmark(group="E6-lower-local")
def test_amplification_compounds_against_weak_corrector(benchmark, report):
    """With μ too small relative to b, skew survives between rounds and the
    forced neighbor skew grows with the number of rounds — the log_b(D)
    effect in measurable form."""

    def experiment():
        rows = []
        for n, rounds_label in ((5, "1+1 rounds"), (17, "2+1 rounds"), (65, "3+1 rounds")):
            result = run_skew_amplification(
                lambda: MidpointAlgorithm(send_period=1.0, mu=0.12),
                n=n,
                epsilon=EPSILON,
                delay_bound=DELAY,
                base=4,
            )
            last = result.rounds[-1]
            rows.append([n - 1, rounds_label, len(result.rounds), last.skew_after_shift])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E6b: forced neighbor skew grows with log_b(D) (midpoint, mu=0.12)",
        format_table(["D", "schedule", "rounds", "forced neighbor skew"], rows),
    )
    forced = [row[3] for row in rows]
    assert forced == sorted(forced)
    assert forced[-1] > forced[0] + (1 - EPSILON) * DELAY  # grew by > alpha*T


@pytest.mark.benchmark(group="E6-lower-local")
def test_amplification_base_formula(benchmark, report):
    """The safe base b = ⌈2(β−α)/(αε)⌉ for representative rate bounds."""

    def experiment():
        rows = []
        for alpha, beta in ((0.9, 1.1), (0.9, 1.9), (0.99, 1.01)):
            rows.append([alpha, beta, amplification_base(alpha, beta, EPSILON)])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E6c: amplification base b per algorithm rate bounds (eps=0.1)",
        format_table(["alpha", "beta", "b"], rows),
    )
    assert rows[0][2] < rows[1][2]
