"""E8 — algorithm comparison: A^opt vs the literature baselines.

The paper's positioning (Sections 2 and 4.2):

* max-forwarding (Srikanth–Toueg style): asymptotically optimal *global*
  skew, but Θ(D) *local* skew in the worst case;
* midpoint chasing: no sublinear local-skew guarantee (§4.2);
* oblivious gradient (Locher–Wattenhofer '06): O(√(εD)) local skew;
* A^opt: O(log D) local skew (Theorem 5.10).

The Θ(D) weakness of max-forwarding is exhibited by the *delay-switch*
adversary: run a line with all delays at the maximum ``T`` so each node's
view of the maximum is ``d·T`` stale, then switch every edge except the
last to instantaneous delivery — the released "max wave" makes node
``D−1`` jump by ``Θ(D·T)`` while its blocked neighbor still holds the
stale value.  Rate-limited algorithms (A^opt) cannot jump and keep the
edge skew at ``O(κ log D)`` under the identical schedule.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.baselines import (
    MaxForwardAlgorithm,
    MidpointAlgorithm,
    ObliviousGradientAlgorithm,
)
from repro.baselines.oblivious_gradient import blocking_threshold
from repro.core.bounds import local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, FunctionDelay
from repro.sim.drift import PerNodeDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line, ring

EPSILON = 0.05
DELAY = 1.0


def delay_switch_model(n: int, t_switch: float) -> FunctionDelay:
    """All edges slow until ``t_switch``; then all but the last go fast."""
    blocked = n - 2

    def delay_fn(sender, receiver, send_time, seq):
        if receiver == sender + 1 and send_time >= t_switch and sender < blocked:
            return 0.0
        return DELAY

    return FunctionDelay(delay_fn, max_delay=DELAY)


def algorithms(params, diameter):
    return [
        ("aopt", lambda: AoptAlgorithm(params)),
        ("max-forward", lambda: MaxForwardAlgorithm(send_period=params.h0)),
        ("midpoint", lambda: MidpointAlgorithm(send_period=params.h0, mu=params.mu)),
        (
            "oblivious-grad",
            lambda: ObliviousGradientAlgorithm(
                params, blocking_threshold(params, diameter)
            ),
        ),
    ]


@pytest.mark.benchmark(group="E8-baselines")
def test_local_skew_under_delay_switch(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    sizes = (9, 17, 33)

    def experiment():
        table = {}
        for n in sizes:
            t_switch = 20.0 * n
            drift = PerNodeDrift(EPSILON, {0: 1 + EPSILON}, default=1 - EPSILON)
            for name, factory in algorithms(params, n - 1):
                trace = run_execution(
                    line(n), factory(), drift, delay_switch_model(n, t_switch),
                    t_switch + 50.0,
                )
                table[(name, n)] = trace.local_skew().value
        rows = []
        for name, _factory in algorithms(params, 4):
            rows.append([name] + [table[(name, n)] for n in sizes])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E8: worst neighbor skew under the delay-switch adversary (line)",
        format_table(["algorithm", "D=8", "D=16", "D=32"], rows),
    )
    values = {row[0]: row[1:] for row in rows}
    # Max-forward: local skew ~ D*T (linear growth: x4 diameter -> ~x4 skew).
    assert values["max-forward"][2] > 3 * values["max-forward"][0]
    assert values["max-forward"][2] > 0.8 * 32 * DELAY
    # A^opt: flat in D and within Theorem 5.10's bound.
    assert values["aopt"][2] <= values["aopt"][0] + params.kappa
    assert values["aopt"][2] <= local_skew_bound(params, 32) + 1e-7
    # A^opt beats every baseline at the largest diameter.
    for name in ("max-forward", "midpoint", "oblivious-grad"):
        assert values["aopt"][2] <= values[name][2] + 1e-9


@pytest.mark.benchmark(group="E8-baselines")
def test_global_skew_all_bounded(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)

    def experiment():
        topology = ring(16)
        drift = TwoGroupDrift(EPSILON, list(range(8)))
        delay = ConstantDelay(DELAY)
        rows = []
        for name, factory in algorithms(params, 8):
            trace = run_execution(topology, factory(), drift, delay, 400.0)
            rows.append(
                [name, trace.global_skew().value, trace.total_messages()]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E8b: global skew and message cost on ring-16 (two-group drift)",
        format_table(["algorithm", "global skew", "messages"], rows),
    )
    free_running_growth = 2 * EPSILON * 400.0
    for _name, global_skew, _messages in rows:
        assert global_skew < free_running_growth
