"""E26 — scale validation: the bounds at D = 64 and on a 100-node graph.

The other experiments keep topologies small for fast iteration; this one
checks that nothing changes at larger scale: the Theorem 5.5 equality
persists at D = 64, Theorem 5.10's bound still holds with a widening
measured-to-bound gap (log growth of the bound, flat measurements), and a
100-node random graph behaves like its diameter predicts.

Both scale checks run through the sweep executor (`repro.exec`), so
``REPRO_BENCH_WORKERS=auto`` parallelizes them; the final benchmark
measures that speedup directly (workers=1 vs workers=4 over the same
spec batch) and asserts byte-identical results.  The ≥2× speedup
assertion only applies on machines with at least 4 CPUs — on smaller
runners the timing table is recorded as informational.
"""

import os
import pickle
import time

import pytest

from benchmarks.conftest import bench_workers, run_once
from repro.analysis.experiments import suite_specs
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.exec import ExecutionSpec, SweepExecutor
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.topology.generators import line, random_connected
from repro.topology.properties import diameter

EPSILON = 0.05
DELAY = 1.0


@pytest.mark.benchmark(group="E26-scale")
def test_line_64(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    n = 65
    d = n - 1

    def experiment():
        spec = ExecutionSpec(
            line(n),
            AoptAlgorithm(params),
            TwoGroupDrift(EPSILON, list(range(n // 2))),
            ConstantDelay(DELAY),
            horizon=500.0,
            label="line-64/two-group",
        )
        (summary,) = SweepExecutor(workers=bench_workers()).run_summaries([spec])
        return [
            [
                d,
                summary.global_skew,
                global_skew_bound(params, d),
                summary.local_skew,
                local_skew_bound(params, d),
                summary.total_messages,
            ]
        ]

    rows = run_once(benchmark, experiment)
    report(
        "E26: scale check — 65-node line, two-group adversary",
        format_table(
            ["D", "global", "G", "local", "local bound", "messages"], rows
        ),
    )
    (row,) = rows
    assert row[1] <= row[2] + 1e-7
    assert row[1] >= 0.95 * row[2]  # still essentially achieved
    assert row[3] <= row[4] + 1e-7


@pytest.mark.benchmark(group="E26-scale")
def test_random_100_nodes(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = random_connected(100, 0.03, seed=6)
    d = diameter(topology)

    def experiment():
        spec = ExecutionSpec(
            topology,
            AoptAlgorithm(params),
            RandomWalkDrift(EPSILON, step_period=8.0, step_size=EPSILON / 2, seed=6),
            UniformDelay(0.0, DELAY, seed=6),
            horizon=300.0,
            seed=6,
            label="random-100",
        )
        (summary,) = SweepExecutor(workers=bench_workers()).run_summaries([spec])
        return [
            [
                topology.name,
                len(topology),
                d,
                summary.global_skew,
                global_skew_bound(params, d),
                summary.local_skew,
                local_skew_bound(params, d),
            ]
        ]

    rows = run_once(benchmark, experiment)
    report(
        "E26b: scale check — 100-node random graph, random schedules",
        format_table(
            ["graph", "n", "D", "global", "G", "local", "local bound"], rows
        ),
    )
    (row,) = rows
    assert row[3] <= row[4] + 1e-7
    assert row[5] <= row[6] + 1e-7


@pytest.mark.slow
@pytest.mark.benchmark(group="E26-scale")
def test_line_100k_streaming(benchmark, report):
    """The streaming engine at true scale: a 100 000-node line, end to
    end, with peak-RSS sampling.  Trace mode refuses this size (the
    node cap); streaming mode folds the exact extrema in
    O(nodes + edges) memory.  Slow-marked: ~2 min under tracemalloc
    and ~0.4 GB of tracked allocations."""
    import tracemalloc

    from repro.sim.runner import run_execution_streaming
    from repro.topology.generators import line as line_topology

    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    n = 100_000
    topology = line_topology(n)

    def experiment():
        tracemalloc.start()
        try:
            started = time.perf_counter()
            result = run_execution_streaming(
                topology,
                AoptAlgorithm(params),
                TwoGroupDrift(EPSILON, list(range(n // 2))),
                ConstantDelay(DELAY),
                6.0,
                initiators=topology.nodes,
            )
            wall = time.perf_counter() - started
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return [
            [
                n,
                result.events_processed,
                round(result.global_skew.value, 6),
                round(result.local_skew.value, 6),
                round(wall, 1),
                round(peak / 1e6),
            ]
        ]

    rows = run_once(benchmark, experiment)
    report(
        "E26d: streaming engine at scale — 100k-node line, exact skew "
        "extrema without a trace",
        format_table(
            ["nodes", "events", "global", "local", "wall s", "peak MB"], rows
        ),
    )
    (row,) = rows
    assert row[1] > 1_000_000
    assert row[2] > 0.0
    assert row[5] < 1_200, f"peak allocations {row[5]} MB exceed the 1.2 GB bound"


@pytest.mark.slow
@pytest.mark.benchmark(group="E26-scale")
def test_parallel_sweep_speedup(benchmark, report):
    """Acceptance check: the standard adversary sweep on line(33) runs
    ≥2× faster with workers=4 than workers=1 on a ≥4-core runner, with
    byte-identical summaries.  On smaller machines the speedup line is
    recorded but not asserted (there is nothing to parallelize onto)."""
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    specs = suite_specs(line(33), lambda: AoptAlgorithm(params), params)
    cpus = os.cpu_count() or 1

    def timed_sweep(workers):
        start = time.perf_counter()
        summaries = SweepExecutor(workers=workers).run_summaries(specs)
        return time.perf_counter() - start, summaries

    def experiment():
        serial_wall, serial = timed_sweep(1)
        parallel_wall, parallel = timed_sweep(4)
        assert pickle.dumps(serial) == pickle.dumps(parallel)
        return [
            [
                len(specs),
                cpus,
                round(serial_wall, 3),
                round(parallel_wall, 3),
                round(serial_wall / parallel_wall, 2),
            ]
        ]

    rows = run_once(benchmark, experiment)
    report(
        "E26c: sweep executor speedup — workers=4 vs workers=1, line(33) "
        "adversary suite (byte-identical results)",
        format_table(
            ["specs", "cpus", "serial s", "parallel s", "speedup"], rows
        ),
    )
    (row,) = rows
    if cpus >= 4:
        assert row[4] >= 2.0, f"expected >=2x speedup on {cpus} cpus, got {row[4]}x"
