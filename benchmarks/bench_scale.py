"""E26 — scale validation: the bounds at D = 64 and on a 100-node graph.

The other experiments keep topologies small for fast iteration; this one
checks that nothing changes at larger scale: the Theorem 5.5 equality
persists at D = 64, Theorem 5.10's bound still holds with a widening
measured-to-bound gap (log growth of the bound, flat measurements), and a
100-node random graph behaves like its diameter predicts.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line, random_connected
from repro.topology.properties import diameter

EPSILON = 0.05
DELAY = 1.0


@pytest.mark.benchmark(group="E26-scale")
def test_line_64(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    n = 65
    d = n - 1

    def experiment():
        trace = run_execution(
            line(n),
            AoptAlgorithm(params),
            TwoGroupDrift(EPSILON, list(range(n // 2))),
            ConstantDelay(DELAY),
            horizon=500.0,
        )
        return [
            [
                d,
                trace.global_skew().value,
                global_skew_bound(params, d),
                trace.local_skew().value,
                local_skew_bound(params, d),
                trace.total_messages(),
            ]
        ]

    rows = run_once(benchmark, experiment)
    report(
        "E26: scale check — 65-node line, two-group adversary",
        format_table(
            ["D", "global", "G", "local", "local bound", "messages"], rows
        ),
    )
    (row,) = rows
    assert row[1] <= row[2] + 1e-7
    assert row[1] >= 0.95 * row[2]  # still essentially achieved
    assert row[3] <= row[4] + 1e-7


@pytest.mark.benchmark(group="E26-scale")
def test_random_100_nodes(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topology = random_connected(100, 0.03, seed=6)
    d = diameter(topology)

    def experiment():
        trace = run_execution(
            topology,
            AoptAlgorithm(params),
            RandomWalkDrift(EPSILON, step_period=8.0, step_size=EPSILON / 2, seed=6),
            UniformDelay(0.0, DELAY, seed=6),
            horizon=300.0,
        )
        return [
            [
                topology.name,
                len(topology),
                d,
                trace.global_skew().value,
                global_skew_bound(params, d),
                trace.local_skew().value,
                local_skew_bound(params, d),
            ]
        ]

    rows = run_once(benchmark, experiment)
    report(
        "E26b: scale check — 100-node random graph, random schedules",
        format_table(
            ["graph", "n", "D", "global", "G", "local", "local bound"], rows
        ),
    )
    (row,) = rows
    assert row[3] <= row[4] + 1e-7
    assert row[5] <= row[6] + 1e-7
