"""E17 — §7.3 / Theorem 7.12: unbounded rates do not help.

Lemma 7.10 lets the adversary unnoticeably slow one node so that its
clock at time ``t`` shows the value it had at ``t − φT/(1+ε)``; whatever
logical progress the node made in that window reappears as neighbor skew.
The benchmark measures this "rate capture" on the two regimes:

* a jumping algorithm (max-forwarding, β = ∞): its large catch-up jump is
  converted essentially 1:1 into exposed neighbor skew;
* A^opt and its §5.3 jump variant under the same framing: the smooth
  variant exposes at most ``β·φT/(1+ε)`` while the jump variant exposes
  its (bounded-by-design) jumps.
"""

import pytest

from benchmarks.conftest import run_once
from repro.adversary.unbounded_rates import (
    find_largest_jump,
    phi_for_epsilon,
    run_rate_capture,
)
from repro.analysis.tables import format_table
from repro.baselines import MaxForwardAlgorithm
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.rates import PiecewiseConstantRate
from repro.topology.generators import line

EPSILON = 0.1
DELAY = 1.0
N = 9
T_SWITCH = 60.0


def phi_framed_setup():
    phi = phi_for_epsilon(EPSILON)
    blocked = N - 2

    def base_delay(sender, receiver, send_time, seq):
        low, high = phi * DELAY, (1 - phi) * DELAY
        if receiver == sender + 1 and send_time >= T_SWITCH and sender < blocked:
            return low
        return high

    schedules = {
        u: PiecewiseConstantRate.constant(1 + EPSILON if u == 0 else 1.0)
        for u in range(N)
    }
    return schedules, base_delay, phi, blocked


@pytest.mark.benchmark(group="E17-unbounded-rates")
def test_rate_capture_by_algorithm(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    schedules, base_delay, phi, blocked = phi_framed_setup()
    window = phi * DELAY / (1 + EPSILON)

    def experiment():
        rows = []
        # -- jumping algorithm: aim at its largest jump -------------------
        factory = lambda: MaxForwardAlgorithm(send_period=params.h0)
        probe = run_rate_capture(
            line(N), factory, schedules, base_delay, DELAY, EPSILON,
            victim=blocked, t_eval=T_SWITCH + 10.0,
            verify_indistinguishability=False,
        )
        victim, jump_time, jump_size = find_largest_jump(
            probe.base_trace, after=T_SWITCH
        )
        aimed = run_rate_capture(
            line(N), factory, schedules, base_delay, DELAY, EPSILON,
            victim=victim, t_eval=jump_time + window / 2,
        )
        rows.append(
            [
                "max-forward",
                jump_size,
                aimed.base_progress,
                aimed.forced_skew,
                bool(aimed.indistinguishable),
            ]
        )
        # -- rate-bounded A^opt: exposure capped by beta * window ---------
        result = run_rate_capture(
            line(N), lambda: AoptAlgorithm(params), schedules, base_delay,
            DELAY, EPSILON, victim=blocked, t_eval=T_SWITCH + 10.0,
        )
        rows.append(
            [
                "aopt",
                0.0,
                result.base_progress,
                result.forced_skew,
                bool(result.indistinguishable),
            ]
        )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E17: Lemma 7.10 rate capture — erased progress becomes local skew",
        format_table(
            ["algorithm", "largest jump", "erased progress", "forced skew", "indist"],
            rows,
        ),
    )
    jump_row, aopt_row = rows
    assert jump_row[4] and aopt_row[4]  # indistinguishable in both cases
    # The jump is erased wholesale and shows up as neighbor skew.
    assert jump_row[2] >= jump_row[1] - 1e-6
    assert jump_row[3] >= 0.8 * jump_row[1]
    # A^opt's exposure stays within its rate bound over the window.
    assert aopt_row[2] <= params.beta * window + 1e-9
    # Clear separation between the two regimes (A^opt's residual skew is
    # the pre-existing blocked-edge transient, not a lemma exposure).
    assert jump_row[3] > 2.5 * aopt_row[3]
