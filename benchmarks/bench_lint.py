"""Performance guard for the whole-program lint pass (docs/LINT.md).

``make check`` runs the linter twice (``lint`` + ``lint-cold``), so the
analyzer's cost is on the critical path of every CI run.  This bench
times a cold full-repo analysis against an incremental re-lint after a
one-file touch and enforces the smoke floor from ISSUE 9: the
incremental run must stay interactive (< 1s) — the per-file work is
cache hits and only the whole-program pass re-runs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.lint import lint_paths, load_baseline

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGETS = [REPO_ROOT / "src", REPO_ROOT / "benchmarks"]

#: Smoke floor: an incremental re-lint after touching one file must
#: finish within this budget (seconds) for `make lint` to stay cheap.
INCREMENTAL_BUDGET_S = 1.0


def test_incremental_relint_meets_smoke_floor(tmp_path):
    cache = tmp_path / "lint-cache.json"
    baseline = load_baseline(REPO_ROOT / ".reprolint-baseline.json")

    start = time.perf_counter()
    cold = lint_paths(
        TARGETS, baseline=baseline, root=REPO_ROOT, cache_path=cache
    )
    cold_seconds = time.perf_counter() - start
    assert cold.ok, "\n".join(f.format_text() for f in cold.findings)
    assert cold.files_reanalyzed == cold.files_checked

    # Simulate a one-file touch: evict one entry, exactly what a
    # content change's sha mismatch would do.
    payload = json.loads(cache.read_text())
    victim = sorted(payload["files"])[0]
    del payload["files"][victim]
    cache.write_text(json.dumps(payload))

    start = time.perf_counter()
    warm = lint_paths(
        TARGETS, baseline=baseline, root=REPO_ROOT, cache_path=cache
    )
    warm_seconds = time.perf_counter() - start
    assert warm.ok
    assert warm.files_reanalyzed == 1
    assert warm.files_checked == cold.files_checked

    assert warm_seconds < INCREMENTAL_BUDGET_S, (
        f"incremental re-lint took {warm_seconds:.2f}s "
        f"(budget {INCREMENTAL_BUDGET_S:.1f}s; cold was {cold_seconds:.2f}s)"
    )
    print(
        f"lint: cold {cold_seconds * 1000.0:.0f}ms, "
        f"incremental after 1-file touch {warm_seconds * 1000.0:.0f}ms "
        f"({cold.files_checked} files)"
    )
