"""E24 — extension: merging independently synchronized networks.

Two halves of a line run as separate networks — the bridge edge is held
out of the topology by a :class:`~repro.topology.dynamic.TopologySchedule`
(``edge_appears`` at the join time), the first-class dynamic-graph model
that replaced the old ``TimeGatedDelay`` message-dropping workaround.
While separated, the halves' maxima drift apart at ``2ε`` per unit time.
When the bridge appears, §4.2's first-message integration kicks in: the
larger ``L^max`` floods across, the slow half catches up at rate
``≈ μ``, and the merged system settles under the connected-graph bound.
The benchmark sweeps the join time (hence the accumulated divergence)
and reports settle times against the ``gap/((1−ε)μ)`` prediction.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.analysis.timeseries import convergence_time, spread_series
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay
from repro.sim.drift import PerNodeDrift
from repro.sim.engine import SimulationEngine
from repro.topology.dynamic import TopologySchedule
from repro.topology.generators import line

pytestmark = pytest.mark.dynamic

EPSILON = 0.05
DELAY = 1.0
N = 8
BRIDGE = (3, 4)


@pytest.mark.benchmark(group="E24-network-merge")
def test_merge_settle_time_vs_divergence(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    bound = global_skew_bound(params, N - 1)

    def run_one(join_time):
        drift = PerNodeDrift(
            EPSILON, {u: 1 + EPSILON for u in range(4)}, default=1 - EPSILON
        )
        schedule = TopologySchedule().edge_appears(*BRIDGE, at=join_time)
        horizon = join_time + 250.0
        engine = SimulationEngine(
            line(N), AoptAlgorithm(params), drift, ConstantDelay(DELAY),
            horizon, initiators=[0, 7], topology_schedule=schedule,
        )
        trace = engine.run()
        gap = trace.spread_at(join_time)
        series = spread_series(trace, join_time, horizon, samples=400)
        settle = convergence_time(series, threshold=bound)
        return gap, settle, join_time

    def experiment():
        rows = []
        for join_time in (40.0, 80.0, 160.0):
            gap, settle, t_join = run_one(join_time)
            predicted = gap / ((1 - EPSILON) * params.mu) + DELAY * N
            rows.append(
                [t_join, gap, settle - t_join if settle is not None else None,
                 predicted]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E24 (extension): network merge — settle time vs divergence",
        format_table(
            ["join time", "gap at join", "settle after join", "gap/((1-eps)mu)+DT"],
            rows,
        ),
    )
    for _join, gap, settle_delta, predicted in rows:
        assert settle_delta is not None
        assert settle_delta <= predicted + 25.0
    # Larger divergence takes proportionally longer to reconcile.
    deltas = [row[2] for row in rows]
    assert deltas == sorted(deltas)
    assert deltas[-1] > deltas[0]
