"""E3 — end of §5: larger μ enlarges the base σ ∈ Θ(μ/ε) of the logarithm.

Sweeping μ (via the σ target) at fixed ε and D: the local-skew *bound*
shrinks in its log depth while β grows; the measured local skew under a
fixed adversary must respect every bound.  This is the paper's trade-off
between clock-rate smoothness and achievable local skew.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_adversary_suite, standard_adversaries
from repro.analysis.tables import format_table
from repro.core.bounds import legal_state_levels, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology.generators import line

EPSILON = 0.02
DELAY = 1.0
N = 17


@pytest.mark.benchmark(group="E3-mu-sweep")
def test_sigma_depth_tradeoff(benchmark, report):
    def experiment():
        rows = []
        for sigma_target in (2, 4, 8, 16):
            params = SyncParams.recommended(
                epsilon=EPSILON, delay_bound=DELAY, sigma_target=sigma_target
            )
            result = run_adversary_suite(
                line(N), lambda: AoptAlgorithm(params), params
            )
            rows.append(
                [
                    params.mu,
                    params.sigma,
                    params.beta,
                    legal_state_levels(params, N - 1),
                    result.worst_local,
                    local_skew_bound(params, N - 1),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E3: mu sweep — base sigma vs log depth vs beta (D=16)",
        format_table(
            ["mu", "sigma", "beta", "levels s_max", "worst local", "bound"], rows
        ),
    )
    # sigma grows with mu; the level count (log depth) never increases.
    sigmas = [row[1] for row in rows]
    assert sigmas == sorted(sigmas) and sigmas[-1] > sigmas[0]
    levels = [row[3] for row in rows]
    assert all(b <= a for a, b in zip(levels, levels[1:]))
    # beta (max logical rate) is the price paid.
    betas = [row[2] for row in rows]
    assert betas == sorted(betas)
    for row in rows:
        assert row[4] <= row[5] + 1e-7
