"""E18 — Lemma 5.7's dynamics: skew is corrected at rate ≈ (1 − ε)·μ.

Perturb-and-recover: the adversary builds up global skew with two-group
drift for a warm-up phase, then all clocks return to rate 1 and delays
drop to (near) zero.  Lagging nodes catch up at logical rate
``(1 + μ)·h`` against leaders at ``h``, so the spread must decay at slope
``≈ μ`` (within the ``(1 − ε)···(1 + ε)`` drift window) — the measurable
content of Lemma 5.7's ``(1 − ε)·μ`` bound.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.analysis.timeseries import convergence_time, recovery_rate, spread_series
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import FunctionDelay
from repro.sim.drift import ExplicitDrift
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.runner import run_execution
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0
N = 9
WARMUP = 120.0


@pytest.mark.benchmark(group="E18-convergence")
def test_recovery_rate_matches_mu(benchmark, report):
    def experiment():
        rows = []
        for sigma_target in (2, 4, 8):
            params = SyncParams.recommended(
                epsilon=EPSILON, delay_bound=DELAY, sigma_target=sigma_target
            )
            # Warm-up: halves drift apart; then all rates 1.
            schedules = {
                u: PiecewiseConstantRate(
                    [0.0, WARMUP],
                    [1 + EPSILON if u < N // 2 else 1 - EPSILON, 1.0],
                )
                for u in range(N)
            }
            drift = ExplicitDrift(EPSILON, schedules)
            delay = FunctionDelay(
                lambda s, r, t, q: DELAY if t < WARMUP else 0.01,
                max_delay=DELAY,
            )
            horizon = WARMUP + 60.0
            trace = run_execution(
                line(N), AoptAlgorithm(params), drift, delay, horizon
            )
            series = spread_series(trace, WARMUP, horizon, samples=400)
            slope = recovery_rate(series, floor=0.0)
            settle = convergence_time(series, threshold=params.kappa / 2)
            rows.append(
                [
                    params.mu,
                    slope,
                    (1 - EPSILON) * params.mu,
                    (1 + EPSILON) * (1 + params.mu) - (1 - EPSILON),
                    settle is not None,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E18: spread recovery slope vs Lemma 5.7's (1-eps)*mu",
        format_table(
            ["mu", "measured slope", "(1-eps)mu", "max possible", "settles"],
            rows,
        ),
    )
    for mu, slope, lower, upper, settles in rows:
        assert settles
        # Measured decay at least the Lemma 5.7 rate, at most the
        # physically possible rate difference.
        assert slope >= lower * 0.9
        assert slope <= upper + 1e-9
    # Larger mu recovers faster.
    slopes = [row[1] for row in rows]
    assert slopes == sorted(slopes)
