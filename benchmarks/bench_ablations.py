"""E16 — ablations: why each design choice of A^opt is there.

* Removing the ``L^max`` cap of Algorithm 3 line 2 breaks the real-time
  envelope (Condition (1)): the measured envelope margin goes positive
  and grows with the horizon.
* Removing eager ``L^max`` forwarding (Algorithm 2 line 3) slows
  information transport from one-hop-per-delay to one-hop-per-``H0`` and
  measurably degrades the global skew.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.metrics import check_envelope
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, ZeroDelay
from repro.sim.drift import PerNodeDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.variants.ablations import LazyForwardAopt, NoMaxCapAopt

EPSILON = 0.05
DELAY = 1.0
N = 9


@pytest.mark.benchmark(group="E16-ablations")
def test_no_max_cap_breaks_envelope(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    drift = TwoGroupDrift(EPSILON, list(range(N // 2)))
    delay = ZeroDelay(max_delay=DELAY)

    def experiment():
        rows = []
        for horizon in (50.0, 100.0, 200.0):
            broken = run_execution(
                line(N), NoMaxCapAopt(params), drift, delay, horizon
            )
            intact = run_execution(
                line(N), AoptAlgorithm(params), drift, delay, horizon
            )
            rows.append(
                [
                    horizon,
                    check_envelope(broken, EPSILON),
                    check_envelope(intact, EPSILON),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E16: removing the L^max cap — envelope margin (positive = broken)",
        format_table(
            ["horizon", "no-cap margin", "A^opt margin"], rows
        ),
    )
    margins = [row[1] for row in rows]
    # The ablated algorithm's violation exists and grows with the horizon.
    assert margins[0] > 0.1
    assert margins[-1] > 2 * margins[0]
    # Intact A^opt never violates.
    assert all(row[2] <= 1e-7 for row in rows)


@pytest.mark.benchmark(group="E16-ablations")
def test_lazy_forwarding_degrades_global_skew(benchmark, report):
    # Large H0 makes the transport slowdown visible.
    base = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    params = SyncParams.recommended(
        epsilon=EPSILON, delay_bound=DELAY, h0=base.h0 * 4
    )
    drift = PerNodeDrift(EPSILON, {0: 1 + EPSILON}, default=1 - EPSILON)
    delay = ConstantDelay(DELAY)
    horizon = 400.0

    def experiment():
        eager = run_execution(
            line(N), AoptAlgorithm(params), drift, delay, horizon
        )
        lazy = run_execution(
            line(N), LazyForwardAopt(params), drift, delay, horizon
        )
        probe = horizon - 1.0
        return [
            ["eager forward (A^opt)", eager.spread_at(probe),
             global_skew_bound(params, N - 1)],
            ["lazy forward (ablated)", lazy.spread_at(probe),
             global_skew_bound(params, N - 1)],
        ]

    rows = run_once(benchmark, experiment)
    report(
        "E16b: removing eager forwarding — steady-state spread (H0 x4)",
        format_table(["variant", "steady spread", "plain bound G"], rows),
    )
    eager_spread, lazy_spread = rows[0][1], rows[1][1]
    assert lazy_spread > eager_spread * 1.2
    # Eager A^opt stays within its bound.
    assert eager_spread <= rows[0][2] + 1e-7
