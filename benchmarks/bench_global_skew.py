"""E1 — Theorem 5.5: global skew vs the bound G = (1+ε)DT + 2ε/(1+ε)H0.

Sweeps the line diameter under the standard adversary suite; on every
topology the worst measured global skew must stay below G, and the
two-group adversary is expected to come within a few percent of it
(the bound is essentially achieved, matching the matching lower bound
of Theorem 7.2).
"""

import pytest

from benchmarks.conftest import bench_workers, run_once
from repro.analysis.experiments import run_adversary_suite
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology.generators import grid, line, ring
from repro.topology.properties import diameter

EPSILON = 0.05
DELAY = 1.0


@pytest.mark.benchmark(group="E1-global-skew")
def test_global_skew_vs_diameter_line(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)

    def experiment():
        rows = []
        for n in (5, 9, 17, 33):
            topology = line(n)
            result = run_adversary_suite(
                topology, lambda: AoptAlgorithm(params), params,
                workers=bench_workers(),
            )
            bound = global_skew_bound(params, n - 1)
            rows.append(
                [
                    n - 1,
                    result.worst_global,
                    bound,
                    result.worst_global / bound,
                    result.worst_global_case,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E1: global skew vs diameter (line), Theorem 5.5",
        format_table(["D", "worst measured", "bound G", "ratio", "worst case"], rows),
    )
    for _, measured, bound, ratio, _case in rows:
        assert measured <= bound + 1e-7
    # The bound is essentially tight: the suite reaches >= 80% of G.
    assert all(row[3] >= 0.8 for row in rows)
    # Linear growth in D: measured skew roughly scales with the bound.
    assert rows[-1][1] > 3 * rows[0][1]


@pytest.mark.benchmark(group="E1-global-skew")
def test_global_skew_other_topologies(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topologies = [ring(16), grid(4, 4)]

    def experiment():
        rows = []
        for topology in topologies:
            d = diameter(topology)
            result = run_adversary_suite(
                topology, lambda: AoptAlgorithm(params), params,
                workers=bench_workers(),
            )
            bound = global_skew_bound(params, d)
            rows.append([topology.name, d, result.worst_global, bound])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E1b: global skew on ring and grid",
        format_table(["topology", "D", "worst measured", "bound G"], rows),
    )
    for _name, _d, measured, bound in rows:
        assert measured <= bound + 1e-7
