"""E10 — §6.2: constant-size messages preserve the skew bounds.

Compares plain A^opt (two 64-bit floats per message) against the
bit-budget variant (progress deltas + capped L^max increments) under the
same adversary: steady-state messages must cost O(log 1/μ) bits — here a
single-digit count — while global and local skew stay within ~the plain
algorithm's, and within the (slack-adjusted) bounds.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.complexity import bit_stats
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.variants import BitBudgetAoptAlgorithm, bit_budget_params

EPSILON = 0.05
DELAY = 1.0
N = 13


@pytest.mark.benchmark(group="E10-bits")
def test_bit_budget_vs_plain(benchmark, report):
    plain_params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    budget_params = bit_budget_params(EPSILON, DELAY)
    drift = TwoGroupDrift(EPSILON, list(range(N // 2)))
    delay = ConstantDelay(DELAY)
    horizon = 300.0

    def experiment():
        rows = []
        plain = run_execution(
            line(N), AoptAlgorithm(plain_params), drift, delay, horizon,
            record_messages=True,
        )
        stats = bit_stats(plain)
        rows.append(
            [
                "plain A^opt",
                stats.mean_bits_per_message,
                stats.max_message_bits,
                plain.global_skew().value,
                plain.local_skew().value,
            ]
        )
        algo = BitBudgetAoptAlgorithm(budget_params)
        budget = run_execution(
            line(N), algo, drift, delay, horizon, record_messages=True
        )
        stats = bit_stats(budget)
        steady = [m.size_bits for m in budget.message_log if m.payload[0] == "delta"]
        rows.append(
            [
                "bit-budget (§6.2)",
                stats.mean_bits_per_message,
                max(steady),
                budget.global_skew().value,
                budget.local_skew().value,
            ]
        )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E10: bit complexity — plain vs §6.2 encoding (line of 13)",
        format_table(
            ["algorithm", "mean bits/msg", "steady max bits", "global", "local"],
            rows,
        ),
    )
    plain_row, budget_row = rows
    assert budget_row[2] <= 16  # constant-size steady state
    assert plain_row[2] == 128
    assert budget_row[1] < plain_row[1] / 8  # order-of-magnitude saving
    # Skews preserved within the enlarged-kappa bounds.
    assert budget_row[3] <= global_skew_bound(budget_params, N - 1) + 1e-7
    assert budget_row[4] <= local_skew_bound(budget_params, N - 1) + 1e-7
