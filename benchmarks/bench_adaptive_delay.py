"""E23 — §8.1: synchronizing without knowing the delay bound.

The adaptive variant starts with a deliberately tiny delay estimate,
measures round trips, and floods doubled announcements until the working
``T̂`` upper-bounds the real delays.  The benchmark tracks: convergence of
``T̂`` to ``O(T)``, the resulting adaptive ``κ`` versus the
perfect-knowledge one, the steady-state skew against the matching bound,
and the logarithmic announcement overhead.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import UniformDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line
from repro.variants.adaptive_delay import AdaptiveDelayAoptAlgorithm

EPSILON = 0.05
DELAY = 1.0
N = 9
HORIZON = 400.0


@pytest.mark.benchmark(group="E23-adaptive-delay")
def test_unknown_delay_bound(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)

    def run_one(algorithm):
        engine = SimulationEngine(
            line(N),
            algorithm,
            TwoGroupDrift(EPSILON, list(range(N // 2))),
            UniformDelay(0.2, DELAY, seed=4),
            HORIZON,
        )
        trace = engine.run()
        return engine, trace

    def experiment():
        rows = []
        _, oracle_trace = run_one(AoptAlgorithm(params))
        rows.append(
            [
                "known T (oracle)",
                DELAY,
                params.kappa,
                oracle_trace.spread_at(HORIZON - 1),
                oracle_trace.total_messages(),
            ]
        )
        adaptive = AdaptiveDelayAoptAlgorithm(params, initial_estimate=0.01)
        engine, trace = run_one(adaptive)
        state = engine.node_state(N // 2)
        rows.append(
            [
                "unknown T (§8.1)",
                state._delay_estimate,
                state.current_kappa(),
                trace.spread_at(HORIZON - 1),
                trace.total_messages(),
            ]
        )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E23: §8.1 adaptive delay bound — oracle vs measured T-hat",
        format_table(
            ["knowledge", "T-hat", "kappa", "steady spread", "messages"], rows
        ),
    )
    oracle, adaptive = rows
    # The estimate converged into [T, 2T(1+eps)/(1-eps)].
    assert DELAY <= adaptive[1] <= 2 * DELAY * (1 + EPSILON) / (1 - EPSILON) + 1e-9
    # Steady-state spread within the bound implied by the adaptive kappa's
    # delay estimate (conservative: the estimate over-covers T).
    implied = global_skew_bound(
        params.with_overrides(
            delay_bound=adaptive[1], delay_bound_hat=adaptive[1]
        ),
        N - 1,
    )
    assert adaptive[3] <= implied + 1e-7
    # Ack overhead costs about 2x the oracle's messages, not more.
    assert adaptive[4] <= 3 * oracle[4]
