"""Shared infrastructure for the benchmark suite.

Each benchmark runs one experiment from the DESIGN.md index (E1-E15),
asserts the paper's *shape* claims, and registers a plain-text results
table that is printed in the terminal summary, so

    pytest benchmarks/ --benchmark-only

produces the full paper-vs-measured report.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest

_REPORTS: List[Tuple[str, str]] = []


def bench_workers():
    """Worker count for benchmark sweeps.

    Defaults to 1 (serial — timings comparable across machines); set
    ``REPRO_BENCH_WORKERS=auto`` or ``=N`` to fan sweeps out across a
    process pool.  Results are byte-identical either way.
    """
    from repro.exec import resolve_workers

    return resolve_workers(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture
def report():
    """Register a results table for the end-of-run summary."""

    def _register(title: str, table_text: str) -> None:
        _REPORTS.append((title, table_text))

    return _register


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "experiment results (paper vs measured)")
    for title, table in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations: a single round gives
    the exact result, and wall-clock timing is informational only.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
