"""E27 — robustness extension: fault injection and recovery.

The paper's model assumes ever-live nodes and reliable links (Section 3).
This experiment partitions a line network for increasingly long windows
(the two halves drift apart at relative rate ``2ε`` while separated) and
measures (a) how far the global skew degrades and (b) how long after the
partition heals the spread takes to re-enter the Theorem 5.5 bound
``G = (1+ε)·D·T + 2ε/(1+ε)·H0`` — the *time-to-resynchronize*.

Expected shape: degradation is graceful (peak skew grows roughly like
``G + 2ε·duration``, never collapsing), and recovery is complete — the
recovery-aware variant re-enters ``G`` after every partition, with a
recovery window roughly proportional to the accumulated excess skew.

A second sweep runs random crash/recover cycles at increasing crash
rates through the recovery-aware variant ``aopt-ft``.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.faults import FaultSchedule, time_to_resync
from repro.sim.delays import ConstantDelay
from repro.sim.drift import RandomWalkDrift, TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.variants.fault_tolerant import FaultTolerantAoptAlgorithm

pytestmark = pytest.mark.faults

EPSILON = 0.02
DELAY = 1.0
N = 9
FAULT_START = 100.0

#: The steady-state spread of the two-group execution brushes the tight
#: bound G exactly; judge resynchronization with a hair of relative slack
#: so the metric is well conditioned (see repro.faults.metrics).
BOUND_SLACK = 1 + 1e-6


def _partition_run(params, duration, algorithm_factory, horizon):
    topology = line(N)
    cut_edge = (N // 2 - 1, N // 2)
    drift = TwoGroupDrift(EPSILON, list(range(N // 2)))
    schedule = FaultSchedule()
    if duration > 0:
        schedule.link_down(*cut_edge, at=FAULT_START, until=FAULT_START + duration)
    trace = run_execution(
        topology,
        algorithm_factory(params),
        drift,
        ConstantDelay(DELAY, max_delay=DELAY),
        horizon,
        faults=schedule,
    )
    return trace, schedule


@pytest.mark.benchmark(group="E27-fault-degradation")
def test_partition_recovery(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    bound = global_skew_bound(params, N - 1)
    durations = (0.0, 50.0, 100.0, 200.0)
    horizon = 700.0

    def experiment():
        rows = []
        for duration in durations:
            for name, factory in (
                ("aopt", AoptAlgorithm),
                ("aopt-ft", FaultTolerantAoptAlgorithm),
            ):
                trace, schedule = _partition_run(params, duration, factory, horizon)
                ttr = time_to_resync(
                    trace,
                    bound * BOUND_SLACK,
                    clear_time=FAULT_START + duration,
                    schedule=schedule,
                )
                rows.append([duration, name, trace.global_skew().value, ttr])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E27 (extension): partition duration vs peak skew and time-to-resync "
        f"(line of {N}, bound G={bound:.4f})",
        format_table(["partition", "algorithm", "peak global skew", "ttr"], rows),
    )

    by_key = {(duration, name): (peak, ttr) for duration, name, peak, ttr in rows}
    for duration in durations:
        for name in ("aopt", "aopt-ft"):
            peak, ttr = by_key[(duration, name)]
            # Recovery is complete at every duration: the spread re-enters
            # G within the horizon, and the window after the longest
            # partition is finite and measured.
            assert ttr is not None, f"{name} did not resync after {duration}"
            # Graceful degradation: the peak stays within the bound plus
            # the skew physically accumulated while partitioned (the two
            # halves diverge at relative rate 2eps; allow kappa of
            # gradient-rule slack on top).
            assert peak <= bound + 2 * EPSILON * duration + params.kappa
        # Unfaulted runs respect the plain bound outright.
        peak_clean, ttr_clean = by_key[(0.0, "aopt")]
        assert peak_clean <= bound + 1e-7
        assert ttr_clean == 0.0
    # Monotone degradation: a longer partition never costs less peak skew.
    for name in ("aopt", "aopt-ft"):
        peaks = [by_key[(duration, name)][0] for duration in durations]
        assert peaks == sorted(peaks)
    # The recovery window scales with the damage: resyncing after the
    # longest partition takes longer than after the shortest non-zero one.
    assert by_key[(200.0, "aopt-ft")][1] > by_key[(50.0, "aopt-ft")][1]


@pytest.mark.benchmark(group="E27-fault-degradation")
def test_crash_cycle_degradation(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    bound = global_skew_bound(params, N - 1)
    horizon = 400.0
    topology = line(N)
    drift = RandomWalkDrift(
        EPSILON, step_period=5 * params.h0, step_size=EPSILON / 4, seed=11
    )

    def experiment():
        rows = []
        for crash_rate in (0.0, 0.005, 0.02):
            if crash_rate == 0.0:
                schedule = FaultSchedule()
            else:
                schedule = FaultSchedule.random_crash_cycles(
                    topology.nodes,
                    crash_rate=crash_rate,
                    mean_downtime=4 * params.h0,
                    horizon=horizon - 100.0,
                    start=FAULT_START,
                    seed=5,
                )
            trace = run_execution(
                topology,
                FaultTolerantAoptAlgorithm(params),
                drift,
                ConstantDelay(DELAY, max_delay=DELAY),
                horizon,
                faults=schedule,
            )
            ttr = time_to_resync(
                trace, bound * BOUND_SLACK, clear_time=schedule.cleared_time()
            )
            crashes = sum(
                1 for _, _, kind in schedule.node_events if kind == "crash"
            )
            rows.append(
                [crash_rate, crashes, trace.global_skew().value,
                 trace.messages_lost_crash, ttr]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        f"E27 (extension): crash-cycle rate vs skew (aopt-ft, line of {N})",
        format_table(
            ["crash rate", "crashes", "peak global skew", "lost to crash", "ttr"],
            rows,
        ),
    )
    free_running = 2 * EPSILON * horizon
    for crash_rate, crashes, peak, lost, ttr in rows:
        assert (crash_rate == 0.0) == (crashes == 0)
        # Still synchronizing: nowhere near free-running divergence.
        assert peak < free_running
        # Every run settles back under the bound after the faults clear.
        assert ttr is not None
    assert rows[0][3] == 0  # no crashes, nothing lost to crashes
    assert rows[-1][3] > 0  # crash cycles actually cost messages
