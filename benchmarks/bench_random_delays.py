"""E20 — worst-case vs typical: the random-delay regime of §2.

The paper's bounds are worst-case; its related-work section notes that
with *random* (rather than adversarial) delays much better behaviour is
possible (Lenzen–Sommer–Wattenhofer 2009b: ``Õ(√D)`` w.h.p.).  This
benchmark quantifies the gap on our substrate: a Monte-Carlo sweep of
i.i.d.-uniform delays and random-walk drift concentrates far below the
worst case, which E1 shows the two-group adversary actually achieves.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.montecarlo import run_monte_carlo, summarize_samples
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import UniformDelay
from repro.sim.drift import RandomWalkDrift
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0


@pytest.mark.benchmark(group="E20-random-delays")
def test_random_vs_worst_case_gap(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)

    def experiment():
        rows = []
        for n in (9, 17, 33):
            samples = run_monte_carlo(
                line(n),
                lambda: AoptAlgorithm(params),
                lambda seed: RandomWalkDrift(
                    EPSILON, step_period=5.0, step_size=EPSILON / 2, seed=seed
                ),
                lambda seed: UniformDelay(0.0, DELAY, seed=seed),
                horizon=60.0 + 6.0 * n,
                runs=12,
            )
            summary = summarize_samples(samples, "global_skew")
            bound = global_skew_bound(params, n - 1)
            rows.append(
                [n - 1, summary.median, summary.p90, summary.maximum, bound,
                 summary.median / bound]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E20: global skew under random delays (12 seeds) vs worst-case G",
        format_table(
            ["D", "median", "p90", "max", "worst-case G", "median/G"], rows
        ),
    )
    for _d, median, p90, maximum, bound, ratio in rows:
        assert maximum <= bound + 1e-7  # worst case still a valid bound
        assert ratio < 0.8  # typical skew well below the worst case
    # The typical-to-worst gap widens with D (sub-linear typical growth).
    ratios = [row[5] for row in rows]
    assert ratios[-1] <= ratios[0] + 0.05
