"""Re-measure the engine-perf baseline JSON against the *current* tree.

The committed baseline (``benchmarks/baselines/engine_perf_baseline.json``)
records wall times of the pre-fast-path engine (the "seed", commit
``67a9370``) on the perf-smoke workloads.  ``benchmarks/bench_perf_smoke.py``
asserts the current engine beats those times by the per-workload speedup
floors.

To regenerate on new hardware, measure the seed tree — not this one::

    git archive 67a9370 src | tar -x -C /tmp/seedtree
    PYTHONPATH=/tmp/seedtree/src python benchmarks/record_engine_baseline.py \
        --output benchmarks/baselines/engine_perf_baseline.json

Running it against the current tree instead produces a self-baseline
(every speedup ~1.0x), which is only useful for sanity-checking the
measurement loop — don't commit that.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.exec.summary import summarize_trace
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line

__all__ = ["WORKLOADS", "ROUNDS", "run_workload", "measure"]

#: The perf-smoke workloads: line topologies under two-group drift with a
#: constant delay, end to end (run + exact skew summary).  ``min_speedup``
#: is the floor ``bench_perf_smoke.py`` enforces against the recorded seed wall.
WORKLOADS = [
    # ``smoke: False`` workloads are covered by the bench_engine_perf
    # speedup curve but skipped by `make perf-smoke` (kept tiny).
    {"name": "small", "nodes": 16, "horizon": 150.0, "min_speedup": 2.0, "smoke": True},
    {"name": "mid", "nodes": 64, "horizon": 600.0, "min_speedup": 5.0, "smoke": True},
    {"name": "large", "nodes": 96, "horizon": 600.0, "min_speedup": 5.0, "smoke": False},
]

ROUNDS = 5  # first round is warm-up; the minimum of the rest is recorded


def run_workload(nodes: int, horizon: float):
    """One end-to-end run: engine + exact skew summary; returns (s, events)."""
    params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
    engine = SimulationEngine(
        line(nodes),
        AoptAlgorithm(params),
        TwoGroupDrift(0.05, list(range(nodes // 2))),
        ConstantDelay(1.0),
        horizon,
    )
    started = time.perf_counter()
    trace = engine.run()
    summarize_trace(trace)
    return time.perf_counter() - started, trace.events_processed


def measure(nodes: int, horizon: float):
    walls = []
    events = 0
    for _ in range(ROUNDS):
        wall, events = run_workload(nodes, horizon)
        walls.append(wall)
    return min(walls[1:]), events


def _main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).parent / "baselines" / "engine_perf_baseline.json",
    )
    args = parser.parse_args()

    workloads = []
    for spec in WORKLOADS:
        wall, events = measure(spec["nodes"], spec["horizon"])
        workloads.append({**spec, "seed_wall_seconds": wall, "events": events})
        print(
            f"{spec['name']}: n={spec['nodes']} horizon={spec['horizon']} "
            f"wall={wall:.3f}s events={events}"
        )

    payload = {
        "comment": (
            "Seed-engine wall times for bench_perf_smoke.py; regenerate per the "
            "module docstring of record_engine_baseline.py (measure the "
            "seed tree, not the current one)."
        ),
        "seed_commit": "67a9370",
        "rounds": ROUNDS,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": workloads,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    _main()
