"""E15 — §6.1's minimum-send-gap variant: the frequency/skew trade-off.

The variant enforces at least ``H0`` of hardware time between sends,
bounding the burst message frequency; §6.1 predicts the price is an extra
``Θ(ε·D·H0)`` of global skew because estimates now travel one hop per
``H0``.  Sweeping H0 shows both sides of the trade.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line
from repro.variants import MinGapAoptAlgorithm

EPSILON = 0.05
DELAY = 1.0
N = 13


@pytest.mark.benchmark(group="E15-min-gap")
def test_min_gap_tradeoff(benchmark, report):
    base = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    drift = TwoGroupDrift(EPSILON, list(range(N // 2)))
    delay = ConstantDelay(DELAY)
    horizon = 400.0

    def experiment():
        rows = []
        plain = run_execution(
            line(N), AoptAlgorithm(base), drift, delay, horizon
        )
        rows.append(
            ["plain", base.h0, plain.total_messages(), plain.global_skew().value]
        )
        for factor in (1.0, 4.0, 8.0):
            params = SyncParams.recommended(
                epsilon=EPSILON, delay_bound=DELAY, h0=base.h0 * factor
            )
            trace = run_execution(
                line(N), MinGapAoptAlgorithm(params), drift, delay, horizon
            )
            rows.append(
                [
                    f"min-gap x{factor:g}",
                    params.h0,
                    trace.total_messages(),
                    trace.global_skew().value,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E15: §6.1 minimum send gap — messages vs global skew (line of 13)",
        format_table(["variant", "H0", "messages", "global skew"], rows),
    )
    # The gap caps bursts: message counts fall as H0 grows.
    gap_rows = rows[1:]
    messages = [row[2] for row in gap_rows]
    assert messages == sorted(messages, reverse=True)
    # Skew degrades by O(eps D H0): bounded by the predicted allowance.
    for _name, h0, _messages, global_skew in gap_rows:
        allowance = global_skew_bound(base, N - 1) + 4 * EPSILON * (N - 1) * h0
        assert global_skew <= allowance
