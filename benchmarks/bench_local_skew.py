"""E2 — Theorem 5.10: local skew stays below κ(⌈log_σ(2G/κ)⌉ + ½).

Two views:

* upper-bound check: under the adversary suite, the measured local skew
  must stay below the bound at every diameter, while the bound itself
  grows logarithmically (adding at most κ per doubling of D);
* forced-skew check: the Theorem 7.7 amplification adversary must force a
  local skew of at least α·T, and the gap between forced and bound stays
  within the κ/T factor the paper proves (constant-factor optimality,
  Corollary 7.8).
"""

import pytest

from benchmarks.conftest import bench_workers, run_once
from repro.adversary.local_bound import run_skew_amplification
from repro.analysis.experiments import run_adversary_suite
from repro.analysis.tables import format_table
from repro.core.bounds import local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0


@pytest.mark.benchmark(group="E2-local-skew")
def test_local_skew_upper_bound_vs_diameter(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)

    def experiment():
        rows = []
        for n in (5, 9, 17, 33):
            result = run_adversary_suite(
                line(n), lambda: AoptAlgorithm(params), params,
                workers=bench_workers(),
            )
            bound = local_skew_bound(params, n - 1)
            rows.append([n - 1, result.worst_local, bound, result.worst_local_case])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E2: local skew vs diameter (line), Theorem 5.10",
        format_table(["D", "worst measured", "bound", "worst case"], rows),
    )
    for _d, measured, bound, _case in rows:
        assert measured <= bound + 1e-7
    # Logarithmic bound growth: each doubling adds at most one kappa.
    bounds = [row[2] for row in rows]
    for a, b in zip(bounds, bounds[1:]):
        assert b - a <= params.kappa + 1e-9
    # Measured local skew does NOT grow linearly with D (contrast E8's
    # baselines): x8 diameter gains less than x3 local skew.
    assert rows[-1][1] <= 3 * rows[0][1]


@pytest.mark.benchmark(group="E2-local-skew")
def test_local_skew_forced_by_amplification(benchmark, report):
    epsilon = 0.1
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=DELAY)

    def experiment():
        rows = []
        for n in (5, 17):
            result = run_skew_amplification(
                lambda: AoptAlgorithm(params),
                n=n,
                epsilon=epsilon,
                delay_bound=DELAY,
                base=4,
            )
            last = result.rounds[-1]
            rows.append(
                [
                    n - 1,
                    last.skew_after_shift,
                    (1 - epsilon) * DELAY,
                    local_skew_bound(params, n - 1),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E2b: neighbor skew forced by the Theorem 7.7 adversary",
        format_table(["D", "forced skew", "alpha*T", "Thm 5.10 bound"], rows),
    )
    for _d, forced, floor, bound in rows:
        assert forced >= floor - 1e-6  # the lower bound bites
        assert forced <= bound + 1e-6  # and the upper bound holds
