"""E9 — Corollary 5.3: the envelope and rate-bound conditions always hold.

Exact (breakpoint-complete) verification of Conditions (1) and (2) across
the full adversary suite on three topologies — margins must be
non-positive everywhere, and the observed logical rates must actually use
the allowed range (the boost 1+μ is exercised, not just permitted).
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_adversary_suite
from repro.analysis.metrics import check_envelope, check_rate_bounds
from repro.analysis.tables import format_table
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology.generators import grid, line, ring

EPSILON = 0.05
DELAY = 1.0


@pytest.mark.benchmark(group="E9-envelope")
def test_envelope_and_rate_conditions(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    topologies = [line(9), ring(10), grid(3, 3)]

    def experiment():
        rows = []
        for topology in topologies:
            suite = run_adversary_suite(
                topology, lambda: AoptAlgorithm(params), params, keep_traces=True
            )
            worst_envelope = float("-inf")
            worst_rate = float("-inf")
            boost_used = False
            for trace in suite.traces.values():
                worst_envelope = max(
                    worst_envelope, check_envelope(trace, EPSILON)
                )
                worst_rate = max(
                    worst_rate, check_rate_bounds(trace, params.alpha, params.beta)
                )
                boost_used = boost_used or any(
                    record.multiplier_at(t) > 1.0
                    for record in trace.logical.values()
                    for t in (
                        trace.horizon * 0.25,
                        trace.horizon * 0.5,
                        trace.horizon * 0.75,
                    )
                )
            rows.append([topology.name, worst_envelope, worst_rate, boost_used])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E9: envelope (Cond 1) and rate (Cond 2) margins — negative = OK",
        format_table(
            ["topology", "envelope margin", "rate margin", "boost exercised"], rows
        ),
    )
    for _name, envelope_margin, rate_margin, boost_used in rows:
        assert envelope_margin <= 1e-7
        assert rate_margin <= 1e-7
        assert boost_used
