"""Perf smoke: the fast-path engine must beat the recorded seed baseline.

``baselines/engine_perf_baseline.json`` stores end-to-end wall times of
the pre-fast-path engine (see ``record_engine_baseline.py`` for the
regeneration recipe).  Each test here re-runs one workload on the current
tree and asserts the speedup floor recorded alongside the baseline —
2x on the small config, 5x on the mid config, the PR-6 acceptance bar.
(Workloads flagged ``"smoke": false`` — the large config — are covered
by the ``bench_engine_perf`` speedup curve instead, keeping this target
fast.)

Run via ``make perf-smoke``.  These are plain tests (no ``benchmark``
fixture), so ``make bench``'s ``--benchmark-only`` sweep skips them; they
are also excluded from tier-1, which only collects ``tests/``.

A failure means either a genuine engine regression or a baseline recorded
on different hardware — compare ``events`` in the JSON against the
current run before blaming the engine.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.record_engine_baseline import measure

__all__ = []  # pytest module, nothing to export

BASELINE_PATH = Path(__file__).parent / "baselines" / "engine_perf_baseline.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

pytestmark = pytest.mark.perf_smoke


SMOKE_WORKLOADS = [w for w in BASELINE["workloads"] if w["smoke"]]


@pytest.mark.parametrize(
    "workload", SMOKE_WORKLOADS, ids=[w["name"] for w in SMOKE_WORKLOADS]
)
def test_speedup_vs_seed_baseline(workload):
    wall, events = measure(workload["nodes"], workload["horizon"])
    # Identical workload check: the event count is deterministic, so a
    # mismatch means the baseline was recorded for a different scenario
    # (or the engine changed behavior — which parity tests catch first).
    assert events == workload["events"], (
        f"{workload['name']}: event count {events} != baseline "
        f"{workload['events']} — baseline and workload are out of sync"
    )
    speedup = workload["seed_wall_seconds"] / wall
    assert speedup >= workload["min_speedup"], (
        f"{workload['name']} (n={workload['nodes']}, "
        f"horizon={workload['horizon']}): {speedup:.2f}x vs seed "
        f"(wall {wall:.3f}s, seed {workload['seed_wall_seconds']:.3f}s) "
        f"is below the {workload['min_speedup']}x floor"
    )
