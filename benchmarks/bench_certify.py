"""E28 — certification margin trends.

The certifier reports *margins to the bound*, not just pass/fail; this
experiment tracks how those margins behave as the system grows and as
the fuzzer explores, answering two questions the pass/fail view hides:

1. **Diameter trend** — under the near-worst-case adversary (two-group
   drift at full ε, constant delays at the bound ``T``) on lines of
   growing diameter, how much of Theorem 5.5's ``G`` does A^opt actually
   use?  Expected shape: Theorem 5.5's margin is *zero* at every
   diameter — this schedule is exactly the Theorem 7.2 worst case, and
   A^opt meets ``G`` to the last float — while Theorem 5.10's absolute
   margin grows with ``D`` (its worst case needs the antiphase
   amplification schedule of Theorem 7.7, not a static two-group cut).

2. **Campaign stability** — across independent fuzz campaigns (different
   seeds, mixed topologies/adversaries), the worst margin stays
   positive and the margin distribution is stable; a drifting p50 or a
   collapsing min between seeds would flag a model or certifier
   regression long before an outright violation.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.cert import CERTIFICATES, CertScenario, certify
from repro.cert.certificates import TOLERANCE

pytestmark = pytest.mark.cert

EPSILON = 0.05
DELAY = 1.0
DIAMETERS = (2, 4, 8, 16, 32)
CAMPAIGN_SEEDS = (0, 1, 2)
CAMPAIGN_BUDGET = 12


def _worst_case_scenario(diameter: int) -> CertScenario:
    return CertScenario(
        topology_kind="line",
        nodes=diameter + 1,
        algorithm="aopt",
        epsilon=EPSILON,
        delay_bound=DELAY,
        horizon=60.0 + 4.0 * diameter,
        seed=0,
        drift_kind="two-group",
        delay_kind="constant",
    )


@pytest.mark.benchmark(group="E28-cert-margins")
def test_margin_trend_with_diameter(benchmark, report):
    certificates = [
        CERTIFICATES["thm-5.5-global-skew"],
        CERTIFICATES["thm-5.10-local-skew"],
    ]

    def experiment():
        rows = []
        for diameter in DIAMETERS:
            scenario = _worst_case_scenario(diameter)
            summary = scenario.build_spec().run_summary()
            params = scenario.build_params()
            for certificate in certificates:
                verdict = certificate.check_summary(summary, params, diameter)
                rows.append([
                    diameter,
                    certificate.name,
                    verdict.measured,
                    verdict.bound,
                    verdict.margin,
                    verdict.margin / verdict.bound,
                ])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E28: margin to bound vs diameter (two-group drift at full eps, "
        f"constant delay T={DELAY}, line topologies)",
        format_table(
            ["D", "certificate", "measured", "bound", "margin", "relative"],
            rows,
        ),
    )

    by_cert = {}
    for diameter, name, measured, bound, margin, relative in rows:
        assert margin >= -TOLERANCE, f"{name} violated at D={diameter}"
        by_cert.setdefault(name, []).append((diameter, margin, relative))
    # Theorem 5.5 is exactly tight under this schedule: the two-group
    # drift with delays pinned at T is the Theorem 7.2 worst case, and
    # the realized global skew meets G up to float noise at every D.
    for _, margin, relative in by_cert["thm-5.5-global-skew"]:
        assert abs(relative) <= 1e-9, f"5.5 no longer tight: margin {margin}"
    # Theorem 5.10's adversary is a different schedule (Theorem 7.7's
    # antiphase amplification); under two-group drift its absolute slack
    # grows with the system and never collapses.
    local_margins = [m for _, m, _ in by_cert["thm-5.10-local-skew"]]
    assert local_margins == sorted(local_margins), "5.10 margin shrank with D"
    assert local_margins[0] > 0


@pytest.mark.benchmark(group="E28-cert-margins")
def test_campaign_margin_stability(benchmark, report):
    def experiment():
        rows = []
        for seed in CAMPAIGN_SEEDS:
            campaign = certify(
                budget=CAMPAIGN_BUDGET,
                seed=seed,
                include_faults=False,
                shrink=False,
            )
            assert campaign.clean, f"seed {seed} campaign found a violation"
            for name in sorted(campaign.stats):
                stat = campaign.stats[name]
                pct = stat.margin_percentiles()
                if pct is None:
                    continue
                rows.append([
                    seed, name, stat.checks, pct["min"], pct["p50"], pct["p95"]
                ])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        f"E28: fuzz-campaign margin percentiles across seeds "
        f"(budget {CAMPAIGN_BUDGET} per seed, faultless)",
        format_table(
            ["seed", "certificate", "checks", "min", "p50", "p95"], rows
        ),
    )
    for _, name, _, minimum, p50, _ in rows:
        assert minimum >= -TOLERANCE, f"{name}: margin went negative"
        assert p50 > 0, f"{name}: median margin not positive"
