"""E31 — Byzantine degradation: skew vs fraction of lying neighbors.

The Byzantine model (docs/FAULTS.md) lets a scheduled node corrupt every
estimate it sends — per-message mode and depth drawn from the
order-independent message hash, lies bounded inside
``magnitude · [1/4, 1]`` below truth.  On a star the attack is maximally
concentrated: a slow Byzantine leaf feeds the hub stale estimates, the
hub stops believing it is behind the fast leaves, and the whole system's
spread is dragged past the certified bound ``G + kappa``.

This sweep raises the number of Byzantine leaves on a star of 9 (hub
degree 8, so the < 1/3 rule tolerates two liars) and compares plain
``aopt`` against the per-neighbor-filtering ``ftgcs``.  Expected shape:
``aopt`` degrades by multiples of the bound as soon as a single liar
appears, while ``ftgcs`` holds its Byzantine skew certificate across the
whole tolerated range — the differential-survival asymmetry
(``repro certify --byzantine --differential``) shown as a curve.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.faults import FaultSchedule
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import star
from repro.variants import FtgcsAlgorithm, ftgcs_rejection_window

pytestmark = pytest.mark.byzantine

#: Short send period + high drift develops the attack inside a modest
#: horizon: corruption only bites once the victim's coasting estimate of
#: the liar falls behind truth by the lie depth (see tests/test_faults).
EPSILON = 0.1
DELAY = 0.5
N = 9
ATTACK_START = 5.0
HORIZON = 250.0


def _attacked_skew(params, window, count, algorithm):
    topology = star(N)
    schedule = FaultSchedule(seed=7, byzantine_magnitude=6.0 * window)
    for node in topology.nodes[1:1 + count]:
        schedule.byzantine(node, at=ATTACK_START)
    trace = run_execution(
        topology,
        algorithm,
        TwoGroupDrift(EPSILON, topology.nodes[N // 2:]),
        ConstantDelay(DELAY, max_delay=DELAY),
        HORIZON,
        faults=schedule,
    )
    # Settled spread: the transient start-up and the acceptance ramp are
    # over well before the final 100 time units.
    return trace.global_skew(HORIZON - 100.0, HORIZON).value


@pytest.mark.benchmark(group="E31-byzantine-degradation")
def test_skew_vs_byzantine_fraction(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    window = ftgcs_rejection_window(params, 2)
    bound = global_skew_bound(params, 2) + params.kappa
    counts = (0, 1, 2)  # hub degree 8 tolerates (8-1)//3 = 2 liars

    def experiment():
        rows = []
        for count in counts:
            exposed = _attacked_skew(
                params, window, count, AoptAlgorithm(params)
            )
            filtered = _attacked_skew(
                params, window, count, FtgcsAlgorithm(params, window)
            )
            rows.append([count, count / (N - 1), exposed, filtered])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E31: Byzantine leaves vs settled global skew on a star of "
        f"{N} (certificate bound G+kappa={bound:.4f})",
        format_table(
            ["liars", "fraction", "aopt skew", "ftgcs skew"], rows
        ),
    )

    by_count = {count: (exposed, filtered) for count, _, exposed, filtered in rows}
    # Fault-free the variants are equally tight and both certified.
    exposed0, filtered0 = by_count[0]
    assert exposed0 <= bound and filtered0 <= bound
    # One liar already drags the unfiltered variant far past its
    # certificate, and more liars never help it.
    exposed_curve = [by_count[count][0] for count in counts]
    assert exposed_curve[1] > 2 * bound
    assert exposed_curve == sorted(exposed_curve)
    # ftgcs holds its Byzantine certificate across the tolerated range —
    # the filter pins the curve flat at the honest steady state.
    for count in counts:
        assert by_count[count][1] <= bound, (
            f"ftgcs exceeded its certificate with {count} liars"
        )
        assert by_count[count][1] <= filtered0 + params.kappa
