"""E19 — robustness extension: graceful degradation under message loss.

The paper's model assumes reliable links (Section 3).  This extension
study drops each message independently with probability ``p`` and sweeps
``p``: A^opt keeps synchronizing because all of its state is refreshed by
later messages — losing a message only delays information, so the skew
should degrade smoothly (roughly like the effective delay stretched by
the expected retry count ``1/(1−p)``), not collapse.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay, LossyDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line

EPSILON = 0.05
DELAY = 1.0
N = 9


@pytest.mark.benchmark(group="E19-message-loss")
def test_skew_vs_loss_rate(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    drift = TwoGroupDrift(EPSILON, list(range(N // 2)))
    horizon = 400.0

    def experiment():
        rows = []
        for loss in (0.0, 0.1, 0.3, 0.5):
            channel = LossyDelay(ConstantDelay(DELAY), loss=loss, seed=13)
            trace = run_execution(
                line(N), AoptAlgorithm(params), drift, channel, horizon
            )
            rows.append(
                [
                    loss,
                    trace.messages_dropped,
                    trace.global_skew().value,
                    trace.local_skew().value,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E19 (extension): skew vs message loss rate (line of 9)",
        format_table(["loss p", "dropped", "global skew", "local skew"], rows),
    )
    free_running = 2 * EPSILON * horizon
    baseline_global = rows[0][2]
    for loss, dropped, global_skew, _local in rows:
        assert (loss == 0.0) == (dropped == 0)
        # Still synchronizing at every loss rate.
        assert global_skew < free_running
    # Graceful: at 50% loss the skew stays within the retry-stretched
    # bound (effective delay roughly doubles).
    stretched = global_skew_bound(
        params.with_overrides(
            delay_bound=2 * DELAY, delay_bound_hat=2 * DELAY
        ),
        N - 1,
    )
    assert rows[-1][2] <= stretched + 2 * params.kappa
    # And the zero-loss run respects the plain bound.
    assert baseline_global <= global_skew_bound(params, N - 1) + 1e-7
