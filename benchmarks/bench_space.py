"""E22 — §6.3 space complexity.

Measures the §6.3 state encoding for every node at the end of adversarial
executions and compares against the closed-form budget
``O(log fT + log μD + Δ(log 1/μ + log εμD + log log_{μ/ε} D))``:
the encoded size must stay below the budget (with unit constants a small
multiple suffices), grow with the node degree Δ, and grow only
logarithmically with the diameter D.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.complexity import encoded_state_bits, space_estimate_bits
from repro.analysis.tables import format_table
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import ConstantDelay
from repro.sim.drift import TwoGroupDrift
from repro.sim.engine import SimulationEngine
from repro.topology.generators import line, star

EPSILON = 0.05
DELAY = 1.0


def run_and_measure(topology, params, horizon=150.0):
    engine = SimulationEngine(
        topology,
        AoptAlgorithm(params),
        TwoGroupDrift(EPSILON, topology.nodes[: len(topology) // 2]),
        ConstantDelay(DELAY),
        horizon,
    )
    trace = engine.run()
    worst = 0
    for node in topology.nodes:
        state = engine.node_state(node)
        bits = encoded_state_bits(
            state,
            params,
            trace.hardware_value(node, horizon),
            trace.logical_value(node, horizon),
        )
        worst = max(worst, bits)
    return worst


@pytest.mark.benchmark(group="E22-space")
def test_state_bits_vs_budget(benchmark, report):
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    frequency = 100.0

    def experiment():
        rows = []
        for topology, degree in ((line(9), 2), (line(33), 2), (star(9), 8)):
            from repro.topology.properties import diameter

            d = diameter(topology)
            measured = run_and_measure(topology, params)
            budget = space_estimate_bits(params, d, degree, frequency)
            rows.append([topology.name, d, degree, measured, budget])
        return rows

    rows = run_once(benchmark, experiment)
    report(
        "E22: §6.3 state size — measured encoding vs closed-form budget",
        format_table(
            ["topology", "D", "max degree", "measured bits", "budget (unit consts)"],
            rows,
        ),
    )
    line9, line33, star9 = rows
    # Diameter x4 adds only O(log) bits.
    assert line33[3] - line9[3] <= 8
    # Degree dominates: the star's hub needs ~Delta x the line's per-node bits.
    assert star9[3] > line9[3]
    # Measured stays within a small multiple of the unit-constant budget.
    for _name, _d, _deg, measured, budget in rows:
        assert measured <= 4 * budget
