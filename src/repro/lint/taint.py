"""Interprocedural taint propagation over the reprolint call graph.

A function is *tainted* when it contains a direct nondeterminism source
(:class:`~repro.lint.graph.SourceSite`) or calls a tainted function.
Propagation is a multi-source BFS over the reverse call graph, so every
tainted function records its *shortest* path to a source — that is the
chain R006 renders, and shortest paths keep the report stable as
unrelated code grows.

Determinism: BFS layers are processed in sorted qname order, ties among
a function's outgoing tainted calls break on (line, col, callee qname),
and ties among a function's own sources break on (line, col, kind).
Re-running over an unchanged tree therefore reproduces byte-identical
chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.graph import FunctionSummary, ProjectIndex, SourceSite

__all__ = ["TaintRecord", "TaintAnalysis", "function_label"]


@dataclass(frozen=True)
class TaintRecord:
    """Why one function is tainted.

    ``source`` is set iff the function holds the source directly
    (``dist == 0``); otherwise ``next_hop`` names the tainted callee and
    ``call_line``/``call_col`` locate the call that imports the taint.
    """

    qname: str
    dist: int
    source: Optional[SourceSite] = None
    next_hop: str = ""
    call_line: int = 0
    call_col: int = 0


class TaintAnalysis:
    """Multi-source shortest-path taint over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.records: Dict[str, TaintRecord] = {}
        self._propagate()

    def _propagate(self) -> None:
        # Seed: every function with a direct source, best source first.
        frontier: List[str] = []
        for qname in sorted(self.index.functions):
            fn = self.index.functions[qname]
            if not fn.sources:
                continue
            best = min(fn.sources, key=lambda s: (s.line, s.col, s.kind))
            self.records[qname] = TaintRecord(qname=qname, dist=0, source=best)
            frontier.append(qname)

        reverse = self.index.reverse_edges()
        dist = 1
        while frontier:
            # Collect this layer's callers, then commit the best edge per
            # caller: sorted callee order makes tie-breaks deterministic.
            candidates: Dict[str, Tuple[int, int, str]] = {}
            for callee in sorted(frontier):
                for caller, line, col in reverse.get(callee, ()):
                    if caller in self.records:
                        continue
                    edge = (line, col, callee)
                    if caller not in candidates or edge < candidates[caller]:
                        candidates[caller] = edge
            frontier = []
            for caller in sorted(candidates):
                line, col, callee = candidates[caller]
                self.records[caller] = TaintRecord(
                    qname=caller,
                    dist=dist,
                    next_hop=callee,
                    call_line=line,
                    call_col=col,
                )
                frontier.append(caller)
            dist += 1

    def record(self, qname: str) -> Optional[TaintRecord]:
        return self.records.get(qname)

    def chain(self, qname: str) -> List[TaintRecord]:
        """The records from ``qname`` down to the source-holding function."""
        steps: List[TaintRecord] = []
        cursor: Optional[str] = qname
        while cursor is not None:
            record = self.records.get(cursor)
            if record is None:
                break
            steps.append(record)
            cursor = record.next_hop or None
        return steps

    def render_chain(self, qname: str) -> List[str]:
        """Human-readable chain steps, caller first, source last.

        Each step reads ``qname (path:line)``; the final element names
        the nondeterminism source itself.
        """
        steps: List[str] = []
        for record in self.chain(qname):
            fn = self.index.functions[record.qname]
            summary = self.index.module_for(record.qname)
            if record.source is not None:
                steps.append(
                    f"{record.qname} ({summary.relpath}:{record.source.line}) "
                    f"reads {record.source.detail}"
                )
            else:
                steps.append(f"{record.qname} ({summary.relpath}:{record.call_line})")
        return steps

    def describe_source(self, qname: str) -> str:
        """The source kind+detail terminating ``qname``'s chain."""
        steps = self.chain(qname)
        if not steps or steps[-1].source is None:
            return "nondeterminism source"
        src = steps[-1].source
        return f"{src.kind} source {src.detail}"

    @staticmethod
    def chain_functions(steps: List[TaintRecord]) -> List[str]:
        return [step.qname for step in steps]

    def taint_summary(self) -> Dict[str, int]:
        """qname → distance, for diagnostics (``--graph`` output)."""
        return {qname: rec.dist for qname, rec in sorted(self.records.items())}


def function_label(fn: FunctionSummary) -> str:
    """Short display label: ``Class.method`` or bare function name."""
    return f"{fn.cls}.{fn.name}" if fn.cls else fn.name
