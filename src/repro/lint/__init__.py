"""reprolint — AST-based determinism and digest-safety linter.

The reproduction's correctness rests on byte-identical replay: execution
specs are cached by canonical digest, parallel sweeps must match serial
runs exactly, and the lower-bound adversaries compare indistinguishable
executions message-for-message.  One unordered set iteration or unseeded
RNG silently breaks all of it, so this package machine-checks the
project's determinism invariants as named, suppressible rules (R001 —
R005; catalog in ``docs/LINT.md``).

Usage::

    from repro.lint import lint_paths

    report = lint_paths(["src", "benchmarks"])
    assert report.ok, [f.format_text() for f in report.findings]

or from the command line (exit 0 clean, 1 findings, 2 usage error)::

    python -m repro lint src benchmarks
    python -m repro lint --list-rules
    python -m repro lint --format json --no-baseline src

Suppress one finding inline with ``# reprolint: disable=RXXX`` on the
offending line; accept a whole ``(path, rule)`` pair in the committed
``.reprolint-baseline.json`` (see :mod:`repro.lint.baseline`).
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    LintReport,
    PARSE_ERROR_RULE,
    iter_python_files,
    lint_paths,
)
from repro.lint.findings import Finding, ModuleInfo
from repro.lint.rules import RULES, Rule, register

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "PARSE_ERROR_RULE",
    "RULES",
    "Rule",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "register",
    "write_baseline",
]
