"""reprolint — AST-based determinism and digest-safety linter.

The reproduction's correctness rests on byte-identical replay: execution
specs are cached by canonical digest, parallel sweeps must match serial
runs exactly, and the lower-bound adversaries compare indistinguishable
executions message-for-message.  One unordered set iteration or unseeded
RNG silently breaks all of it, so this package machine-checks the
project's determinism invariants as named, suppressible rules (R001 —
R009; catalog in ``docs/LINT.md``).

Two kinds of rules run in one invocation:

* **single-file rules** (R001–R005, R007, R008) see one parsed module at
  a time;
* **whole-program rules** (R006, R009) run over a project-wide symbol
  table and call graph (:mod:`repro.lint.graph`) with interprocedural
  taint propagation (:mod:`repro.lint.taint`), so nondeterminism that
  crosses module boundaries is caught too.

Usage::

    from repro.lint import lint_paths

    report = lint_paths(["src", "benchmarks"])
    assert report.ok, [f.format_text() for f in report.findings]

or from the command line (exit 0 clean, 1 findings, 2 usage error)::

    python -m repro lint src benchmarks
    python -m repro lint --list-rules
    python -m repro lint --format json --no-baseline src
    python -m repro lint --cache .reprolint-cache.json src benchmarks
    python -m repro lint --call-chain src
    python -m repro lint --prune-baseline

Suppress one finding inline with ``# reprolint: disable=RXXX`` on the
offending line; accept a whole ``(path, rule)`` pair in the committed
``.reprolint-baseline.json`` (see :mod:`repro.lint.baseline`).  For the
interprocedural rule R006, suppressing on the *source* line silences
every chain through that read; suppressing on the reported call line
silences only that sink-side finding.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.lint.cache import LINT_CACHE_VERSION, LintCache, file_sha256
from repro.lint.engine import (
    LintReport,
    PARSE_ERROR_RULE,
    all_rule_ids,
    iter_python_files,
    lint_paths,
)
from repro.lint.findings import Finding, ModuleInfo
from repro.lint.graph import ModuleSummary, ProjectIndex, summarize_module
from repro.lint.project_rules import PROJECT_RULES, ProjectRule, register_project
from repro.lint.rules import RULES, Rule, register
from repro.lint.taint import TaintAnalysis

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LINT_CACHE_VERSION",
    "LintCache",
    "LintReport",
    "ModuleInfo",
    "ModuleSummary",
    "PARSE_ERROR_RULE",
    "PROJECT_RULES",
    "ProjectIndex",
    "ProjectRule",
    "RULES",
    "Rule",
    "TaintAnalysis",
    "all_rule_ids",
    "file_sha256",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "prune_baseline",
    "register",
    "register_project",
    "summarize_module",
    "write_baseline",
]
