"""The reprolint rule set: named, suppressible determinism invariants.

Each rule is a small AST pass over one parsed module
(:class:`~repro.lint.findings.ModuleInfo`).  The reproduction's whole
result pipeline rests on byte-identical replay — spec digests key the
on-disk result cache, parallel sweeps must match serial runs exactly,
and the lower-bound adversaries compare indistinguishable executions
message-for-message — so the rules target the ways Python code silently
breaks that contract:

========  ==============================================================
R001      no module-global or unseeded :mod:`random` (inject a seeded
          ``random.Random(seed)``)
R002      no wall-clock or environment reads (``time.time``,
          ``datetime.now``, ``os.environ``) in the replay-critical
          ``sim``/``exec``/``faults`` layers
R003      no iteration over (or string-formatting of) unordered set
          expressions in digest-, hash-, or trace-comparison code
          without ``sorted(...)``
R004      digest coverage: every field of a digest-critical class must
          be reachable from its canonical encoder
R005      public modules declare a consistent ``__all__`` (entries
          resolve, no duplicate entries, no public stragglers)
========  ==============================================================

The full catalog with rationale and the suppression/baseline workflow
lives in ``docs/LINT.md``.  Rules are registered in :data:`RULES` by id
and must themselves be deterministic: findings are emitted with stable
messages and sorted by the engine, so lint output is byte-identical
across runs — the linter is held to the standard it enforces.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding, ModuleInfo

__all__ = [
    "Rule",
    "RULES",
    "register",
    "UnseededRandomRule",
    "WallClockRule",
    "UnorderedIterationRule",
    "DigestCoverageRule",
    "PublicExportsRule",
    "FloatExactnessRule",
    "AtomicIORule",
]


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`id` (``"RXXX"``) and :attr:`summary`, and
    implement :meth:`check`; :meth:`applies` narrows the rule to a
    subset of modules (by path or file name) and defaults to all.
    """

    id: str = ""
    summary: str = ""

    def applies(self, module: ModuleInfo) -> bool:
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.id}>"


#: Registry of rule instances by id, populated by :func:`register`.
RULES: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding one instance of ``cls`` to :data:`RULES`."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


def _dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-dotted exprs."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return None


# ---------------------------------------------------------------------------
# R001 — no module-global or unseeded random
# ---------------------------------------------------------------------------


@register
class UnseededRandomRule(Rule):
    """Randomness must come from an injected, explicitly seeded stream.

    ``random.random()`` and friends draw from the *process-global* RNG:
    any other consumer of that stream — another model, a test, a library
    — perturbs every draw after it, so results depend on call
    interleaving instead of the spec.  ``random.Random()`` without a
    seed initialises from OS entropy and can never replay.  The project
    convention is a per-component ``random.Random(seed)`` (often keyed
    by a string such as ``f"faults:{seed}:{node!r}"``).
    """

    id = "R001"
    summary = "no module-global or unseeded `random`"

    _HINT = "inject a per-component random.Random(seed) instead"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        module_aliases: Set[str] = set()
        class_aliases: Set[str] = set()  # bound to random.Random
        system_aliases: Set[str] = set()  # bound to random.SystemRandom
        func_aliases: Dict[str, str] = {}  # bound to a random.<func>
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        module_aliases.add(alias.asname or "random")
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module == "random"
                and node.level == 0
            ):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "Random":
                        class_aliases.add(bound)
                    elif alias.name == "SystemRandom":
                        system_aliases.add(bound)
                    elif alias.name != "*":
                        func_aliases[bound] = alias.name

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted_parts(node.func)
            if parts is not None and len(parts) == 2 and parts[0] in module_aliases:
                attr = parts[1]
                if attr == "Random":
                    if not node.args and not node.keywords:
                        yield module.finding(
                            node,
                            self.id,
                            "unseeded random.Random() initialises from OS "
                            "entropy; pass an explicit seed so replays are "
                            "deterministic",
                        )
                elif attr == "SystemRandom":
                    yield module.finding(
                        node,
                        self.id,
                        "random.SystemRandom() draws OS entropy and can "
                        "never replay deterministically",
                    )
                else:
                    yield module.finding(
                        node,
                        self.id,
                        f"call to the process-global RNG random.{attr}(); "
                        + self._HINT,
                    )
            elif isinstance(node.func, ast.Name):
                name = node.func.id
                if name in class_aliases:
                    if not node.args and not node.keywords:
                        yield module.finding(
                            node,
                            self.id,
                            "unseeded Random() initialises from OS entropy; "
                            "pass an explicit seed so replays are "
                            "deterministic",
                        )
                elif name in system_aliases:
                    yield module.finding(
                        node,
                        self.id,
                        "SystemRandom() draws OS entropy and can never "
                        "replay deterministically",
                    )
                elif name in func_aliases:
                    yield module.finding(
                        node,
                        self.id,
                        "call to the process-global RNG "
                        f"random.{func_aliases[name]}(); " + self._HINT,
                    )


# ---------------------------------------------------------------------------
# R002 — no wall-clock or environment reads in replay-critical layers
# ---------------------------------------------------------------------------


@register
class WallClockRule(Rule):
    """The simulation/execution/fault layers must not read the real world.

    A ``time.time()`` or ``os.environ`` read in a replay-critical path
    makes behaviour depend on when or where the process runs, which no
    spec digest can capture — a cached result could then disagree with a
    fresh run.  Timestamps belong to the simulated clock; configuration
    must be threaded through the spec or a constructor.  Monotonic
    *duration* measurement (``time.perf_counter``/``time.monotonic``)
    is allowed: the telemetry layer strips wall timings before results
    enter digested summaries.
    """

    id = "R002"
    summary = "no wall-clock/env reads in sim/exec/faults layers"

    _SCOPE_SEGMENTS = frozenset({"sim", "exec", "faults"})
    _WALL_TIME_FUNCS = frozenset({"time", "time_ns"})
    _WALL_DT_FUNCS = frozenset({"now", "utcnow", "today"})

    def applies(self, module: ModuleInfo) -> bool:
        return bool(self._SCOPE_SEGMENTS.intersection(module.path_parts[:-1]))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        os_mods: Set[str] = set()
        time_mods: Set[str] = set()
        dt_mods: Set[str] = set()
        dt_classes: Set[str] = set()  # `from datetime import datetime/date`
        env_names: Set[str] = set()  # `from os import environ`
        getenv_names: Set[str] = set()  # `from os import getenv`
        wall_funcs: Dict[str, str] = {}  # `from time import time` etc.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "os" or alias.name.startswith("os."):
                        os_mods.add(bound)
                    elif alias.name == "time":
                        time_mods.add(bound)
                    elif alias.name == "datetime":
                        dt_mods.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "os":
                        if alias.name == "environ":
                            env_names.add(bound)
                        elif alias.name == "getenv":
                            getenv_names.add(bound)
                    elif node.module == "time":
                        if alias.name in self._WALL_TIME_FUNCS:
                            wall_funcs[bound] = f"time.{alias.name}"
                    elif node.module == "datetime":
                        if alias.name in ("datetime", "date"):
                            dt_classes.add(bound)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                parts = _dotted_parts(node)
                if (
                    parts is not None
                    and len(parts) == 2
                    and parts[0] in os_mods
                    and parts[1] == "environ"
                ):
                    yield module.finding(
                        node,
                        self.id,
                        "environment read os.environ in a replay-critical "
                        "layer; thread configuration through the spec or a "
                        "constructor argument",
                    )
            elif isinstance(node, ast.Call):
                parts = _dotted_parts(node.func)
                if parts is not None and len(parts) >= 2:
                    head, tail = parts[0], parts[-1]
                    if head in os_mods and parts[1] == "getenv":
                        yield module.finding(
                            node,
                            self.id,
                            "environment read os.getenv() in a "
                            "replay-critical layer; thread configuration "
                            "through the spec or a constructor argument",
                        )
                    elif (
                        head in time_mods
                        and len(parts) == 2
                        and tail in self._WALL_TIME_FUNCS
                    ):
                        yield module.finding(
                            node,
                            self.id,
                            f"wall-clock read time.{tail}() in a "
                            "replay-critical layer; use the simulated clock "
                            "(or time.perf_counter for stripped telemetry "
                            "durations)",
                        )
                    elif (
                        head in dt_mods or (head in dt_classes and len(parts) == 2)
                    ) and tail in self._WALL_DT_FUNCS:
                        yield module.finding(
                            node,
                            self.id,
                            f"wall-clock read {'.'.join(parts)}() in a "
                            "replay-critical layer; timestamps must come "
                            "from the simulated clock",
                        )
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                    if name in getenv_names:
                        yield module.finding(
                            node,
                            self.id,
                            "environment read getenv() in a replay-critical "
                            "layer; thread configuration through the spec "
                            "or a constructor argument",
                        )
                    elif name in wall_funcs:
                        yield module.finding(
                            node,
                            self.id,
                            f"wall-clock read {wall_funcs[name]}() in a "
                            "replay-critical layer; use the simulated clock",
                        )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in env_names:
                    yield module.finding(
                        node,
                        self.id,
                        "environment read os.environ in a replay-critical "
                        "layer; thread configuration through the spec or a "
                        "constructor argument",
                    )


# ---------------------------------------------------------------------------
# R003 — no unordered iteration in digest/hash/trace-comparison code
# ---------------------------------------------------------------------------


@register
class UnorderedIterationRule(Rule):
    """Digest and comparison code must never depend on set ordering.

    String hashes are randomised per process, so iterating a ``set`` (or
    interpolating one into a diagnostic) yields a different order in
    every run — enough to flip an indistinguishability verdict's
    *message*, reorder a canonical encoding, or make two byte-identical
    sweeps disagree.  The rule scopes itself to functions whose names
    mention digesting, hashing, canonical encoding, patterns, matching,
    or comparison, and flags set-valued expressions that are iterated or
    formatted without ``sorted(...)``.
    """

    id = "R003"
    summary = "no unordered set iteration/formatting in digest code"

    _SCOPE_KEYWORDS = (
        "digest",
        "hash",
        "canonical",
        "encode",
        "pattern",
        "match",
        "compare",
    )
    _SET_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        seen: Set[Tuple[int, int, str]] = set()
        for func in ast.walk(module.tree):
            if isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._in_scope(func.name):
                for finding in self._check_function(module, func):
                    key = (finding.line, finding.col, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding

    def _in_scope(self, name: str) -> bool:
        low = name.lower()
        return any(keyword in low for keyword in self._SCOPE_KEYWORDS)

    def _check_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterator[Finding]:
        tainted = self._tainted_names(func)
        for node in ast.walk(func):
            if isinstance(node, ast.For):
                yield from self._flag_iter(module, node.iter, tainted)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for comp in node.generators:
                    yield from self._flag_iter(module, comp.iter, tainted)
            elif isinstance(node, ast.FormattedValue):
                if self._is_set_expr(node.value, tainted):
                    yield module.finding(
                        node.value,
                        self.id,
                        "unordered set interpolated into a string in "
                        "digest/comparison code; wrap in sorted(...) so "
                        "diagnostics are deterministic",
                    )

    def _flag_iter(
        self, module: ModuleInfo, iter_node: ast.AST, tainted: Set[str]
    ) -> Iterator[Finding]:
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "sorted"
        ):
            return
        if self._is_set_expr(iter_node, tainted):
            yield module.finding(
                iter_node,
                self.id,
                "iteration over an unordered set expression in "
                "digest/comparison code; wrap in sorted(...) so the "
                "visit order is deterministic",
            )

    def _is_set_expr(self, node: ast.AST, tainted: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_OPS):
            return self._is_set_expr(node.left, tainted) or self._is_set_expr(
                node.right, tainted
            )
        if isinstance(node, ast.Name):
            return node.id in tainted
        return False

    def _tainted_names(self, func: ast.AST) -> Set[str]:
        """Names assigned from set-producing expressions (to a fixpoint)."""
        tainted: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    name = node.targets[0].id
                    if name not in tainted and self._is_set_expr(
                        node.value, tainted
                    ):
                        tainted.add(name)
                        changed = True
        return tainted


# ---------------------------------------------------------------------------
# R004 — digest coverage for digest-critical classes
# ---------------------------------------------------------------------------


@register
class DigestCoverageRule(Rule):
    """Every field of a digest-critical class must reach its encoder.

    A field that the canonical encoder cannot see is a cache-poisoning
    hazard: changing it changes behaviour but not the digest, so a stale
    cached result is returned for a spec that would *not* reproduce it.
    Two shapes are checked:

    * a ``@dataclass`` defining an encoder method (``digest``,
      ``canonical_encoding``, ...) must reach every field — either
      explicitly (``self.<field>`` / a matching string literal) or by
      iterating ``dataclasses.fields``; field names compared against
      string literals inside a ``fields``-iterating encoder are
      *exclusions* and must be marked ``# reprolint: digest-exempt`` on
      the field's declaration line;
    * a class whose ``class`` line carries ``# reprolint:
      digest-critical`` is encoded generically from its instance
      ``__dict__``, so no method may create attributes outside
      ``__init__`` — a lazily-created cache attribute would perturb the
      encoding depending on call history.
    """

    id = "R004"
    summary = "digest-critical fields must be reachable from the encoder"

    _ENCODER_NAMES = frozenset(
        {"digest", "canonical_encoding", "canonical_bytes", "to_canonical"}
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            encoder = self._find_encoder(node)
            if encoder is not None and self._is_dataclass(node):
                yield from self._check_dataclass(module, node, encoder)
            if module.has_marker(node.lineno, "digest-critical"):
                yield from self._check_generic(module, node)

    def _find_encoder(self, classdef: ast.ClassDef):
        for stmt in classdef.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name in self._ENCODER_NAMES
            ):
                return stmt
        return None

    @staticmethod
    def _is_dataclass(classdef: ast.ClassDef) -> bool:
        for decorator in classdef.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            parts = _dotted_parts(target)
            if parts is not None and parts[-1] == "dataclass":
                return True
        return False

    def _check_dataclass(
        self, module: ModuleInfo, classdef: ast.ClassDef, encoder
    ) -> Iterator[Finding]:
        fields: List[Tuple[str, int]] = []
        for stmt in classdef.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if "ClassVar" in ast.unparse(stmt.annotation):
                    continue
                fields.append((stmt.target.id, stmt.lineno))
        field_names = {name for name, _ in fields}

        dynamic = False
        compared_consts: Set[str] = set()
        self_attrs: Set[str] = set()
        all_consts: Set[str] = set()
        for node in ast.walk(encoder):
            if isinstance(node, ast.Call):
                parts = _dotted_parts(node.func)
                if parts is not None and parts[-1] == "fields":
                    dynamic = True
            elif isinstance(node, ast.Compare):
                for operand in [node.left, *node.comparators]:
                    compared_consts.update(self._string_consts(operand))
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    self_attrs.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                all_consts.add(node.value)

        if dynamic:
            for name, lineno in fields:
                if name in compared_consts and not module.has_marker(
                    lineno, "digest-exempt"
                ):
                    yield module.finding(
                        lineno,
                        self.id,
                        f"field {name!r} is excluded from the canonical "
                        f"encoding by {encoder.name}(); mark the field "
                        "`# reprolint: digest-exempt` if it is genuinely "
                        "presentation-only, or include it in the digest",
                    )
        else:
            covered = self_attrs | (all_consts & field_names)
            for name, lineno in fields:
                if name not in covered and not module.has_marker(
                    lineno, "digest-exempt"
                ):
                    yield module.finding(
                        lineno,
                        self.id,
                        f"field {name!r} is not reachable from canonical "
                        f"encoder {encoder.name}(); a change to it would "
                        "not change the digest (cache-poisoning hazard)",
                    )

    @staticmethod
    def _string_consts(node: ast.AST) -> Iterable[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            yield node.value
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    yield element.value

    def _check_generic(
        self, module: ModuleInfo, classdef: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            stmt
            for stmt in classdef.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        init_attrs: Set[str] = set()
        for method in methods:
            if method.name == "__init__":
                init_attrs = {name for name, _ in self._self_assigns(method)}
        for method in methods:
            if method.name == "__init__":
                continue
            if not method.args.args or method.args.args[0].arg != "self":
                continue
            for name, lineno in sorted(self._self_assigns(method)):
                if name not in init_attrs:
                    yield module.finding(
                        lineno,
                        self.id,
                        f"attribute self.{name} is first assigned outside "
                        "__init__ on a digest-critical class; lazily-created "
                        "state leaks into the generic canonical encoding "
                        "and makes digests depend on call history",
                    )

    @staticmethod
    def _self_assigns(method) -> Set[Tuple[str, int]]:
        names: Set[Tuple[str, int]] = set()
        for node in ast.walk(method):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if (
                        isinstance(element, ast.Attribute)
                        and isinstance(element.value, ast.Name)
                        and element.value.id == "self"
                    ):
                        names.add((element.attr, element.lineno))
        return names


# ---------------------------------------------------------------------------
# R005 — consistent public exports
# ---------------------------------------------------------------------------


@register
class PublicExportsRule(Rule):
    """Public modules declare a complete, resolvable ``__all__``.

    ``__all__`` is the contract tests and downstream users import
    against; an entry that does not resolve breaks ``from module import
    *`` at a distance, and a public def/class missing from it is an
    accidental API.  Test/benchmark files and conftest/setup scripts are
    exempt; runner stubs such as ``__main__.py`` are expected to be
    baselined (see ``.reprolint-baseline.json``).
    """

    id = "R005"
    summary = "public modules declare a consistent `__all__`"

    _EXCLUDED_NAMES = frozenset({"conftest.py", "setup.py"})

    def applies(self, module: ModuleInfo) -> bool:
        name = module.name
        return not (
            name in self._EXCLUDED_NAMES
            or name.startswith("test_")
            or name.startswith("bench_")
        )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        all_node: Optional[ast.AST] = None  # the Assign/AnnAssign statement
        all_value: Optional[ast.AST] = None  # its right-hand side
        bindings: Set[str] = set()
        public_defs: List[Tuple[str, str, int]] = []  # (kind, name, lineno)
        star_import = False
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bindings.add(node.name)
                if not node.name.startswith("_"):
                    public_defs.append(("function", node.name, node.lineno))
            elif isinstance(node, ast.ClassDef):
                bindings.add(node.name)
                if not node.name.startswith("_"):
                    public_defs.append(("class", node.name, node.lineno))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings.add(target.id)
                        if target.id == "__all__":
                            all_node, all_value = node, node.value
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                bindings.add(element.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                bindings.add(node.target.id)
                if node.target.id == "__all__" and node.value is not None:
                    all_node, all_value = node, node.value
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bindings.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        bindings.add(alias.asname or alias.name)

        if all_node is None:
            yield module.finding(
                1,
                self.id,
                "module defines no __all__; declare its public exports "
                "explicitly (an empty list is fine for script-only modules)",
            )
            return

        value = all_value
        if not isinstance(value, (ast.List, ast.Tuple)) or any(
            not (isinstance(e, ast.Constant) and isinstance(e.value, str))
            for e in value.elts
        ):
            yield module.finding(
                all_node,
                self.id,
                "__all__ must be a literal list/tuple of string names so "
                "exports can be statically verified",
            )
            return

        entries = [e.value for e in value.elts]
        seen_entries: Set[str] = set()
        for entry in entries:
            if entry in seen_entries:
                yield module.finding(
                    all_node, self.id, f"duplicate __all__ entry {entry!r}"
                )
            seen_entries.add(entry)
            if entry not in bindings and not star_import:
                yield module.finding(
                    all_node,
                    self.id,
                    f"__all__ entry {entry!r} does not resolve to a "
                    "module-level definition or import",
                )

        for kind, name, lineno in public_defs:
            if name not in seen_entries:
                yield module.finding(
                    lineno,
                    self.id,
                    f"public {kind} {name!r} is missing from __all__; "
                    "export it or prefix it with an underscore",
                )


# ---------------------------------------------------------------------------
# R007 — float-exactness: no order-sensitive reductions in summary paths
# ---------------------------------------------------------------------------


@register
class FloatExactnessRule(Rule):
    """Summary reductions must fold in a pinned, order-exact sequence.

    Floating-point addition is not associative: ``sum()`` over a ``set``
    or over ``dict.values()`` folds in hash order, and ``np.sum`` may
    pick a pairwise or vectorised association — either can flip the last
    ulp of a skew summary between runs or between the streaming and
    trace paths, breaking the byte-identical parity contract
    (docs/ENGINE.md).  The rule scopes itself to the ``sim/`` and
    ``analysis/`` trees and flags:

    * ``sum(...)`` whose argument is a set expression or any
      ``<x>.values()`` call (dict value order is insertion order, but
      nothing pins the insertion order of the dict being summed — make
      the order explicit);
    * numpy reductions (``np.sum``, ``np.prod``, ``np.add.reduce``,
      ``np.cumsum``, ``np.dot``) outside the pinned expression-sequence
      pattern documented in docs/ENGINE.md.

    A reduction whose operands are provably order-exact (integer
    counters, or a sequence already pinned to a canonical order) is
    sanctioned with ``# reprolint: exact-fold`` on the line.
    """

    id = "R007"
    summary = "no order-sensitive reductions in sim/analysis summary paths"

    _SCOPE_SEGMENTS = frozenset({"sim", "analysis"})
    _NUMPY_REDUCERS = frozenset({"sum", "prod", "cumsum", "cumprod", "dot"})
    _MARKER = "exact-fold"

    def applies(self, module: ModuleInfo) -> bool:
        return bool(self._SCOPE_SEGMENTS.intersection(module.path_parts[:-1]))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        numpy_aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.has_marker(node.lineno, self._MARKER):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "sum":
                yield from self._check_builtin_sum(module, node)
            else:
                parts = _dotted_parts(node.func)
                if (
                    parts is not None
                    and len(parts) >= 2
                    and parts[0] in numpy_aliases
                ):
                    yield from self._check_numpy(module, node, parts)

    def _check_builtin_sum(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Finding]:
        if not node.args:
            return
        arg = node.args[0]
        if self._is_set_expr(arg):
            yield module.finding(
                node,
                self.id,
                "sum() over a set folds in hash order, which is not "
                "reproducible across processes; fold over "
                "sorted(...) or mark `# reprolint: exact-fold` if the "
                "operands are order-exact (e.g. integers)",
            )
        elif (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "values"
            and not arg.args
        ):
            yield module.finding(
                node,
                self.id,
                "sum() over .values() folds in dict insertion order, "
                "which nothing pins here; fold over a sorted key order "
                "or mark `# reprolint: exact-fold` if the operands are "
                "order-exact (e.g. integer counters)",
            )

    def _check_numpy(
        self, module: ModuleInfo, node: ast.Call, parts: Tuple[str, ...]
    ) -> Iterator[Finding]:
        tail = parts[-1]
        reduce_call = tail == "reduce" and len(parts) >= 3
        if not (tail in self._NUMPY_REDUCERS or reduce_call):
            return
        dotted = ".".join(parts)
        yield module.finding(
            node,
            self.id,
            f"numpy reduction {dotted}() may fold pairwise/vectorised, "
            "not left-to-right; use the pinned expression-sequence "
            "pattern from docs/ENGINE.md (math.fsum or an explicit "
            "ordered loop) or mark `# reprolint: exact-fold` with a "
            "reason",
        )

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )


# ---------------------------------------------------------------------------
# R008 — atomic IO in the campaign-execution persistence modules
# ---------------------------------------------------------------------------


@register
class AtomicIORule(Rule):
    """Result publication must follow fsync-before-rename discipline.

    The work-queue backend's crash-safety proof (docs/EXECUTION.md)
    rests on three idioms, each of which this rule enforces statically
    in ``exec/backend.py``, ``exec/cache.py``, and ``exec/manifest.py``:

    * **Durable publish** — a file written with ``open(..., "w")`` and
      then published with ``os.rename``/``os.replace`` must be
      ``os.fsync``'d first, or a crash after the rename can leave the
      *destination* pointing at zero-length data on some filesystems;
    * **Exclusive lease creation** — ``os.open`` with ``O_CREAT`` must
      also pass ``O_EXCL``, otherwise two workers can both believe they
      created the lease and the mutual-exclusion argument collapses;
    * **`os.replace` over `os.rename`** — bare ``os.rename`` raises on
      Windows when the destination exists and is not an atomic overwrite
      there; ``os.replace`` has the POSIX semantics everywhere.
    """

    id = "R008"
    summary = "fsync-before-rename, O_CREAT|O_EXCL leases, os.replace"

    _FILES = frozenset({"backend.py", "cache.py", "manifest.py"})
    _WRITE_MODES = ("w", "a", "x", "r+", "w+", "a+")

    def applies(self, module: ModuleInfo) -> bool:
        return module.name in self._FILES and "exec" in module.path_parts[:-1]

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        os_mods: Set[str] = {"os"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "os":
                        os_mods.add(alias.asname or "os")
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, func, os_mods)

    def _check_function(
        self, module: ModuleInfo, func: ast.AST, os_mods: Set[str]
    ) -> Iterator[Finding]:
        write_opens: List[int] = []
        fsyncs: List[int] = []
        renames: List[Tuple[ast.Call, str]] = []
        for node in self._own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted_parts(node.func)
            if parts is None:
                continue
            if parts == ("open",) or (
                len(parts) == 2 and parts[0] in os_mods and parts[1] == "fdopen"
            ):
                if self._is_write_open(node):
                    write_opens.append(node.lineno)
            elif len(parts) == 2 and parts[0] in os_mods:
                tail = parts[1]
                if tail == "fsync":
                    fsyncs.append(node.lineno)
                elif tail in ("rename", "replace"):
                    renames.append((node, tail))
                elif tail == "open":
                    yield from self._check_os_open(module, node)

        for node, tail in sorted(renames, key=lambda r: r[0].lineno):
            if tail == "rename":
                yield module.finding(
                    node,
                    self.id,
                    "bare os.rename(); use os.replace() so the publish is "
                    "an atomic overwrite on every platform",
                )
            prior_open = max(
                (line for line in write_opens if line < node.lineno),
                default=None,
            )
            if prior_open is not None and not any(
                prior_open < line < node.lineno for line in fsyncs
            ):
                yield module.finding(
                    node,
                    self.id,
                    f"os.{tail}() publishes a file written at line "
                    f"{prior_open} without an intervening os.fsync(); a "
                    "crash after the rename can leave the destination "
                    "with zero-length data",
                )

    @staticmethod
    def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
        """Walk ``func``'s body, pruning nested defs (they get their own
        visit from the module-level walk, so descending twice would
        duplicate findings and confuse the fsync line-ordering check)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _is_write_open(self, node: ast.Call) -> bool:
        mode: Optional[ast.AST] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
            return False
        return any(flag in mode.value for flag in self._WRITE_MODES)

    def _check_os_open(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Finding]:
        flag_names: Set[str] = set()
        for arg in node.args[1:2] or [
            kw.value for kw in node.keywords if kw.arg == "flags"
        ]:
            for sub in ast.walk(arg):
                parts = _dotted_parts(sub)
                if parts is not None and parts[-1].startswith("O_"):
                    flag_names.add(parts[-1])
        if "O_CREAT" in flag_names and "O_EXCL" not in flag_names:
            yield module.finding(
                node,
                self.id,
                "os.open() with O_CREAT but without O_EXCL: two workers "
                "can both believe they created the file; lease "
                "arbitration requires O_CREAT|O_EXCL",
            )
