"""Content-hash incremental cache for the reprolint engine.

Per-file lint work (parsing, single-file rules, module summarization) is
pure in the file's bytes, so it is cached under the file's sha256 and
reused verbatim while the file is unchanged.  The whole-program pass
(R006/R009) is *never* cached: it re-runs over the current set of module
summaries every invocation, so editing one module re-analyzes its
dependents' interprocedural findings without re-parsing their files —
and a cold run and a warm run produce byte-identical reports by
construction.

Cache entries hold, per relpath:

* ``sha`` — sha256 of the source bytes;
* ``findings`` — single-file findings *after* inline suppression but
  *before* baseline matching (the baseline can change independently of
  the file, so it must be re-applied on every run);
* ``suppressed`` — how many findings inline comments suppressed;
* ``summary`` — the :class:`~repro.lint.graph.ModuleSummary`, or null
  for files that failed to parse.

The whole cache is keyed by :data:`LINT_CACHE_VERSION` and the active
single-file rule ids; a mismatch (new reprolint version, different
``--rules`` filter) or any corruption silently discards it — the cache
is an accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.lint.findings import Finding
from repro.lint.graph import ModuleSummary

__all__ = ["LINT_CACHE_VERSION", "CacheEntry", "LintCache", "file_sha256"]

#: Bump when rule semantics or the summary/finding schema change.
LINT_CACHE_VERSION = 1

_MAGIC = "reprolint"


def file_sha256(source: str) -> str:
    """sha256 hex digest of a module's source text (utf-8 bytes)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One file's cached lint artifacts."""

    sha: str
    findings: List[Finding]
    suppressed: int
    summary: Optional[ModuleSummary]

    def as_dict(self) -> dict:
        return {
            "sha": self.sha,
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": self.suppressed,
            "summary": self.summary.as_dict() if self.summary else None,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CacheEntry":
        summary = raw.get("summary")
        return cls(
            sha=str(raw["sha"]),
            findings=[Finding.from_dict(f) for f in raw["findings"]],
            suppressed=int(raw["suppressed"]),
            summary=ModuleSummary.from_dict(summary) if summary else None,
        )


class LintCache:
    """The on-disk incremental cache, loaded once per lint run."""

    def __init__(self, rule_ids: Sequence[str]):
        self.rule_ids = sorted(rule_ids)
        self.entries: Dict[str, CacheEntry] = {}

    @classmethod
    def load(
        cls, path: Union[str, Path], rule_ids: Sequence[str]
    ) -> "LintCache":
        """Load the cache at ``path``; any mismatch yields an empty cache."""
        cache = cls(rule_ids)
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return cache
        if not isinstance(data, dict):
            return cache
        if data.get("lint_cache") != _MAGIC:
            return cache
        if data.get("version") != LINT_CACHE_VERSION:
            return cache
        if data.get("rules") != cache.rule_ids:
            return cache
        files = data.get("files")
        if not isinstance(files, dict):
            return cache
        try:
            for relpath, raw in files.items():
                cache.entries[str(relpath)] = CacheEntry.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            cache.entries.clear()
        return cache

    def get(self, relpath: str, sha: str) -> Optional[CacheEntry]:
        entry = self.entries.get(relpath)
        if entry is not None and entry.sha == sha:
            return entry
        return None

    def put(
        self,
        relpath: str,
        sha: str,
        findings: List[Finding],
        suppressed: int,
        summary: Optional[ModuleSummary],
    ) -> CacheEntry:
        entry = CacheEntry(
            sha=sha,
            findings=list(findings),
            suppressed=suppressed,
            summary=summary,
        )
        self.entries[relpath] = entry
        return entry

    def retain(self, relpaths: Sequence[str]) -> None:
        """Drop entries for files no longer part of the lint run."""
        keep = set(relpaths)
        for relpath in sorted(set(self.entries) - keep):
            del self.entries[relpath]

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "lint_cache": _MAGIC,
            "version": LINT_CACHE_VERSION,
            "rules": self.rule_ids,
            "files": {
                relpath: self.entries[relpath].as_dict()
                for relpath in sorted(self.entries)
            },
        }
        Path(path).write_text(
            json.dumps(payload, indent=None, separators=(",", ":"), sort_keys=True)
        )
