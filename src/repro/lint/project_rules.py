"""Whole-program reprolint rules: R006 (taint reachability), R009 (purity).

Unlike the single-file rules in :mod:`repro.lint.rules`, these run once
per lint invocation against the :class:`~repro.lint.graph.ProjectIndex`
— they see every module at once, so a ``sim/`` function that reaches
``time.time()`` through a helper in another module is no longer
invisible.

Division of labour with the single-file rules:

* R002 already bans *direct* wall-clock/environment reads inside the
  replay layers, so R006 never duplicates those — it reports functions
  whose nondeterminism arrives **through a call chain**, plus direct
  reads that R002's single-file scope cannot see (process identity
  anywhere in scope, wall clock inside digest sinks outside the replay
  trees).
* Direct unseeded RNG (R001) and direct unordered-set iteration (R003)
  likewise stay with their single-file owners; R006 picks them up only
  once they cross a module or function boundary.

Frontier reporting keeps output proportional to the number of *leaks*
rather than the number of callers: when ``f -> g -> time.time()`` and
both ``f`` and ``g`` are in scope, only ``g`` — the deepest in-scope
function on the chain — reports, because fixing ``g`` fixes ``f``.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.lint.findings import Finding
from repro.lint.graph import FunctionSummary, ProjectIndex
from repro.lint.taint import TaintAnalysis

__all__ = [
    "ProjectRule",
    "PROJECT_RULES",
    "register_project",
    "InterproceduralNondeterminism",
    "CertificatePredicatePurity",
]


class ProjectRule:
    """One whole-program rule: inspects the index, yields findings."""

    id: str = ""
    summary: str = ""

    def check(self, index: ProjectIndex, taint: TaintAnalysis) -> List[Finding]:
        raise NotImplementedError


PROJECT_RULES: Dict[str, ProjectRule] = {}


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    PROJECT_RULES[cls.id] = cls()
    return cls


@register_project
class InterproceduralNondeterminism(ProjectRule):
    """R006: nondeterminism must not reach replay layers or digest sinks."""

    id = "R006"
    summary = (
        "no call chain may carry wall-clock, RNG, environment, process-"
        "identity, or set-order nondeterminism into sim/exec/faults code "
        "or digest-critical sinks"
    )

    def check(self, index: ProjectIndex, taint: TaintAnalysis) -> List[Finding]:
        findings: List[Finding] = []
        for qname in sorted(index.functions):
            fn = index.functions[qname]
            reason = index.scope_reason(fn)
            if not reason:
                continue
            record = taint.record(qname)
            if record is None:
                continue
            if record.dist == 0:
                finding = self._direct_finding(index, taint, fn, reason)
            else:
                finding = self._chain_finding(index, taint, fn, reason)
            if finding is not None:
                findings.append(finding)
        return findings

    def _direct_finding(self, index, taint, fn: FunctionSummary, reason):
        """Direct sources the single-file rules do not already own."""
        record = taint.record(fn.qname)
        src = record.source
        summary = index.module_for(fn.qname)
        in_replay = bool(summary.replay_layer)
        if src.kind == "process-identity":
            pass  # no single-file rule covers these: always ours
        elif src.kind in ("wall-clock", "environment"):
            if in_replay:
                return None  # R002's single-file scope already reports it
            if not fn.sink:
                return None
        else:
            return None  # unseeded-rng → R001, set-order → R003
        chain = tuple(taint.render_chain(fn.qname))
        return Finding(
            path=summary.relpath,
            line=src.line,
            col=src.col,
            rule=self.id,
            message=(
                f"{fn.qname}() is in {reason} but reads "
                f"{src.kind} source {src.detail}"
            ),
            chain=chain,
        )

    def _chain_finding(self, index, taint, fn: FunctionSummary, reason):
        steps = taint.chain(fn.qname)
        # Frontier reporting: if any deeper function on this chain is
        # itself in scope, that function owns the finding (fixing it
        # fixes this caller too) — or, when the deeper function holds
        # the source directly inside a replay layer, R002 owns it.
        for step in steps[1:]:
            deeper = index.functions[step.qname]
            if index.scope_reason(deeper):
                return None
        record = steps[0]
        chain = taint.render_chain(fn.qname)
        source_desc = taint.describe_source(fn.qname)
        message = (
            f"{fn.qname}() is in {reason} but reaches {source_desc} "
            f"via {' -> '.join(s.qname for s in steps)}"
        )
        summary = index.module_for(fn.qname)
        return Finding(
            path=summary.relpath,
            line=record.call_line,
            col=record.call_col,
            rule=self.id,
            message=message,
            chain=tuple(chain),
        )


@register_project
class CertificatePredicatePurity(ProjectRule):
    """R009: registered certificate predicates must be pure."""

    id = "R009"
    summary = (
        "certificate predicates (registry-registered functions and "
        "check/bound/run methods of Certificate classes) must not "
        "perform IO, mutate module globals, or construct RNGs"
    )

    def check(self, index: ProjectIndex, taint: TaintAnalysis) -> List[Finding]:
        findings: List[Finding] = []
        predicates = index.certificate_predicates()
        for qname in sorted(predicates):
            fn = index.functions[qname]
            summary = index.module_for(qname)
            how = predicates[qname]
            for imp in sorted(
                fn.impurities, key=lambda i: (i.line, i.col, i.kind)
            ):
                findings.append(
                    Finding(
                        path=summary.relpath,
                        line=imp.line,
                        col=imp.col,
                        rule=self.id,
                        message=(
                            f"certificate predicate {fn.qname}() "
                            f"({how}) must stay pure but {imp.detail}"
                        ),
                    )
                )
        return findings
