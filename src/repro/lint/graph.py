"""Whole-program symbol table, module summaries, and call graph.

Single-file rules see one AST at a time, which leaves a structural hole:
a ``sim/`` function that reaches ``time.time()`` *through a helper in
another module* is invisible to R002.  This module closes the hole by
summarizing every linted file into a compact, JSON-serializable
:class:`ModuleSummary` — import aliases, top-level definitions, one
:class:`FunctionSummary` per function/method with its outgoing calls,
direct nondeterminism sources, and purity-relevant operations — and
assembling the summaries into a :class:`ProjectIndex` whose call graph
is module-qualified: ``from x import y`` aliases and package
``__init__`` re-exports are resolved to the defining module.

Summaries are deliberately AST-free so the incremental lint cache
(:mod:`repro.lint.cache`) can persist them by content hash: an unchanged
file contributes its cached summary to the graph without being re-parsed,
while the graph passes (R006/R009, :mod:`repro.lint.project_rules`)
always run against the *current* project-wide summaries — editing one
module therefore re-analyzes its dependents' interprocedural findings
without re-parsing their files.

Everything is deterministic: summaries record source order, the index
iterates sorted structures, and resolution is purely syntactic (no
imports are executed).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import ModuleInfo

__all__ = [
    "CallSite",
    "dotted_parts",
    "SourceSite",
    "ImpuritySite",
    "FunctionSummary",
    "ClassSummary",
    "Registration",
    "ModuleSummary",
    "ProjectIndex",
    "module_name_for",
    "summarize_module",
]

#: Replay-critical path segments, mirroring R002's scope.
REPLAY_SEGMENTS = frozenset({"sim", "exec", "faults"})

#: Function names that are digest-critical sinks wherever they appear.
_SINK_NAMES = frozenset(
    {
        "to_json",
        "cache_key",
        "_cache_key",
        "path_for",
        "summarize_trace",
        "summarize_streaming",
    }
)

#: Wall-clock reads (after alias expansion to a fully dotted name).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Process/thread identity and OS entropy reads no other rule covers.
_PROCESS_IDENTITY = frozenset(
    {
        "os.getpid",
        "os.getppid",
        "os.urandom",
        "threading.get_ident",
        "threading.current_thread",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Direct file/console IO calls (for certificate purity, R009).
_IO_CALLS = frozenset(
    {
        "open",
        "print",
        "os.open",
        "os.fdopen",
        "os.write",
        "os.truncate",
        "os.unlink",
        "os.remove",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "os.utime",
        "os.fsync",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryDirectory",
    }
)

#: Pathlib-style IO method names (attribute calls on any receiver).
_IO_METHODS = frozenset(
    {"write_text", "write_bytes", "unlink", "touch", "mkdir", "rmdir"}
)

#: RNG constructions — even seeded ones are banned inside certificate
#: predicates: a predicate's verdict must be a pure function of its
#: arguments, never of a private random stream.
_RNG_CALLS = frozenset(
    {"random.Random", "random.SystemRandom", "random.seed"}
)

#: Function-name keywords placing a function in digest/comparison scope
#: (shared with R003); unordered set iteration only counts as a taint
#: source inside these, so the interprocedural pass extends R003 rather
#: than second-guessing every set loop in the tree.
_DIGEST_KEYWORDS = (
    "digest",
    "hash",
    "canonical",
    "encode",
    "pattern",
    "match",
    "compare",
)


def module_name_for(relpath: str) -> str:
    """Dotted module name for a posix relpath (``src/`` prefix stripped).

    ``src/repro/exec/cache.py`` → ``repro.exec.cache``;
    ``pkg/__init__.py`` → ``pkg``.
    """
    parts = list(PurePosixPath(relpath.replace("\\", "/")).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    parts[-1] = stem
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``, or None for non-dotted exprs."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return None


@dataclass(frozen=True)
class CallSite:
    """One outgoing call, recorded as unresolved dotted parts."""

    parts: Tuple[str, ...]
    line: int
    col: int

    def as_dict(self) -> dict:
        return {"parts": list(self.parts), "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, raw: dict) -> "CallSite":
        return cls(tuple(raw["parts"]), int(raw["line"]), int(raw["col"]))


@dataclass(frozen=True)
class SourceSite:
    """One direct nondeterminism source inside a function."""

    kind: str  #: wall-clock | environment | process-identity | unseeded-rng | set-order
    detail: str  #: e.g. ``"time.time()"``
    line: int
    col: int

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SourceSite":
        return cls(
            str(raw["kind"]), str(raw["detail"]), int(raw["line"]), int(raw["col"])
        )


@dataclass(frozen=True)
class ImpuritySite:
    """One purity violation (IO, global mutation, RNG construction)."""

    kind: str  #: io | global-mutation | rng-construction
    detail: str
    line: int
    col: int

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ImpuritySite":
        return cls(
            str(raw["kind"]), str(raw["detail"]), int(raw["line"]), int(raw["col"])
        )


@dataclass
class FunctionSummary:
    """Everything the graph passes need to know about one function."""

    qname: str  #: module-qualified, e.g. ``repro.exec.cache.ResultCache.put``
    name: str  #: bare name, e.g. ``put``
    cls: str  #: enclosing class name, or ``""`` for module-level functions
    line: int
    calls: List[CallSite] = field(default_factory=list)
    sources: List[SourceSite] = field(default_factory=list)
    impurities: List[ImpuritySite] = field(default_factory=list)
    sink: str = ""  #: non-empty = digest-critical, with the reason

    def as_dict(self) -> dict:
        return {
            "qname": self.qname,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "calls": [call.as_dict() for call in self.calls],
            "sources": [source.as_dict() for source in self.sources],
            "impurities": [imp.as_dict() for imp in self.impurities],
            "sink": self.sink,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FunctionSummary":
        return cls(
            qname=str(raw["qname"]),
            name=str(raw["name"]),
            cls=str(raw["cls"]),
            line=int(raw["line"]),
            calls=[CallSite.from_dict(c) for c in raw["calls"]],
            sources=[SourceSite.from_dict(s) for s in raw["sources"]],
            impurities=[ImpuritySite.from_dict(i) for i in raw["impurities"]],
            sink=str(raw["sink"]),
        )


@dataclass
class ClassSummary:
    """A top-level class: its methods and (unresolved) base names."""

    qname: str
    name: str
    line: int
    bases: List[str] = field(default_factory=list)  #: dotted base names
    methods: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "qname": self.qname,
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ClassSummary":
        return cls(
            qname=str(raw["qname"]),
            name=str(raw["name"]),
            line=int(raw["line"]),
            bases=[str(b) for b in raw["bases"]],
            methods=[str(m) for m in raw["methods"]],
        )


@dataclass(frozen=True)
class Registration:
    """A ``*Certificate(...)`` construction and its bare-name arguments."""

    callee: str  #: dotted callee as written, e.g. ``MonitorCertificate``
    names: Tuple[str, ...]  #: bare-Name positional/keyword arguments
    line: int

    def as_dict(self) -> dict:
        return {"callee": self.callee, "names": list(self.names), "line": self.line}

    @classmethod
    def from_dict(cls, raw: dict) -> "Registration":
        return cls(str(raw["callee"]), tuple(raw["names"]), int(raw["line"]))


@dataclass
class ModuleSummary:
    """The graph-relevant facts of one module, AST-free and JSON-ready."""

    relpath: str
    module: str  #: dotted module name
    imports: Dict[str, str] = field(default_factory=dict)  #: alias → dotted target
    defs: Dict[str, str] = field(default_factory=dict)  #: top-level name → func|class
    functions: List[FunctionSummary] = field(default_factory=list)
    classes: List[ClassSummary] = field(default_factory=list)
    registrations: List[Registration] = field(default_factory=list)
    #: 1-indexed line → rule ids disabled there (mirror of ModuleInfo).
    suppressions: Dict[int, List[str]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "imports": dict(sorted(self.imports.items())),
            "defs": dict(sorted(self.defs.items())),
            "functions": [fn.as_dict() for fn in self.functions],
            "classes": [klass.as_dict() for klass in self.classes],
            "registrations": [reg.as_dict() for reg in self.registrations],
            "suppressions": {
                str(line): sorted(rules)
                for line, rules in sorted(self.suppressions.items())
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ModuleSummary":
        return cls(
            relpath=str(raw["relpath"]),
            module=str(raw["module"]),
            imports={str(k): str(v) for k, v in raw["imports"].items()},
            defs={str(k): str(v) for k, v in raw["defs"].items()},
            functions=[FunctionSummary.from_dict(f) for f in raw["functions"]],
            classes=[ClassSummary.from_dict(c) for c in raw["classes"]],
            registrations=[Registration.from_dict(r) for r in raw["registrations"]],
            suppressions={
                int(line): list(rules)
                for line, rules in raw["suppressions"].items()
            },
        )

    @property
    def replay_layer(self) -> str:
        """The replay-critical path segment this module lives in, or ``""``."""
        parts = PurePosixPath(self.relpath.replace("\\", "/")).parts[:-1]
        hits = REPLAY_SEGMENTS.intersection(parts)
        return min(hits) if hits else ""


# ---------------------------------------------------------------------------
# extraction: ModuleInfo → ModuleSummary
# ---------------------------------------------------------------------------


def _package_of(module: str, relpath: str) -> str:
    """The package a module's relative imports resolve against."""
    if relpath.replace("\\", "/").endswith("__init__.py"):
        return module  # the module *is* the package
    return module.rsplit(".", 1)[0] if "." in module else ""


class _Extractor:
    """Single-pass extraction of a :class:`ModuleSummary` from one AST."""

    def __init__(self, module: ModuleInfo, module_name: str):
        self.info = module
        self.summary = ModuleSummary(
            relpath=module.relpath,
            module=module_name,
            suppressions={
                line: sorted(rules)
                for line, rules in module.suppressions.items()
            },
        )
        self.package = _package_of(module_name, module.relpath)

    # -- imports ---------------------------------------------------------------

    def _collect_imports(self, tree: ast.AST) -> None:
        imports = self.summary.imports
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = self.package
                    for _ in range(node.level - 1):
                        anchor = anchor.rsplit(".", 1)[0] if "." in anchor else ""
                    base = f"{anchor}.{base}" if base else anchor
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    imports[bound] = f"{base}.{alias.name}" if base else alias.name

    def _expand(self, parts: Sequence[str]) -> Optional[str]:
        """Dotted name with the leading alias substituted, or None."""
        target = self.summary.imports.get(parts[0])
        if target is None:
            return None
        return ".".join([target, *parts[1:]])

    # -- top-level structure ---------------------------------------------------

    def run(self) -> ModuleSummary:
        tree = self.info.tree
        self._collect_imports(tree)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.summary.defs[node.name] = "func"
                self._summarize_function(node, cls="")
            elif isinstance(node, ast.ClassDef):
                self.summary.defs[node.name] = "class"
                self._summarize_class(node)
        self._collect_registrations(tree)
        return self.summary

    def _summarize_class(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            parts = dotted_parts(base)
            if parts is not None:
                bases.append(".".join(parts))
        methods = [
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self.summary.classes.append(
            ClassSummary(
                qname=f"{self.summary.module}.{node.name}",
                name=node.name,
                line=node.lineno,
                bases=bases,
                methods=methods,
            )
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._summarize_function(stmt, cls=node.name)

    # -- per-function extraction -----------------------------------------------

    def _summarize_function(self, node, cls: str) -> None:
        prefix = f"{self.summary.module}.{cls}." if cls else f"{self.summary.module}."
        fn = FunctionSummary(
            qname=prefix + node.name,
            name=node.name,
            cls=cls,
            line=node.lineno,
            sink=self._sink_reason(node.name),
        )
        digest_scope = any(kw in node.name.lower() for kw in _DIGEST_KEYWORDS)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_call(fn, sub)
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                self._record_attribute(fn, sub)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                self._record_name(fn, sub)
            elif isinstance(sub, ast.For):
                if digest_scope and self._is_set_expr(sub.iter):
                    self._add_source(
                        fn, "set-order", "iteration over an unordered set", sub.iter
                    )
            elif isinstance(
                sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                if digest_scope:
                    for comp in sub.generators:
                        if self._is_set_expr(comp.iter):
                            self._add_source(
                                fn,
                                "set-order",
                                "iteration over an unordered set",
                                comp.iter,
                            )
        self._record_global_mutations(fn, node)
        self.summary.functions.append(fn)

    @staticmethod
    def _sink_reason(name: str) -> str:
        low = name.lower()
        if "digest" in low or "canonical" in low:
            return f"digest-critical function {name}()"
        if name in _SINK_NAMES:
            return f"digest-critical function {name}()"
        return ""

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _add_source(self, fn: FunctionSummary, kind, detail, node) -> None:
        # A `# reprolint: disable=R002/R006` on the source line sanctions
        # the read at its origin: every chain through it goes quiet, which
        # is what "suppress at the source" means interprocedurally.
        disabled = self.info.suppressions.get(node.lineno, set())
        if "R002" in disabled or "R006" in disabled:
            return
        fn.sources.append(
            SourceSite(kind=kind, detail=detail, line=node.lineno, col=node.col_offset)
        )

    def _record_call(self, fn: FunctionSummary, node: ast.Call) -> None:
        parts = dotted_parts(node.func)
        if parts is None:
            # Method call on a non-name receiver: only purity cares.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _IO_METHODS
            ):
                fn.impurities.append(
                    ImpuritySite(
                        "io",
                        f"calls .{node.func.attr}()",
                        node.lineno,
                        node.col_offset,
                    )
                )
            return
        fn.calls.append(
            CallSite(parts=parts, line=node.lineno, col=node.col_offset)
        )
        dotted = self._expand(parts) or ".".join(parts)
        self._classify_call(fn, node, parts, dotted)

    def _classify_call(self, fn, node, parts, dotted) -> None:
        unseeded = not node.args and not node.keywords
        if dotted in _WALL_CLOCK:
            self._add_source(fn, "wall-clock", f"{dotted}()", node)
        elif dotted == "os.getenv":
            self._add_source(fn, "environment", "os.getenv()", node)
        elif dotted in _PROCESS_IDENTITY:
            self._add_source(fn, "process-identity", f"{dotted}()", node)
        elif dotted.startswith("numpy.random."):
            self._add_source(fn, "unseeded-rng", f"{dotted}()", node)
            fn.impurities.append(
                ImpuritySite(
                    "rng-construction",
                    f"constructs an RNG via {dotted}()",
                    node.lineno,
                    node.col_offset,
                )
            )
        elif dotted.startswith("random."):
            tail = dotted.split(".", 1)[1]
            if tail == "Random":
                if unseeded:
                    self._add_source(fn, "unseeded-rng", "random.Random()", node)
            elif tail == "SystemRandom":
                self._add_source(fn, "unseeded-rng", "random.SystemRandom()", node)
            elif tail[:1].islower():
                self._add_source(fn, "unseeded-rng", f"random.{tail}()", node)
            if tail in ("Random", "SystemRandom", "seed"):
                fn.impurities.append(
                    ImpuritySite(
                        "rng-construction",
                        f"constructs an RNG via {dotted}()",
                        node.lineno,
                        node.col_offset,
                    )
                )
        if dotted in _IO_CALLS or dotted.startswith("shutil."):
            fn.impurities.append(
                ImpuritySite(
                    "io", f"performs IO via {dotted}()", node.lineno, node.col_offset
                )
            )
        elif len(parts) >= 2 and parts[-1] in _IO_METHODS:
            fn.impurities.append(
                ImpuritySite(
                    "io",
                    f"calls .{parts[-1]}()",
                    node.lineno,
                    node.col_offset,
                )
            )

    def _record_attribute(self, fn: FunctionSummary, node: ast.Attribute) -> None:
        parts = dotted_parts(node)
        if parts is None or len(parts) != 2:
            return
        dotted = self._expand(parts) or ".".join(parts)
        if dotted == "os.environ":
            self._add_source(fn, "environment", "os.environ", node)

    def _record_name(self, fn: FunctionSummary, node: ast.Name) -> None:
        dotted = self.summary.imports.get(node.id)
        if dotted == "os.environ":
            self._add_source(fn, "environment", "os.environ", node)

    def _record_global_mutations(self, fn: FunctionSummary, node) -> None:
        declared: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared.update(sub.names)
        if not declared:
            return
        for sub in ast.walk(node):
            targets: List[ast.AST] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    fn.impurities.append(
                        ImpuritySite(
                            "global-mutation",
                            f"mutates module global {target.id!r}",
                            sub.lineno,
                            sub.col_offset,
                        )
                    )

    # -- certificate registrations ---------------------------------------------

    def _collect_registrations(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts is None or not parts[-1].endswith("Certificate"):
                continue
            names = [
                arg.id for arg in node.args if isinstance(arg, ast.Name)
            ] + [
                kw.value.id
                for kw in node.keywords
                if isinstance(kw.value, ast.Name)
            ]
            if names:
                self.summary.registrations.append(
                    Registration(
                        callee=".".join(parts),
                        names=tuple(names),
                        line=node.lineno,
                    )
                )


def summarize_module(module: ModuleInfo, module_name: Optional[str] = None) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed module."""
    if module_name is None:
        module_name = module_name_for(module.relpath)
    return _Extractor(module, module_name).run()


# ---------------------------------------------------------------------------
# the project index: symbol table + resolved call graph
# ---------------------------------------------------------------------------


class ProjectIndex:
    """All module summaries plus the resolved, module-qualified call graph."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self._module_of: Dict[str, ModuleSummary] = {}
        for name in sorted(self.modules):
            summary = self.modules[name]
            for fn in summary.functions:
                self.functions[fn.qname] = fn
                self._module_of[fn.qname] = summary
            for klass in summary.classes:
                self.classes[klass.qname] = klass
        #: caller qname → sorted list of (callee qname, line, col)
        self.edges: Dict[str, List[Tuple[str, int, int]]] = {}
        self._build_edges()
        self._mark_constructor_sinks()

    # -- resolution ------------------------------------------------------------

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> Optional[str]:
        """A fully dotted name → defining function/class qname, or None.

        Follows package re-exports (``pkg/__init__.py`` importing a name
        from ``pkg.impl``) up to a fixed depth, so aliases resolve to the
        module that actually defines the symbol.
        """
        if _depth > 16:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Try every module prefix, longest first, and follow re-exports.
        segments = dotted.split(".")
        for cut in range(len(segments) - 1, 0, -1):
            prefix = ".".join(segments[:cut])
            summary = self.modules.get(prefix)
            if summary is None:
                continue
            head = segments[cut]
            rest = segments[cut + 1 :]
            if head in summary.imports:
                target = ".".join([summary.imports[head], *rest])
                return self.resolve_dotted(target, _depth + 1)
            return None
        return None

    def resolve_call(
        self, summary: ModuleSummary, cls: str, parts: Sequence[str]
    ) -> Optional[str]:
        """Resolve one call's dotted parts from inside ``summary``/``cls``."""
        head = parts[0]
        if head in ("self", "cls") and cls:
            if len(parts) < 2:
                return None
            return self._resolve_method(summary, cls, parts[1])
        if head in summary.imports:
            dotted = ".".join([summary.imports[head], *parts[1:]])
        elif head in summary.defs:
            dotted = ".".join([summary.module, *parts])
        else:
            return None
        return self.resolve_dotted(dotted)

    def _resolve_method(
        self, summary: ModuleSummary, cls: str, method: str, _depth: int = 0
    ) -> Optional[str]:
        """``self.method`` → qname, walking project-resolvable base classes."""
        if _depth > 8:
            return None
        qname = f"{summary.module}.{cls}"
        klass = self.classes.get(qname)
        if klass is None:
            return None
        if method in klass.methods:
            return f"{qname}.{method}"
        for base in klass.bases:
            resolved = self.resolve_call(summary, "", base.split("."))
            if resolved is None or resolved not in self.classes:
                continue
            base_class = self.classes[resolved]
            base_module = self._summary_for_qname(resolved)
            if base_module is None:
                continue
            found = self._resolve_method(
                base_module, base_class.name, method, _depth + 1
            )
            if found is not None:
                return found
        return None

    def _summary_for_qname(self, qname: str) -> Optional[ModuleSummary]:
        module = qname.rsplit(".", 1)[0]
        return self.modules.get(module)

    # -- graph construction ----------------------------------------------------

    def _build_edges(self) -> None:
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            summary = self._module_of[fn.qname]
            seen: Set[Tuple[str, int, int]] = set()
            edges: List[Tuple[str, int, int]] = []
            for call in fn.calls:
                resolved = self.resolve_call(summary, fn.cls, call.parts)
                if resolved is None:
                    continue
                if resolved in self.classes:
                    init = f"{resolved}.__init__"
                    resolved = init if init in self.functions else resolved
                if resolved not in self.functions:
                    continue
                if resolved == qname:
                    continue  # direct recursion adds nothing to taint
                edge = (resolved, call.line, call.col)
                if edge not in seen:
                    seen.add(edge)
                    edges.append(edge)
            if edges:
                self.edges[qname] = sorted(edges)

    def _mark_constructor_sinks(self) -> None:
        """Constructing ``ExecutionSummary`` makes the caller a sink."""
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            if fn.sink:
                continue
            summary = self._module_of[qname]
            for call in fn.calls:
                resolved = self.resolve_call(summary, fn.cls, call.parts)
                if (
                    resolved is not None
                    and resolved in self.classes
                    and self.classes[resolved].name == "ExecutionSummary"
                ):
                    fn.sink = "ExecutionSummary constructor"
                    break

    # -- queries used by the project rules -------------------------------------

    def module_for(self, qname: str) -> ModuleSummary:
        return self._module_of[qname]

    def reverse_edges(self) -> Dict[str, List[Tuple[str, int, int]]]:
        """callee qname → sorted list of (caller qname, call line, col)."""
        reverse: Dict[str, List[Tuple[str, int, int]]] = {}
        for caller in sorted(self.edges):
            for callee, line, col in self.edges[caller]:
                reverse.setdefault(callee, []).append((caller, line, col))
        for callee in reverse:
            reverse[callee].sort()
        return reverse

    def scope_reason(self, fn: FunctionSummary) -> str:
        """Why taint reaching ``fn`` is reportable, or ``""``."""
        layer = self._module_of[fn.qname].replay_layer
        if layer:
            return f"replay-critical `{layer}` layer"
        if fn.sink:
            return fn.sink
        return ""

    def certificate_classes(self) -> Set[str]:
        """Qnames of project classes in a ``*Certificate`` hierarchy."""
        names: Set[str] = set()
        for qname in sorted(self.classes):
            if self._is_certificate_class(qname, set()):
                names.add(qname)
        return names

    def _is_certificate_class(self, qname: str, visiting: Set[str]) -> bool:
        if qname in visiting:
            return False
        visiting.add(qname)
        klass = self.classes[qname]
        if klass.name.endswith("Certificate"):
            return True
        summary = self._summary_for_qname(qname)
        if summary is None:
            return False
        for base in klass.bases:
            if base.split(".")[-1].endswith("Certificate"):
                return True
            resolved = self.resolve_call(summary, "", base.split("."))
            if (
                resolved is not None
                and resolved in self.classes
                and self._is_certificate_class(resolved, visiting)
            ):
                return True
        return False

    def certificate_predicates(self) -> Dict[str, str]:
        """Registered predicate qname → how it entered the registry."""
        predicates: Dict[str, str] = {}
        for module_name in sorted(self.modules):
            summary = self.modules[module_name]
            for reg in summary.registrations:
                for name in reg.names:
                    resolved = self.resolve_call(summary, "", (name,))
                    if resolved is None or resolved not in self.functions:
                        continue
                    predicates.setdefault(
                        resolved,
                        f"registered via {reg.callee.split('.')[-1]}() at "
                        f"{summary.relpath}:{reg.line}",
                    )
        check_methods = frozenset({"check_summary", "check_trace", "bound", "run"})
        for qname in sorted(self.certificate_classes()):
            klass = self.classes[qname]
            for method in klass.methods:
                if method not in check_methods:
                    continue
                fq = f"{qname}.{method}"
                if fq in self.functions:
                    predicates.setdefault(
                        fq, f"check method of certificate class {klass.name}"
                    )
        return predicates
