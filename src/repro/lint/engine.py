"""The reprolint engine: file traversal, rule dispatch, reporting.

:func:`lint_paths` walks the given files/directories in sorted order,
parses each module once (or reuses its content-hash cache entry, see
:mod:`repro.lint.cache`), runs every applicable single-file rule, then
assembles the per-module summaries into a project-wide call graph and
runs the whole-program rules (R006/R009,
:mod:`repro.lint.project_rules`) over it.  Inline ``# reprolint:
disable=RXXX`` suppressions and the committed baseline apply to both
passes, and findings are sorted by ``(path, line, col, rule)`` — lint
output is deterministic by construction, like everything else in this
repository.  Because the whole-program pass re-runs from summaries on
every invocation, a cold run and a cache-warm run emit byte-identical
reports.

Unparseable files are reported as rule ``E001`` findings rather than
aborting the run, so one syntax error does not hide every other finding
(the broken file simply drops out of the call graph until it parses).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.cache import LintCache, file_sha256
from repro.lint.findings import Finding, ModuleInfo
from repro.lint.graph import ModuleSummary, ProjectIndex, summarize_module
from repro.lint.project_rules import PROJECT_RULES, ProjectRule
from repro.lint.rules import RULES, Rule
from repro.lint.taint import TaintAnalysis

__all__ = [
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "all_rule_ids",
    "PARSE_ERROR_RULE",
]

#: Pseudo-rule id for files that fail to parse; not suppressible inline.
PARSE_ERROR_RULE = "E001"

_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        "build",
        "dist",
        ".git",
        ".hypothesis",
        ".pytest_cache",
        ".benchmarks",
    }
)


def _skip_dir(name: str) -> bool:
    return name in _SKIP_DIRS or name.startswith(".") or name.endswith(".egg-info")


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in a deterministic order.

    Directories are walked recursively with sorted listings; cache,
    build, hidden, and ``*.egg-info`` directories are skipped.  A path
    that exists but is neither a ``.py`` file nor a directory, or does
    not exist at all, raises :class:`~repro.errors.LintError`.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python file: {path}")
            yield path
        elif path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames if not _skip_dir(name)
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield Path(dirpath) / filename
        else:
            raise LintError(f"no such file or directory: {path}")


def all_rule_ids() -> List[str]:
    """Every registered rule id, single-file and whole-program, sorted."""
    return sorted(set(RULES) | set(PROJECT_RULES))


@dataclass
class LintReport:
    """The outcome of one lint run.

    ``files_cached``/``files_reanalyzed`` describe how the incremental
    cache behaved; they are deliberately **excluded** from
    :meth:`as_dict` so cold and warm runs serialize byte-identically.
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    files_cached: int = 0
    files_reanalyzed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict:
        counts: dict = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "counts_by_rule": self.counts_by_rule(),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def summary_line(self) -> str:
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        return (
            f"{status}: {self.files_checked} file(s) checked, "
            f"{self.suppressed} suppressed inline, "
            f"{self.baselined} baselined"
        )


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def _split_rules(rules: Optional[Iterable[str]]):
    """Validate a ``--rules`` filter against both registries."""
    if rules is None:
        file_rules: List[Rule] = [RULES[rule_id] for rule_id in sorted(RULES)]
        project_rules: List[ProjectRule] = [
            PROJECT_RULES[rule_id] for rule_id in sorted(PROJECT_RULES)
        ]
        return file_rules, project_rules
    wanted = set(rules)
    unknown = sorted(wanted - set(RULES) - set(PROJECT_RULES))
    if unknown:
        raise LintError(f"unknown rule id(s): {', '.join(unknown)}")
    file_rules = [RULES[rule_id] for rule_id in sorted(wanted & set(RULES))]
    project_rules = [
        PROJECT_RULES[rule_id] for rule_id in sorted(wanted & set(PROJECT_RULES))
    ]
    return file_rules, project_rules


def _lint_one_file(
    path: Path, relpath: str, source: str, active: Sequence[Rule]
):
    """Run the single-file pass; returns (findings, suppressed, summary)."""
    try:
        module = ModuleInfo.parse(path, relpath, source)
    except SyntaxError as exc:
        finding = Finding(
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR_RULE,
            message=f"syntax error: {exc.msg}",
        )
        return [finding], 0, None
    findings: List[Finding] = []
    suppressed = 0
    for rule in active:
        if not rule.applies(module):
            continue
        for finding in rule.check(module):
            if rule.id in module.suppressions.get(finding.line, set()):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed, summarize_module(module)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Union[str, Path]] = None,
    graph: bool = True,
    cache_path: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport`.

    Parameters
    ----------
    paths:
        Files and/or directories to lint.
    rules:
        Optional iterable of rule ids to run (default: all registered
        rules, single-file and whole-program).  Unknown ids raise
        :class:`~repro.errors.LintError`.
    baseline:
        Optional committed :class:`~repro.lint.baseline.Baseline`;
        matched findings are counted, not reported.
    root:
        Directory findings paths are reported relative to (default:
        the current working directory).
    graph:
        Run the whole-program pass (module summaries → call graph →
        R006/R009).  Disable for single-file-only linting.
    cache_path:
        Optional path to the incremental cache file.  Unchanged files
        (by sha256) reuse their cached findings and module summary;
        the whole-program pass always re-runs, so results are
        byte-identical with and without a warm cache.
    """
    file_rules, project_rules = _split_rules(rules)

    root_path = Path(root) if root is not None else Path.cwd()
    cache: Optional[LintCache] = None
    if cache_path is not None:
        cache = LintCache.load(cache_path, [rule.id for rule in file_rules])

    report = LintReport()
    summaries: List[ModuleSummary] = []
    summary_by_path: Dict[str, ModuleSummary] = {}
    relpaths: List[str] = []
    for path in iter_python_files(paths):
        report.files_checked += 1
        relpath = _relpath(path, root_path)
        relpaths.append(relpath)
        try:
            source = path.read_text()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        sha = file_sha256(source)
        entry = cache.get(relpath, sha) if cache is not None else None
        if entry is not None:
            report.files_cached += 1
            findings = entry.findings
            suppressed = entry.suppressed
            summary = entry.summary
        else:
            report.files_reanalyzed += 1
            findings, suppressed, summary = _lint_one_file(
                path, relpath, source, file_rules
            )
            if cache is not None:
                cache.put(relpath, sha, findings, suppressed, summary)
        report.suppressed += suppressed
        for finding in findings:
            if baseline is not None and baseline.matches(finding):
                report.baselined += 1
            else:
                report.findings.append(finding)
        if summary is not None:
            summaries.append(summary)
            summary_by_path[relpath] = summary

    if graph and project_rules:
        index = ProjectIndex(summaries)
        taint = TaintAnalysis(index)
        for project_rule in project_rules:
            for finding in project_rule.check(index, taint):
                summary = summary_by_path.get(finding.path)
                disabled = (
                    summary.suppressions.get(finding.line, [])
                    if summary is not None
                    else []
                )
                if project_rule.id in disabled:
                    report.suppressed += 1
                elif baseline is not None and baseline.matches(finding):
                    report.baselined += 1
                else:
                    report.findings.append(finding)

    if cache is not None and cache_path is not None:
        cache.retain(relpaths)
        cache.save(cache_path)

    report.findings.sort(key=Finding.sort_key)
    return report
