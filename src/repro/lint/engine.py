"""The reprolint engine: file traversal, rule dispatch, reporting.

:func:`lint_paths` walks the given files/directories in sorted order,
parses each module once, runs every applicable rule, applies inline
``# reprolint: disable=RXXX`` suppressions and the committed baseline,
and returns a :class:`LintReport` whose findings are sorted by
``(path, line, col, rule)`` — lint output is deterministic by
construction, like everything else in this repository.

Unparseable files are reported as rule ``E001`` findings rather than
aborting the run, so one syntax error does not hide every other finding.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, ModuleInfo
from repro.lint.rules import RULES, Rule

__all__ = ["LintReport", "iter_python_files", "lint_paths", "PARSE_ERROR_RULE"]

#: Pseudo-rule id for files that fail to parse; not suppressible inline.
PARSE_ERROR_RULE = "E001"

_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        "build",
        "dist",
        ".git",
        ".hypothesis",
        ".pytest_cache",
        ".benchmarks",
    }
)


def _skip_dir(name: str) -> bool:
    return name in _SKIP_DIRS or name.startswith(".") or name.endswith(".egg-info")


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in a deterministic order.

    Directories are walked recursively with sorted listings; cache,
    build, hidden, and ``*.egg-info`` directories are skipped.  A path
    that exists but is neither a ``.py`` file nor a directory, or does
    not exist at all, raises :class:`~repro.errors.LintError`.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python file: {path}")
            yield path
        elif path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames if not _skip_dir(name)
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield Path(dirpath) / filename
        else:
            raise LintError(f"no such file or directory: {path}")


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict:
        counts: dict = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "counts_by_rule": self.counts_by_rule(),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def summary_line(self) -> str:
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        return (
            f"{status}: {self.files_checked} file(s) checked, "
            f"{self.suppressed} suppressed inline, "
            f"{self.baselined} baselined"
        )


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport`.

    Parameters
    ----------
    paths:
        Files and/or directories to lint.
    rules:
        Optional iterable of rule ids to run (default: all registered
        rules).  Unknown ids raise :class:`~repro.errors.LintError`.
    baseline:
        Optional committed :class:`~repro.lint.baseline.Baseline`;
        matched findings are counted, not reported.
    root:
        Directory findings paths are reported relative to (default:
        the current working directory).
    """
    if rules is None:
        active: List[Rule] = [RULES[rule_id] for rule_id in sorted(RULES)]
    else:
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise LintError(f"unknown rule id(s): {', '.join(unknown)}")
        active = [RULES[rule_id] for rule_id in sorted(set(rules))]

    root_path = Path(root) if root is not None else Path.cwd()
    report = LintReport()
    for path in iter_python_files(paths):
        report.files_checked += 1
        relpath = _relpath(path, root_path)
        try:
            source = path.read_text()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            module = ModuleInfo.parse(path, relpath, source)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        for rule in active:
            if not rule.applies(module):
                continue
            for finding in rule.check(module):
                if rule.id in module.suppressions.get(finding.line, set()):
                    report.suppressed += 1
                elif baseline is not None and baseline.matches(finding):
                    report.baselined += 1
                else:
                    report.findings.append(finding)
    report.findings.sort(key=Finding.sort_key)
    return report
