"""Committed lint baselines: accepted findings that do not fail the build.

A baseline entry waives one ``(path, rule)`` pair — coarse on purpose.
Line numbers drift with every edit, so line-keyed baselines rot; a
path+rule waiver instead says "this module is exempt from this rule",
which is the only kind of exception the project wants to commit (e.g.
``__main__.py`` is a runner stub with no public API, so it carries an
R005 waiver).  Point fixes belong inline as
``# reprolint: disable=RXXX`` next to the offending line, where review
sees them.

The file is JSON (``.reprolint-baseline.json`` at the repo root by
convention), with entries sorted on write so regeneration is
diff-stable::

    {
      "version": 1,
      "entries": [
        {"path": "src/repro/__main__.py", "rule": "R005",
         "reason": "module runner stub; no public API"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Set, Tuple, Union

from repro.errors import LintError
from repro.lint.findings import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "prune_baseline",
    "write_baseline",
]

DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted ``(path, rule)`` waiver with a human-readable reason."""

    path: str
    rule: str
    reason: str = ""

    def as_dict(self) -> dict:
        return {"path": self.path, "rule": self.rule, "reason": self.reason}


@dataclass
class Baseline:
    """A set of accepted findings loaded from a committed baseline file."""

    entries: Tuple[BaselineEntry, ...] = ()

    def __post_init__(self):
        self._index: Set[Tuple[str, str]] = {
            (entry.path, entry.rule) for entry in self.entries
        }

    def matches(self, finding: Finding) -> bool:
        return (finding.path, finding.rule) in self._index

    def stale_entries(
        self, root: Union[str, Path]
    ) -> Tuple[BaselineEntry, ...]:
        """Entries whose ``path`` no longer exists under ``root``.

        A waiver for a deleted file is dead weight at best; at worst it
        silently re-activates when a *new* file is created at the same
        path, inheriting an exemption nobody reviewed for it.
        """
        root = Path(root)
        return tuple(
            entry
            for entry in self.entries
            if not (root / entry.path).exists()
        )


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Load and validate a baseline file; raises :class:`LintError`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise LintError(f"baseline {path} must be an object with 'entries'")
    entries: List[BaselineEntry] = []
    for raw in data["entries"]:
        if not isinstance(raw, dict) or "path" not in raw or "rule" not in raw:
            raise LintError(
                f"baseline {path}: every entry needs 'path' and 'rule' keys"
            )
        entries.append(
            BaselineEntry(
                path=str(raw["path"]),
                rule=str(raw["rule"]),
                reason=str(raw.get("reason", "")),
            )
        )
    return Baseline(entries=tuple(entries))


def write_baseline(
    path: Union[str, Path],
    findings: Iterable[Finding],
    reason: str = "accepted by --write-baseline",
) -> Baseline:
    """Write a baseline accepting ``findings`` (one entry per path+rule)."""
    unique = sorted({(finding.path, finding.rule) for finding in findings})
    entries = tuple(
        BaselineEntry(path=p, rule=r, reason=reason) for p, r in unique
    )
    payload = {
        "version": _FORMAT_VERSION,
        "entries": [entry.as_dict() for entry in entries],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return Baseline(entries=entries)


def prune_baseline(
    path: Union[str, Path], root: Union[str, Path]
) -> Tuple[Baseline, Tuple[BaselineEntry, ...]]:
    """Drop baseline entries whose files no longer exist under ``root``.

    Returns the pruned :class:`Baseline` and the removed entries.  The
    file is rewritten (diff-stably) only when something was actually
    stale; entry order and reasons are preserved for survivors.
    """
    baseline = load_baseline(path)
    stale = baseline.stale_entries(root)
    if not stale:
        return baseline, ()
    dead = {(entry.path, entry.rule) for entry in stale}
    kept = tuple(
        entry
        for entry in baseline.entries
        if (entry.path, entry.rule) not in dead
    )
    payload = {
        "version": _FORMAT_VERSION,
        "entries": [entry.as_dict() for entry in kept],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return Baseline(entries=kept), stale
