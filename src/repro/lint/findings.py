"""Finding and module-context value objects shared by the reprolint rules.

Kept free of engine imports so rule modules can depend on it without
cycles: rules see a parsed :class:`ModuleInfo` and emit :class:`Finding`
records; the engine (:mod:`repro.lint.engine`) owns file traversal,
suppression accounting, and baseline handling.

Source-comment conventions recognised here:

``# reprolint: disable=R001,R003``
    Suppress the listed rules on this line only.
``# reprolint: <marker>``
    Free-form markers consulted by individual rules via
    :meth:`ModuleInfo.has_marker` (e.g. ``digest-exempt`` on a dataclass
    field line, ``digest-critical`` on a class line — see R004).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, List, Set, Tuple, Union

__all__ = ["Finding", "ModuleInfo"]

_EMPTY_CHAIN: Tuple[str, ...] = ()

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Whole-program findings (R006) additionally carry ``chain``: the full
    source→sink call chain, one rendered step per element, so the
    interprocedural path that produced the finding survives into JSON
    output and ``--call-chain`` rendering.  Single-file findings leave it
    empty.
    """

    path: str  #: posix-style path, relative to the lint root when possible
    line: int  #: 1-indexed line number
    col: int  #: 0-indexed column, as reported by :mod:`ast`
    rule: str  #: rule identifier, e.g. ``"R003"``
    message: str
    chain: Tuple[str, ...] = _EMPTY_CHAIN  #: call-chain steps, sink first

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "chain": list(self.chain),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        """Rebuild a finding from :meth:`as_dict` output (cache reload)."""
        return cls(
            path=str(raw["path"]),
            line=int(raw["line"]),
            col=int(raw["col"]),
            rule=str(raw["rule"]),
            message=str(raw["message"]),
            chain=tuple(str(step) for step in raw.get("chain", ())),
        )

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def format_chain(self) -> List[str]:
        """Indented per-step lines for ``--call-chain`` text output."""
        return [f"    {'-> ' if i else 'at '}{step}" for i, step in enumerate(self.chain)]


@dataclass
class ModuleInfo:
    """A parsed module plus the source-comment metadata rules consult."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: 1-indexed line number -> rule ids disabled on that line.
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, relpath: str, source: str) -> "ModuleInfo":
        """Parse ``source`` and extract per-line suppression comments.

        Raises :class:`SyntaxError` for unparseable files; the engine
        converts that into an ``E001`` finding.
        """
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        suppressions: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {
                    token.strip()
                    for token in re.split(r"[,\s]+", match.group(1))
                    if token.strip()
                }
                if rules:
                    suppressions[lineno] = rules
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=lines,
            suppressions=suppressions,
        )

    @property
    def name(self) -> str:
        """The file name, e.g. ``"engine.py"``."""
        return self.path.name

    @property
    def path_parts(self) -> Tuple[str, ...]:
        """The relative path split into segments (posix semantics)."""
        return tuple(PurePosixPath(self.relpath.replace("\\", "/")).parts)

    def has_marker(self, lineno: int, marker: str) -> bool:
        """Whether ``# reprolint: <marker>`` appears on 1-indexed ``lineno``."""
        if not 1 <= lineno <= len(self.lines):
            return False
        return (
            re.search(
                rf"#\s*reprolint:\s*{re.escape(marker)}\b", self.lines[lineno - 1]
            )
            is not None
        )

    def finding(
        self, where: Union[int, ast.AST], rule: str, message: str
    ) -> Finding:
        """Build a :class:`Finding` at an AST node or bare line number."""
        if isinstance(where, int):
            line, col = where, 0
        else:
            line = getattr(where, "lineno", 1)
            col = getattr(where, "col_offset", 0)
        return Finding(self.relpath, line, col, rule, message)
