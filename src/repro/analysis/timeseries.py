"""Skew time series and convergence analysis.

Lemma 5.7 of the paper is a statement about *dynamics*: the potential
``Ξ`` (worst over-skew relative to the legal level) decreases at an
average rate of at least ``(1 − ε)·μ`` once nodes can react.  These
helpers expose the dynamics of a finished execution:

* :func:`spread_series` / :func:`pair_skew_series` — skew as a function
  of time (evaluated exactly at the requested instants);
* :func:`convergence_time` — when the spread first enters (and stays in)
  a band;
* :func:`recovery_rate` — the measured decay slope of the spread after a
  perturbation, for comparison with ``(1 − ε)·μ``;
* :func:`series_to_csv` and :func:`ascii_chart` — export and quick-look
  rendering.
"""

from __future__ import annotations

import io
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.sim.trace import ExecutionTrace

__all__ = [
    "spread_series",
    "pair_skew_series",
    "convergence_time",
    "recovery_rate",
    "time_above",
    "series_to_csv",
    "ascii_chart",
]

NodeId = Hashable
Series = List[Tuple[float, float]]


def _grid(t0: float, t1: float, samples: int) -> List[float]:
    if samples < 2:
        raise TraceError(f"need at least 2 samples, got {samples}")
    if not t1 > t0:
        raise TraceError(f"need t1 > t0, got [{t0}, {t1}]")
    step = (t1 - t0) / (samples - 1)
    return [t0 + i * step for i in range(samples)]


def spread_series(
    trace: ExecutionTrace,
    t0: float = 0.0,
    t1: Optional[float] = None,
    samples: int = 200,
) -> Series:
    """``(t, max_v L_v(t) − min_v L_v(t))`` on an even grid."""
    t1 = trace.horizon if t1 is None else t1
    return [(t, trace.spread_at(t)) for t in _grid(t0, t1, samples)]


def pair_skew_series(
    trace: ExecutionTrace,
    a: NodeId,
    b: NodeId,
    t0: float = 0.0,
    t1: Optional[float] = None,
    samples: int = 200,
) -> Series:
    """``(t, L_a(t) − L_b(t))`` on an even grid."""
    t1 = trace.horizon if t1 is None else t1
    return [(t, trace.skew(a, b, t)) for t in _grid(t0, t1, samples)]


def convergence_time(
    series: Series, threshold: float, hold: int = 5
) -> Optional[float]:
    """First time from which the series stays ≤ ``threshold``.

    Requires the value to remain under the threshold for at least ``hold``
    consecutive samples (and through the end of the series); returns
    ``None`` if it never converges.
    """
    run_start: Optional[float] = None
    run_length = 0
    for t, value in series:
        if value <= threshold:
            if run_start is None:
                run_start, run_length = t, 1
            else:
                run_length += 1
        else:
            run_start, run_length = None, 0
    if run_start is not None and run_length >= hold:
        return run_start
    return None


def recovery_rate(series: Series, floor: float = 0.0) -> float:
    """The average decay slope from the series' peak to its re-entry.

    Finds the maximum value, then the first subsequent time the series
    drops to ``floor + 5%`` of the peak-to-floor gap, and returns
    ``(peak − value) / elapsed`` — the measured analogue of Lemma 5.7's
    ``(1 − ε)·μ`` correction rate.  Raises if the series never recovers.
    """
    if not series:
        raise TraceError("empty series")
    peak_index = max(range(len(series)), key=lambda i: series[i][1])
    peak_time, peak_value = series[peak_index]
    target = floor + 0.05 * (peak_value - floor)
    for t, value in series[peak_index + 1:]:
        if value <= target:
            if t == peak_time:
                break
            return (peak_value - value) / (t - peak_time)
    raise TraceError(
        f"series never recovered to {target} after its peak {peak_value}"
    )


def time_above(series: Series, threshold: float) -> float:
    """Total time the series spends at or above ``threshold``.

    Supports the duration claims after Theorem 7.7: not only does a large
    local skew occur, it *persists* — e.g. a skew of ``Ω(αT·log_b D)``
    between some neighbors for ``Θ(T·√D)`` time.  Sums the grid intervals
    whose left sample is at or above the threshold (a Riemann
    approximation at the series' own resolution).
    """
    if len(series) < 2:
        raise TraceError("need at least two samples to measure a duration")
    total = 0.0
    for (t_left, value), (t_right, _) in zip(series, series[1:]):
        if value >= threshold:
            total += t_right - t_left
    return total


def series_to_csv(series: Series, header: Tuple[str, str] = ("t", "value")) -> str:
    """Render a series as CSV text (for external plotting)."""
    buffer = io.StringIO()
    buffer.write(f"{header[0]},{header[1]}\n")
    for t, value in series:
        buffer.write(f"{t!r},{value!r}\n")
    return buffer.getvalue()


def ascii_chart(
    series: Series, width: int = 72, height: int = 12, label: str = ""
) -> str:
    """A quick-look text chart of a series (terminal 'figure').

    Values are max-pooled into ``width`` columns and drawn on a
    ``height``-row grid with the value range annotated.
    """
    if not series:
        raise TraceError("empty series")
    values = [v for _, v in series]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    columns: List[float] = []
    per_column = max(1, len(series) // width)
    for i in range(0, len(series), per_column):
        chunk = values[i:i + per_column]
        columns.append(max(chunk))
    grid = [[" "] * len(columns) for _ in range(height)]
    for x, value in enumerate(columns):
        level = int(round((value - low) / span * (height - 1)))
        for y in range(level + 1):
            grid[height - 1 - y][x] = "█" if y == level else "·"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"max {high:.4f}")
    lines.extend("".join(row) for row in grid)
    lines.append(f"min {low:.4f}   t in [{series[0][0]:.1f}, {series[-1][0]:.1f}]")
    return "\n".join(lines)
