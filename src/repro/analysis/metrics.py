"""Trace metrics: envelope, rate bounds, legal state, gradient, estimates.

These turn the paper's theorem statements into checkable predicates over a
finished execution trace:

* Condition (1) / Corollary 5.3 — :func:`check_envelope`;
* Condition (2) — :func:`check_rate_bounds`;
* Definition 5.6 (legal state) — :func:`check_legal_state`;
* Corollary 7.9 (gradient property) — :func:`gradient_curve`;
* Lemma 5.4 (estimate accuracy) — :func:`estimate_accuracy_errors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.bounds import global_skew_bound, gradient_bound, legal_state_levels
from repro.core.params import SyncParams
from repro.sim.trace import ExecutionTrace

__all__ = [
    "check_envelope",
    "check_rate_bounds",
    "check_legal_state",
    "LegalStateReport",
    "gradient_curve",
    "estimate_accuracy_errors",
    "summarize",
]

NodeId = Hashable


def check_envelope(trace: ExecutionTrace, epsilon: float) -> float:
    """Worst envelope violation across all nodes and all time (exact).

    Returns the maximum of ``(1 − ε)(t − t_v) − L_v(t)`` and
    ``L_v(t) − (1 + ε)·t`` over the execution; a non-positive result means
    Condition (1) held throughout.  Both expressions are piecewise-linear,
    so evaluating at clock breakpoints (plus the horizon) is exact.
    """
    worst = float("-inf")
    for node, record in trace.logical.items():
        start = trace.start_times[node]
        points = record.breakpoints_in(0.0, trace.horizon)
        points.append(trace.horizon)
        for t in points:
            value = record.value(t)
            worst = max(worst, (1 - epsilon) * (t - start) - value)
            worst = max(worst, value - (1 + epsilon) * t)
    return worst


def check_rate_bounds(
    trace: ExecutionTrace, alpha: float, beta: Optional[float]
) -> float:
    """Worst rate-bound violation of Condition (2) (exact).

    Inspects the instantaneous logical rate just after every breakpoint.
    Returns ``max(α − rate, rate − β)`` over the run (non-positive = OK);
    pass ``beta=None`` to skip the upper bound (jump algorithms).
    """
    worst = float("-inf")
    for node, record in trace.logical.items():
        start = trace.start_times[node]
        points = [t for t in record.breakpoints_in(start, trace.horizon)]
        points.append(start)
        for t in points:
            if t >= trace.horizon:
                continue
            rate = record.rate_at(t)
            worst = max(worst, alpha - rate)
            if beta is not None:
                worst = max(worst, rate - beta)
    return worst


@dataclass
class LegalStateReport:
    """Outcome of a legal-state check (Definition 5.6)."""

    satisfied: bool
    worst_margin: float
    worst_time: float
    worst_pair: Optional[Tuple[NodeId, NodeId]]
    worst_level: Optional[int]
    times_checked: int


def check_legal_state(
    trace: ExecutionTrace,
    params: SyncParams,
    distances: Dict[NodeId, Dict[NodeId, int]],
    diameter: int,
    times: Optional[Sequence[float]] = None,
    samples: int = 50,
) -> LegalStateReport:
    """Check Definition 5.6 at the given (or sampled) times.

    For every level ``s ∈ {0, …, s_max}`` and every ordered pair at
    distance ``d ≥ C_s``, the skew must satisfy
    ``L_v(t) − L_w(t) ≤ d·(s + ½)·κ``.  Theorem 5.10's proof shows A^opt
    never leaves the legal state; this verifies it on the executed
    schedule.  Returns the worst margin ``skew − bound`` (negative = OK).
    """
    if times is None:
        step = trace.horizon / samples
        times = [i * step for i in range(1, samples + 1)]
    g = global_skew_bound(params, diameter)
    s_max = legal_state_levels(params, diameter)
    sigma = params.sigma
    # Threshold distances C_s for each level.
    thresholds = [(s, 2 * g / params.kappa * sigma ** (-s)) for s in range(s_max + 1)]
    nodes = list(trace.logical)
    worst = LegalStateReport(True, float("-inf"), 0.0, None, None, len(times))
    for t in times:
        values = {n: trace.logical[n].value(t) for n in nodes}
        for i, v in enumerate(nodes):
            for w in nodes[i + 1:]:
                d = distances[v][w]
                skew = abs(values[v] - values[w])
                for s, c_s in thresholds:
                    if d >= c_s:
                        margin = skew - d * (s + 0.5) * params.kappa
                        if margin > worst.worst_margin:
                            worst = LegalStateReport(
                                margin <= 1e-7, margin, t, (v, w), s, len(times)
                            )
    return worst


def gradient_curve(
    trace: ExecutionTrace,
    params: SyncParams,
    distances: Dict[NodeId, Dict[NodeId, int]],
    diameter: int,
) -> List[Tuple[int, float, float]]:
    """``(distance, measured worst skew, legal-state bound)`` triples.

    The measured column is the exact worst-case (over all time) skew
    between any pair at that distance; the bound column is
    :func:`repro.core.bounds.gradient_bound`.
    """
    measured = trace.max_skew_by_distance(distances)
    return [
        (d, measured[d], gradient_bound(params, diameter, d))
        for d in sorted(measured)
        if d >= 1
    ]


def estimate_accuracy_errors(
    trace: ExecutionTrace, params: SyncParams, samples_per_edge: int = 20
) -> List[float]:
    """Violation margins of the Lemma 5.4 estimate-accuracy bound.

    Lemma 5.4: for all times ``t`` after ``v`` first heard from ``w``,
    ``L_v^w(t) > L_w(t − T) − H̄0``.  The A^opt node records an
    ``estimate`` probe ``(w, raw value)`` whenever it adopts a fresh
    estimate (run with ``record_estimates=True``).  Between probes the
    estimate advances at ``h_v``; we reconstruct it and return
    ``(L_w(t − T) − H̄0) − L_v^w(t)`` sampled on each inter-probe interval
    (all values should be negative).
    """
    per_pair: Dict[Tuple[NodeId, NodeId], List[Tuple[float, float]]] = {}
    for probe in trace.probes_named("estimate"):
        sender, raw_value = probe.value
        per_pair.setdefault((probe.node, sender), []).append((probe.time, raw_value))
    margins: List[float] = []
    delay_bound = params.delay_bound
    h_bar = params.h_bar_0
    for (v, w), updates in per_pair.items():
        hw_v = trace.hardware[v]
        record_w = trace.logical[w]
        for index, (t_update, raw_value) in enumerate(updates):
            t_next = (
                updates[index + 1][0] if index + 1 < len(updates) else trace.horizon
            )
            if t_next <= t_update:
                continue
            step = (t_next - t_update) / samples_per_edge
            for i in range(samples_per_edge + 1):
                t = min(t_update + i * step, t_next)
                estimate = raw_value + hw_v.value(t) - hw_v.value(t_update)
                reference = record_w.value(max(t - delay_bound, 0.0)) - h_bar
                margins.append(reference - estimate)
    return margins


def summarize(
    trace: ExecutionTrace, params: SyncParams, diameter: int
) -> Dict[str, float]:
    """One-stop summary comparing an execution against the paper's bounds."""
    from repro.core.bounds import local_skew_bound  # local import avoids cycle

    global_extremum = trace.global_skew()
    local_extremum = trace.local_skew()
    return {
        "global_skew": global_extremum.value,
        "global_bound": global_skew_bound(params, diameter),
        "local_skew": local_extremum.value,
        "local_bound": local_skew_bound(params, diameter),
        "envelope_margin": check_envelope(trace, params.epsilon),
        "rate_margin": check_rate_bounds(trace, params.alpha, params.beta),
        "messages": float(trace.total_messages()),
        "events": float(trace.events_processed),
    }
