"""Message, bit, and space complexity accounting (Section 6 of the paper).

Section 6 proves three complexity properties of A^opt:

* **message complexity** (§6.1) — amortized message frequency ``Θ(1/H0)``
  per node, i.e. ``Θ(ε̂/T̂)`` for the recommended ``H0 = T̂/μ``;
* **bit complexity** (§6.2) — messages need only ``O(log 1/μ)`` bits (and
  ``O(1)`` with the minimum-send-gap variant);
* **space complexity** (§6.3) — per node
  ``O(log fT + log μD + Δ(log 1/μ + log εμD + log log_{μ/ε} D))`` bits.

The functions here measure the first two from traces and evaluate the
third as a closed-form budget for comparison with the variant
implementations in :mod:`repro.variants.bit_budget`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.core.params import SyncParams
from repro.sim.trace import ExecutionTrace

__all__ = [
    "MessageStats",
    "BitStats",
    "message_stats",
    "bit_stats",
    "amortized_frequency_bound",
    "space_estimate_bits",
    "encoded_state_bits",
]

NodeId = Hashable


@dataclass(frozen=True)
class MessageStats:
    """Per-execution message accounting."""

    total: int
    per_node_mean: float
    per_node_max: int
    mean_frequency: float  # messages per unit time per node
    max_frequency: float


@dataclass(frozen=True)
class BitStats:
    """Per-execution bit accounting."""

    total_bits: int
    mean_bits_per_message: float
    max_message_bits: Optional[int]  # None without a message log


def message_stats(trace: ExecutionTrace) -> MessageStats:
    """Counts and amortized frequencies from a trace."""
    counts = trace.messages_sent
    nodes = list(counts)
    frequencies = [trace.amortized_message_frequency(n) for n in nodes]
    total = sum(counts.values())  # reprolint: exact-fold (int counters)
    return MessageStats(
        total=total,
        per_node_mean=total / len(nodes),
        per_node_max=max(counts.values()),
        mean_frequency=sum(frequencies) / len(frequencies),
        max_frequency=max(frequencies),
    )


def bit_stats(trace: ExecutionTrace) -> BitStats:
    """Bit totals; per-message maximum requires ``record_messages=True``."""
    total_messages = trace.total_messages()
    total_bits = trace.total_bits()
    max_bits = (
        max((m.size_bits for m in trace.message_log), default=0)
        if trace.message_log
        else None
    )
    return BitStats(
        total_bits=total_bits,
        mean_bits_per_message=(total_bits / total_messages) if total_messages else 0.0,
        max_message_bits=max_bits,
    )


def amortized_frequency_bound(params: SyncParams) -> float:
    """§6.1: the amortized send frequency is at most ``(1 + ε)/H0``.

    ``L^max`` advances at most at rate ``1 + ε`` system-wide (Corollary
    5.2 (ii)) and a node sends once per ``H0`` of ``L^max`` progress, plus
    the one-off initialization send which amortizes away.
    """
    return (1 + params.epsilon) / params.h0


def encoded_state_bits(
    node, params: SyncParams, hardware_now: float, logical_now: float
) -> int:
    """Bits to store one A^opt node's *current* state per the §6.3 encoding.

    Applies the paper's storage scheme to the node's live values:

    * per neighbor ``w``: the skew ``L_v − L_v^w`` rounded to multiples of
      ``μ·H0`` (the §6.3 resolution) — ``⌈log2(|skew|/(μH0) + 2)⌉`` bits
      each plus a sign bit;
    * the gap ``L^max_v − L_v`` as a multiple of ``H0`` (it is bounded by
      ``G`` and the announced part is a multiple of ``H0``);
    * per neighbor: the elapsed-local-time counter at resolution
      ``Θ(μ·H0)`` over one send period — ``⌈log2(1/μ + 2)⌉`` bits;
    * the offset to the next send mark, also at resolution ``μ·H0``.

    This is the measured companion of :func:`space_estimate_bits`: the
    formula bounds the worst case, this counts what the encoding needs for
    the state actually reached.
    """
    quantum = params.mu * params.h0

    def width(value_range: float) -> int:
        steps = max(value_range, 0.0) / quantum + 2
        return max(1, math.ceil(math.log2(steps)))

    bits = 0
    # Per-neighbor skew registers (sign + magnitude).
    for neighbor in node.neighbors:
        estimate = node.estimate_of(neighbor, hardware_now)
        if estimate is None:
            bits += 1  # "unknown" flag
            continue
        bits += 1 + width(abs(estimate - logical_now))
    # L^max − L as a multiple of H0 (announced parts are multiples).
    lmax_gap = node.l_max(hardware_now) - logical_now
    bits += max(1, math.ceil(math.log2(max(lmax_gap, 0.0) / params.h0 + 2)))
    # Per-neighbor elapsed-time counters at resolution mu*H0 over <= H0.
    bits += len(node.neighbors) * max(1, math.ceil(math.log2(1 / params.mu + 2)))
    # Next-mark offset within one H0 period.
    bits += max(1, math.ceil(math.log2(1 / params.mu + 2)))
    return bits


def _log2_at_least_one(x: float) -> float:
    """``max(log2(x), 1)`` — each stored quantity needs at least one bit.

    Mirrors footnote 12 of the paper ("each summand has to be replaced by
    the maximum of the term itself and 1").
    """
    return max(1.0, math.log2(max(x, 2.0)))


def space_estimate_bits(
    params: SyncParams,
    diameter: int,
    degree: int,
    clock_frequency: float,
) -> float:
    """§6.3 closed-form space budget in bits (up to the hidden constants).

    ``O(log(fT) + log(μD) + Δ·(log(1/μ) + log(εμD) + log log_{μ/ε} D))``
    evaluated with unit constants; used as the comparison line for the
    bit-budget variant's measured state size.
    """
    if diameter < 1:
        raise ValueError(f"diameter must be >= 1, got {diameter}")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    f_t = clock_frequency * max(params.delay_bound, 1e-12)
    mu_d = params.mu * diameter
    per_neighbor = (
        _log2_at_least_one(1 / params.mu)
        + _log2_at_least_one(params.epsilon * params.mu * diameter)
        + _log2_at_least_one(
            math.log(max(diameter, 2), max(params.mu / params.epsilon, 2))
        )
    )
    return (
        _log2_at_least_one(f_t)
        + _log2_at_least_one(mu_d)
        + degree * per_neighbor
    )
