"""Vectorized (numpy) skew evaluation for large traces.

`ExecutionTrace.global_skew` is exact but pure-Python: it evaluates every
node at every merged breakpoint.  For large experiments this dominates
analysis time.  This module provides a numpy fast path with the *same
exactness guarantee*:

* each logical clock is piecewise-linear, so sampling it at its own
  breakpoints and linearly interpolating (``np.interp``) onto any other
  grid reproduces it exactly;
* the spread is convex between merged breakpoints, so its maximum over
  the merged grid is the true supremum.

Clock jumps (β = ∞ algorithms) are discontinuities that ``np.interp``
cannot represent, so traces containing jumps fall back to the exact
pure-Python path automatically.

numpy is an optional dependency: importing this module without numpy
raises ``ImportError``; the rest of the library never requires it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.trace import ExecutionTrace, SkewExtremum

__all__ = ["global_skew_fast", "spread_profile"]


def _has_jumps(trace: ExecutionTrace) -> bool:
    return any(record.jump_times for record in trace.logical.values())


def _merged_grid(trace: ExecutionTrace, t0: float, t1: float) -> np.ndarray:
    points = {t0, t1}
    for record in trace.logical.values():
        points.update(record.breakpoints_in(t0, t1))
    return np.array(sorted(points))


def _values_matrix(trace: ExecutionTrace, grid: np.ndarray) -> np.ndarray:
    """(n_nodes, n_points) logical clock values, exactly, via interp."""
    rows = []
    t0, t1 = float(grid[0]), float(grid[-1])
    for record in trace.logical.values():
        own = sorted(set(record.breakpoints_in(t0, t1)) | {t0, t1})
        xs = np.array(own)
        ys = np.array([record.value(t) for t in own])
        rows.append(np.interp(grid, xs, ys))
    return np.vstack(rows)


def global_skew_fast(
    trace: ExecutionTrace, t0: Optional[float] = None, t1: Optional[float] = None
) -> SkewExtremum:
    """Exact worst-case global skew, vectorized.

    Semantically identical to :meth:`ExecutionTrace.global_skew` for
    jump-free traces (and it delegates to it otherwise).
    """
    if _has_jumps(trace):
        return trace.global_skew(t0, t1)
    t0 = 0.0 if t0 is None else t0
    t1 = trace.horizon if t1 is None else t1
    grid = _merged_grid(trace, t0, t1)
    values = _values_matrix(trace, grid)
    spreads = values.max(axis=0) - values.min(axis=0)
    index = int(spreads.argmax())
    nodes = list(trace.logical)
    column = values[:, index]
    return SkewExtremum(
        value=float(spreads[index]),
        time=float(grid[index]),
        node_a=nodes[int(column.argmax())],
        node_b=nodes[int(column.argmin())],
    )


def spread_profile(
    trace: ExecutionTrace, t0: Optional[float] = None, t1: Optional[float] = None
):
    """``(times, spreads)`` arrays at every merged breakpoint (exact).

    The complete spread trajectory — the data behind a "skew over time"
    figure — at breakpoint resolution rather than on a sampling grid.
    """
    if _has_jumps(trace):
        raise NotImplementedError(
            "spread_profile does not support traces with clock jumps"
        )
    t0 = 0.0 if t0 is None else t0
    t1 = trace.horizon if t1 is None else t1
    grid = _merged_grid(trace, t0, t1)
    values = _values_matrix(trace, grid)
    return grid, values.max(axis=0) - values.min(axis=0)
