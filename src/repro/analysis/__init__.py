"""Measurement, accounting and reporting utilities for experiments."""

from repro.analysis.complexity import (
    BitStats,
    MessageStats,
    bit_stats,
    message_stats,
    space_estimate_bits,
)
from repro.analysis.metrics import (
    LegalStateReport,
    check_envelope,
    check_legal_state,
    check_rate_bounds,
    estimate_accuracy_errors,
    gradient_curve,
    summarize,
)
from repro.analysis.montecarlo import (
    DistributionSummary,
    SkewSample,
    run_monte_carlo,
    summarize_samples,
)
from repro.analysis.tables import format_table
from repro.analysis.timeseries import (
    ascii_chart,
    convergence_time,
    pair_skew_series,
    recovery_rate,
    series_to_csv,
    spread_series,
    time_above,
)

__all__ = [
    "run_monte_carlo",
    "summarize_samples",
    "SkewSample",
    "DistributionSummary",
    "spread_series",
    "pair_skew_series",
    "convergence_time",
    "recovery_rate",
    "time_above",
    "series_to_csv",
    "ascii_chart",
    "summarize",
    "gradient_curve",
    "check_envelope",
    "check_rate_bounds",
    "check_legal_state",
    "estimate_accuracy_errors",
    "LegalStateReport",
    "message_stats",
    "bit_stats",
    "space_estimate_bits",
    "MessageStats",
    "BitStats",
    "format_table",
]
