"""Plain-text table rendering for benchmark reports.

EXPERIMENTS.md and the benchmark output both use these fixed-width tables
so paper-vs-measured comparisons stay readable in a terminal and in git
diffs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["format_table", "format_value", "format_latex_table"]


def format_value(value: Any, precision: int = 4) -> str:
    """Render one cell: floats get fixed precision, the rest ``str``.

    >>> format_value(3.14159265)
    '3.1416'
    >>> format_value(True)
    'yes'
    >>> format_value(0.0)
    '0'
    """
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-4:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_latex_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    precision: int = 4,
    caption: str = "",
    label: str = "",
) -> str:
    """Render rows as a LaTeX ``tabular`` (optionally wrapped in a table).

    For dropping reproduction results straight into a paper draft.
    Special LaTeX characters in cells are escaped.

    >>> print(format_latex_table(["D", "G"], [[4, 4.33]]))
    \\begin{tabular}{ll}
    \\toprule
    D & G \\\\
    \\midrule
    4 & 4.3300 \\\\
    \\bottomrule
    \\end{tabular}
    """
    def escape(text: str) -> str:
        for char in ("&", "%", "#", "_"):
            text = text.replace(char, "\\" + char)
        return text

    lines: List[str] = []
    if caption or label:
        lines.append("\\begin{table}[t]")
        lines.append("\\centering")
    body: List[str] = []
    column_spec = "l" * len(headers)
    body.append(f"\\begin{{tabular}}{{{column_spec}}}")
    body.append("\\toprule")
    body.append(" & ".join(escape(h) for h in headers) + " \\\\")
    body.append("\\midrule")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        body.append(
            " & ".join(escape(format_value(cell, precision)) for cell in row)
            + " \\\\"
        )
    body.append("\\bottomrule")
    body.append("\\end{tabular}")
    lines.extend(body)
    if caption:
        lines.append(f"\\caption{{{escape(caption)}}}")
    if label:
        lines.append(f"\\label{{{label}}}")
    if caption or label:
        lines.append("\\end{table}")
    return "\n".join(lines)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    precision: int = 4,
    title: str = "",
) -> str:
    """Align ``rows`` under ``headers`` with a separator line."""
    rendered: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
