"""Monte-Carlo harness: skew *distributions* under randomized models.

The paper proves worst-case bounds; its related-work section (Section 2)
contrasts them with the random-delay regime of the sensor-network
literature, where delays are i.i.d. rather than adversarial and typical
skews are far below the worst case (Lenzen–Sommer–Wattenhofer 2009b show
``Õ(√D)`` global skew w.h.p. in that model).

This harness runs many seeded executions and aggregates the skew
distribution, quantifying the worst-case-vs-typical gap on our substrate:
the worst case is achieved by E1's adversary, while random executions
should concentrate well below it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence

from repro.core.interfaces import Algorithm
from repro.errors import ConfigurationError
from repro.sim.delays import DelayModel
from repro.sim.drift import DriftModel
from repro.sim.runner import run_execution
from repro.topology.generators import Topology

__all__ = ["SkewSample", "DistributionSummary", "run_monte_carlo", "summarize_samples"]

NodeId = Hashable


@dataclass(frozen=True)
class SkewSample:
    """Skews of one randomized execution."""

    seed: int
    global_skew: float
    local_skew: float
    final_spread: float
    messages: int


@dataclass(frozen=True)
class DistributionSummary:
    """Aggregate statistics of a sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "DistributionSummary":
        if not values:
            raise ConfigurationError("cannot summarize an empty sample set")
        ordered = sorted(values)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((v - mean) ** 2 for v in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            median=ordered[n // 2],
            p90=ordered[min(n - 1, int(0.9 * n))],
            maximum=ordered[-1],
        )


def run_monte_carlo(
    topology: Topology,
    algorithm_factory: Callable[[], Algorithm],
    drift_factory: Callable[[int], DriftModel],
    delay_factory: Callable[[int], DelayModel],
    horizon: float,
    runs: int = 20,
    seeds: Optional[Sequence[int]] = None,
) -> List[SkewSample]:
    """Run ``runs`` seeded executions and collect their skews.

    ``drift_factory`` / ``delay_factory`` receive the seed, so each run
    draws fresh (but reproducible) randomness.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    seeds = range(runs) if seeds is None else seeds
    samples: List[SkewSample] = []
    for seed in seeds:
        trace = run_execution(
            topology,
            algorithm_factory(),
            drift_factory(seed),
            delay_factory(seed),
            horizon,
        )
        samples.append(
            SkewSample(
                seed=seed,
                global_skew=trace.global_skew().value,
                local_skew=trace.local_skew().value,
                final_spread=trace.spread_at(horizon),
                messages=trace.total_messages(),
            )
        )
    return samples


def summarize_samples(
    samples: Sequence[SkewSample], metric: str = "global_skew"
) -> DistributionSummary:
    """Summary statistics for one metric over a sample set."""
    if metric not in ("global_skew", "local_skew", "final_spread", "messages"):
        raise ConfigurationError(f"unknown metric {metric!r}")
    return DistributionSummary.of([getattr(s, metric) for s in samples])
