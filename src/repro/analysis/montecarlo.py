"""Monte-Carlo harness: skew *distributions* under randomized models.

The paper proves worst-case bounds; its related-work section (Section 2)
contrasts them with the random-delay regime of the sensor-network
literature, where delays are i.i.d. rather than adversarial and typical
skews are far below the worst case (Lenzen–Sommer–Wattenhofer 2009b show
``Õ(√D)`` global skew w.h.p. in that model).

This harness runs many seeded executions and aggregates the skew
distribution, quantifying the worst-case-vs-typical gap on our substrate:
the worst case is achieved by E1's adversary, while random executions
should concentrate well below it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence, Union

from repro.core.interfaces import Algorithm
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.pool import SweepExecutor
from repro.exec.spec import ExecutionSpec
from repro.exec.summary import to_skew_samples
from repro.sim.delays import DelayModel
from repro.sim.drift import DriftModel
from repro.topology.generators import Topology

__all__ = ["SkewSample", "DistributionSummary", "run_monte_carlo", "summarize_samples"]

NodeId = Hashable


@dataclass(frozen=True)
class SkewSample:
    """Skews of one randomized execution."""

    seed: int
    global_skew: float
    local_skew: float
    final_spread: float
    messages: int


@dataclass(frozen=True)
class DistributionSummary:
    """Aggregate statistics of a sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "DistributionSummary":
        if not values:
            raise ConfigurationError("cannot summarize an empty sample set")
        ordered = sorted(values)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((v - mean) ** 2 for v in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            median=_quantile(ordered, 0.5),
            p90=_quantile(ordered, 0.9),
            maximum=ordered[-1],
        )


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a pre-sorted sample.

    The standard ``h = (n − 1)·q`` definition (numpy's default): the
    median of an even-sized sample is the mean of the two middle values,
    and p90 interpolates between the bracketing order statistics instead
    of snapping to a biased nearest rank.
    """
    n = len(ordered)
    h = (n - 1) * q
    low = math.floor(h)
    high = min(low + 1, n - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (h - low)


def run_monte_carlo(
    topology: Topology,
    algorithm_factory: Callable[[], Algorithm],
    drift_factory: Callable[[int], DriftModel],
    delay_factory: Callable[[int], DelayModel],
    horizon: float,
    runs: int = 20,
    seeds: Optional[Sequence[int]] = None,
    workers: Union[int, str] = 1,
    cache: Optional[ResultCache] = None,
) -> List[SkewSample]:
    """Run ``runs`` seeded executions and collect their skews.

    ``drift_factory`` / ``delay_factory`` receive the seed, so each run
    draws fresh (but reproducible) randomness.  The factories are called
    in this process; only the built (picklable) models travel to workers
    when ``workers`` > 1 or ``'auto'``.  Parallel sample sets are
    byte-identical to serial ones.
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be >= 1, got {runs}")
    seeds = list(range(runs)) if seeds is None else list(seeds)
    specs = [
        ExecutionSpec(
            topology=topology,
            algorithm=algorithm_factory(),
            drift=drift_factory(seed),
            delay=delay_factory(seed),
            horizon=horizon,
            seed=seed,
            label=f"seed-{seed}",
        )
        for seed in seeds
    ]
    executor = SweepExecutor(workers=workers, cache=cache)
    summaries = executor.run_summaries(specs)
    return to_skew_samples(summaries, seeds)


def summarize_samples(
    samples: Sequence[SkewSample], metric: str = "global_skew"
) -> DistributionSummary:
    """Summary statistics for one metric over a sample set."""
    if metric not in ("global_skew", "local_skew", "final_spread", "messages"):
        raise ConfigurationError(f"unknown metric {metric!r}")
    return DistributionSummary.of([getattr(s, metric) for s in samples])
