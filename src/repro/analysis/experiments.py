"""Shared experiment harnesses used by the benchmark suite.

The paper's upper bounds quantify over *all* executions; an experiment can
only run finitely many, so each upper-bound benchmark runs a *suite* of
adversarial schedules (the known worst-case patterns) and reports the
worst observation, which must stay below the bound.  Lower-bound
benchmarks instead replay the constructions from Section 7 (see
:mod:`repro.adversary`), whose forced skew must come close to the bound
from below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.interfaces import Algorithm
from repro.core.params import SyncParams
from repro.exec.cache import ResultCache
from repro.exec.pool import SweepExecutor
from repro.exec.spec import ExecutionSpec
from repro.exec.summary import summarize_trace, to_suite_result
from repro.sim.delays import (
    ConstantDelay,
    DelayModel,
    DistanceDirectedDelay,
    UniformDelay,
    ZeroDelay,
)
from repro.sim.drift import (
    AlternatingDrift,
    ConstantDrift,
    DriftModel,
    RandomWalkDrift,
    TwoGroupDrift,
)
from repro.sim.trace import ExecutionTrace
from repro.topology.generators import Topology
from repro.topology.properties import bfs_distances, diameter as graph_diameter

__all__ = [
    "AdversaryCase",
    "standard_adversaries",
    "SuiteResult",
    "run_adversary_suite",
    "suite_specs",
    "default_horizon",
]

NodeId = Hashable


@dataclass(frozen=True)
class AdversaryCase:
    """A named (drift model, delay model) pair — one adversary strategy."""

    name: str
    drift: DriftModel
    delay: DelayModel


def standard_adversaries(
    topology: Topology, params: SyncParams, seed: int = 0
) -> List[AdversaryCase]:
    """The standard worst-case-pattern suite for upper-bound experiments.

    Covers the known skew-building mechanisms: the slow initialization
    wave, coherent two-group drift, antiphase neighbor drift, random
    drift walks, direction-biased delays, and random delays.
    """
    epsilon = params.epsilon
    delay_bound = params.delay_bound
    nodes = topology.nodes
    half = set(nodes[: len(nodes) // 2])
    phases = {node: index % 2 for index, node in enumerate(nodes)}
    reference_distances = bfs_distances(topology, nodes[0])
    # Antiphase period long enough for skew to accumulate between flips but
    # short enough for several flips per run.
    flip_period = max(
        10 * params.h0, params.kappa / max(2 * epsilon, 1e-9) / 4
    )
    cases = [
        AdversaryCase(
            "slow-delays",
            ConstantDrift(epsilon),
            ConstantDelay(delay_bound, max_delay=delay_bound),
        ),
        AdversaryCase(
            "two-group-drift",
            TwoGroupDrift(epsilon, half),
            ConstantDelay(delay_bound, max_delay=delay_bound),
        ),
        AdversaryCase(
            "antiphase-drift",
            AlternatingDrift(epsilon, flip_period, phases),
            ConstantDelay(delay_bound, max_delay=delay_bound),
        ),
        AdversaryCase(
            "random-walk-drift",
            RandomWalkDrift(epsilon, step_period=5 * params.h0,
                            step_size=epsilon / 2, seed=seed),
            UniformDelay(0.0, delay_bound, seed=seed),
        ),
        AdversaryCase(
            "directed-delays",
            TwoGroupDrift(epsilon, half),
            DistanceDirectedDelay(reference_distances, toward=delay_bound, away=0.0),
        ),
        AdversaryCase(
            "zero-delays",
            TwoGroupDrift(epsilon, half),
            ZeroDelay(max_delay=delay_bound),
        ),
    ]
    return cases


@dataclass
class SuiteResult:
    """Worst observations over a suite of adversary cases."""

    worst_global: float
    worst_global_case: str
    worst_local: float
    worst_local_case: str
    per_case: Dict[str, Dict[str, float]]
    traces: Dict[str, ExecutionTrace]


def default_horizon(params: SyncParams, diameter: int) -> float:
    """A horizon long enough for skew to build and be corrected repeatedly.

    Covers the initialization flood (``D·T``), several catch-up periods
    (skew up to ``G`` corrected at rate ``≈ μ``), and several send
    periods.
    """
    base = max(params.delay_bound, params.h0 / 4)
    correction = params.kappa / max(params.mu * (1 - params.epsilon), 1e-9)
    return 4 * diameter * base + 6 * correction + 20 * params.h0


def suite_specs(
    topology: Topology,
    algorithm_factory: Callable[[], Algorithm],
    params: SyncParams,
    horizon: Optional[float] = None,
    cases: Optional[Sequence[AdversaryCase]] = None,
    initiators=None,
) -> List[ExecutionSpec]:
    """One :class:`ExecutionSpec` per adversary case, labeled by case name.

    The factory is invoked here, in the calling process, once per case —
    each spec ships a fresh algorithm *instance* to its worker, so the
    factory itself need not be picklable (lambdas are fine).
    """
    d = graph_diameter(topology)
    if horizon is None:
        horizon = default_horizon(params, d)
    if cases is None:
        cases = standard_adversaries(topology, params)
    return [
        ExecutionSpec(
            topology=topology,
            algorithm=algorithm_factory(),
            drift=case.drift,
            delay=case.delay,
            horizon=horizon,
            initiators=initiators,
            label=case.name,
        )
        for case in cases
    ]


def run_adversary_suite(
    topology: Topology,
    algorithm_factory: Callable[[], Algorithm],
    params: SyncParams,
    horizon: Optional[float] = None,
    cases: Optional[Sequence[AdversaryCase]] = None,
    keep_traces: bool = False,
    initiators=None,
    workers: Union[int, str] = 1,
    cache: Optional[ResultCache] = None,
) -> SuiteResult:
    """Run every adversary case and aggregate the worst skews.

    ``workers`` > 1 (or ``'auto'``) fans the cases out over a
    :class:`~repro.exec.pool.SweepExecutor` process pool; results are
    byte-identical to the serial path.  ``keep_traces=True`` forces the
    in-process path regardless of ``workers`` (live traces cannot cross
    the process boundary) and bypasses the cache.
    """
    specs = suite_specs(
        topology, algorithm_factory, params,
        horizon=horizon, cases=cases, initiators=initiators,
    )
    if keep_traces:
        traces: Dict[str, ExecutionTrace] = {}
        summaries = []
        for spec in specs:
            trace, monitors = spec.run()
            traces[spec.label] = trace
            summaries.append(
                summarize_trace(
                    trace, digest=spec.digest(), label=spec.label, monitors=monitors
                )
            )
        return to_suite_result(summaries, traces=traces)
    executor = SweepExecutor(workers=workers, cache=cache)
    summaries = executor.run_summaries(specs)
    return to_suite_result(summaries)
