"""One-shot reproduction report generator.

``python -m repro report`` (or :func:`generate_report`) runs a compact
subset of the experiment suite and renders a self-contained markdown
report of paper-vs-measured results — the quick-look companion to the
full ``pytest benchmarks/ --benchmark-only`` run.

Sections:

1. parameters and closed-form bounds;
2. Theorem 5.5 / 5.10 upper bounds vs the adversary suite (E1/E2);
3. Theorem 7.2 forced global skew (E5);
4. baseline comparison under the delay-switch adversary (E8, small);
5. conditions audit (E9);
6. run telemetry for the small suite (hot specs and phases; see
   ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import io
from typing import List, Optional

from repro.adversary.global_bound import run_global_lower_bound
from repro.analysis.experiments import run_adversary_suite
from repro.analysis.metrics import check_envelope, check_rate_bounds
from repro.analysis.tables import format_table
from repro.baselines import MaxForwardAlgorithm
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.sim.delays import FunctionDelay
from repro.sim.drift import PerNodeDrift
from repro.sim.runner import run_execution
from repro.topology.generators import line

__all__ = ["generate_report"]


def _bounds_section(params: SyncParams, diameters: List[int]) -> str:
    rows = [
        [d, global_skew_bound(params, d), local_skew_bound(params, d)]
        for d in diameters
    ]
    return format_table(
        ["D", "global bound G (Thm 5.5)", "local bound (Thm 5.10)"], rows
    )


def _upper_bounds_section(
    params: SyncParams, sizes: List[int], workers=1, cache=None
) -> str:
    rows = []
    for n in sizes:
        suite = run_adversary_suite(
            line(n), lambda: AoptAlgorithm(params), params,
            workers=workers, cache=cache,
        )
        d = n - 1
        rows.append(
            [
                d,
                suite.worst_global,
                global_skew_bound(params, d),
                suite.worst_local,
                local_skew_bound(params, d),
            ]
        )
    return format_table(
        ["D", "worst global", "G", "worst local", "local bound"], rows
    )


def _lower_bound_section(params: SyncParams, n: int) -> str:
    result = run_global_lower_bound(
        line(n), AoptAlgorithm(params), params.epsilon, params.delay_bound
    )
    rows = [[n - 1, result.forced_skew, result.predicted, result.rho]]
    return format_table(["D", "forced skew", "(1+rho)DT", "rho"], rows)


def _baseline_section(params: SyncParams, n: int) -> str:
    t_switch = 20.0 * n
    blocked = n - 2

    def delay_fn(sender, receiver, send_time, seq):
        if receiver == sender + 1 and send_time >= t_switch and sender < blocked:
            return 0.0
        return params.delay_bound

    drift = PerNodeDrift(
        params.epsilon, {0: 1 + params.epsilon}, default=1 - params.epsilon
    )
    rows = []
    for name, algorithm in (
        ("aopt", AoptAlgorithm(params)),
        ("max-forward", MaxForwardAlgorithm(send_period=params.h0)),
    ):
        trace = run_execution(
            line(n),
            algorithm,
            drift,
            FunctionDelay(delay_fn, max_delay=params.delay_bound),
            t_switch + 50.0,
        )
        rows.append([name, trace.local_skew().value])
    return format_table(["algorithm", "worst neighbor skew"], rows)


def _conditions_section(params: SyncParams, n: int) -> str:
    suite = run_adversary_suite(
        line(n), lambda: AoptAlgorithm(params), params, keep_traces=True
    )
    envelope = max(
        check_envelope(trace, params.epsilon) for trace in suite.traces.values()
    )
    rate = max(
        check_rate_bounds(trace, params.alpha, params.beta)
        for trace in suite.traces.values()
    )
    return format_table(
        ["condition", "worst margin (negative = OK)"],
        [["envelope (1)", envelope], ["rate bounds (2)", rate]],
    )


def _telemetry_section(params: SyncParams, n: int) -> str:
    # Lazy import: repro.obs.profile pulls in the exec layer.
    from repro.analysis.experiments import suite_specs
    from repro.obs.profile import profile_specs

    specs = suite_specs(line(n), lambda: AoptAlgorithm(params), params)
    report = profile_specs(specs)
    spec_rows = [
        [profile.label, f"{profile.seconds:.4f}",
         profile.metrics.events_processed, f"{profile.events_per_second:,.0f}"]
        for profile in report.hot_specs(3)
    ]
    phase_rows = [
        [phase, f"{seconds:.4f}"]
        for phase, seconds in report.phase_totals().items()
    ]
    return (
        format_table(["spec (top 3)", "wall s", "events", "events/s"], spec_rows)
        + "\n"
        + format_table(["phase", "wall s"], phase_rows)
    )


def generate_report(
    epsilon: float = 0.05,
    delay_bound: float = 1.0,
    quick: bool = True,
    workers=1,
    cache=None,
) -> str:
    """Build the markdown report text.

    ``workers``/``cache`` are forwarded to the adversary-suite sections,
    which fan out over a :class:`~repro.exec.pool.SweepExecutor` when
    ``workers`` > 1 or ``'auto'`` (the conditions audit keeps traces and
    therefore always runs in-process).
    """
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)
    sizes = [5, 9] if quick else [5, 9, 17, 33]
    lower_n = 7 if quick else 13
    baseline_n = 9 if quick else 17

    out = io.StringIO()
    out.write("# Reproduction report — Tight Bounds for Clock Synchronization\n\n")
    out.write(
        f"Model: epsilon={params.epsilon}, T={params.delay_bound}; "
        f"derived mu={params.mu:.4f}, H0={params.h0:.4f}, "
        f"kappa={params.kappa:.4f}, sigma={params.sigma}.\n\n"
    )
    out.write("## Closed-form bounds\n\n```\n")
    out.write(_bounds_section(params, [d for d in (4, 8, 16, 32, 64)]))
    out.write("\n```\n\n## Upper bounds vs adversary suite (Theorems 5.5, 5.10)\n\n```\n")
    out.write(_upper_bounds_section(params, sizes, workers=workers, cache=cache))
    out.write("\n```\n\n## Forced global skew (Theorem 7.2)\n\n```\n")
    out.write(_lower_bound_section(params, lower_n))
    out.write("\n```\n\n## Baseline local skew under the delay-switch adversary\n\n```\n")
    out.write(_baseline_section(params, baseline_n))
    out.write("\n```\n\n## Conditions (1) and (2) audit\n\n```\n")
    out.write(_conditions_section(params, sizes[0]))
    out.write("\n```\n\n## Run telemetry (small suite)\n\n```\n")
    out.write(_telemetry_section(params, sizes[0]))
    out.write(
        "\n```\n\nFull tables: `pytest benchmarks/ --benchmark-only` "
        "(experiments E1-E21; see EXPERIMENTS.md).\n"
    )
    return out.getvalue()
