"""Model variants and protocol refinements (Sections 6 and 8).

* :mod:`repro.variants.min_gap` — §6.1: bounded message frequency via a
  minimum hardware-time gap between sends (trades global skew for it).
* :mod:`repro.variants.bit_budget` — §6.2: constant-size messages via
  progress deltas and capped ``L^max`` increments.
* :mod:`repro.variants.bounded_delays` — §8.3: delays in ``[T1, T2]``
  with known-minimum compensation.
* :mod:`repro.variants.discrete` — §8.4: hardware clocks with tick
  granularity ``1/f``.
* :mod:`repro.variants.external` — §8.5: external synchronization to a
  real-time source node.
* :mod:`repro.variants.envelope` — §8.6: the hardware-clock envelope
  condition.
* :mod:`repro.variants.fault_tolerant` — robustness extension: estimate
  expiry and recovery re-initialization for fault-injected executions
  (see :mod:`repro.faults` and ``docs/FAULTS.md``).
* :mod:`repro.variants.kllo_dynamic` — the same machinery under its
  dynamic-networks name for :class:`~repro.topology.dynamic.TopologySchedule`
  executions (see ``docs/DYNAMIC.md``).
* :mod:`repro.variants.ftgcs` — Bund–Lenzen–Rosenbaum fault-tolerant GCS:
  per-neighbor estimate filtering that survives Byzantine neighbors
  (< 1/3 of each node's degree; see ``docs/FAULTS.md``).
* :mod:`repro.variants.pcls` — Lenzen 2025 practically-constant-local-skew
  rate discipline (continuous rate-rule evaluation).
"""

from repro.variants.adaptive_delay import AdaptiveDelayAoptAlgorithm
from repro.variants.bit_budget import BitBudgetAoptAlgorithm, bit_budget_params
from repro.variants.bounded_delays import BoundedDelayAoptAlgorithm, bounded_delay_params
from repro.variants.discrete import DiscreteAoptAlgorithm, discrete_params
from repro.variants.envelope import HardwareEnvelopeAoptAlgorithm
from repro.variants.external import ExternalAoptAlgorithm
from repro.variants.fault_tolerant import FaultTolerantAoptAlgorithm
from repro.variants.ftgcs import FtgcsAlgorithm, ftgcs_rejection_window
from repro.variants.jump_aopt import JumpAoptAlgorithm
from repro.variants.kllo_dynamic import KlloDynamicAlgorithm
from repro.variants.min_gap import MinGapAoptAlgorithm
from repro.variants.pcls import PclsAlgorithm

__all__ = [
    "AdaptiveDelayAoptAlgorithm",
    "FaultTolerantAoptAlgorithm",
    "FtgcsAlgorithm",
    "ftgcs_rejection_window",
    "KlloDynamicAlgorithm",
    "PclsAlgorithm",
    "MinGapAoptAlgorithm",
    "BitBudgetAoptAlgorithm",
    "bit_budget_params",
    "BoundedDelayAoptAlgorithm",
    "bounded_delay_params",
    "DiscreteAoptAlgorithm",
    "discrete_params",
    "ExternalAoptAlgorithm",
    "HardwareEnvelopeAoptAlgorithm",
    "JumpAoptAlgorithm",
]
