"""Fault-tolerant GCS: per-neighbor estimate filtering against Byzantine lies.

Bund–Lenzen–Rosenbaum ("Fault Tolerant Gradient Clock Synchronization",
PAPERS.md) harden gradient clock synchronization against nodes that lie
about their clock values: each node tolerates up to ``f`` faulty
neighbors, ``f`` less than a third of its degree, by discarding the most
extreme neighbor estimates before computing the skew terms the rate rule
consumes.

This variant ports that defense onto the A^opt estimate machinery (it
composes with the recovery-aware ``aopt-ft`` base, so crash faults are
handled too).  The filter in :meth:`FtgcsNode.skew_estimates`:

1. sorts the current neighbor offsets ``L_v^w − L_v``;
2. discards at most ``f_v = min(max_faulty, (deg(v) − 1) // 3)`` offsets
   that exceed ``+rejection_window`` from the top, and at most ``f_v``
   below ``−rejection_window`` from the bottom;
3. computes ``(Λ↑, Λ↓)`` from whatever survives.

The *rejection window* makes the filter sound on honest executions: a
legitimate neighbor offset is bounded by the global skew ``G`` plus
estimate error (one delay each way plus rate-rule slack), so honest
offsets never reach the window and fault-free ``ftgcs`` is behaviorally
identical to ``aopt-ft`` — which is exactly what the differential
harness pins.  A Byzantine neighbor's corrupted estimates (see
:meth:`~repro.faults.injector.FaultInjector.corrupt_payload`) land far
outside the window and are discarded, so the rate rule keeps boosting
lagging honest nodes instead of being frozen by a fabricated laggard.

What the filter cannot defend — an inflated ``L^max``, adopted
unconditionally by every variant's flooding rule — the corruption model
deliberately never produces; see ``docs/FAULTS.md`` for the threat-model
boundary.

:func:`ftgcs_rejection_window` is the deployment-time calibration used
by the CLI and the certification scenarios: ``G(params, D) + 2T + 4κ``.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

from repro.core.bounds import global_skew_bound
from repro.core.interfaces import NodeContext
from repro.core.params import SyncParams
from repro.errors import ConfigurationError
from repro.variants.fault_tolerant import FaultTolerantAoptAlgorithm, _FaultTolerantNode

__all__ = ["FtgcsAlgorithm", "FtgcsNode", "ftgcs_rejection_window", "max_faulty_neighbors"]

NodeId = Hashable


def ftgcs_rejection_window(params: SyncParams, diameter: int) -> float:
    """The honest-offset bound the filter tolerates before discarding.

    A correct neighbor's true offset is at most the global skew
    ``G(params, diameter)``; the *estimate* of it adds at most one
    message delay each way plus rate-rule slack, generously covered by
    ``2T + 4κ``.  Anything beyond is either a Byzantine lie or a model
    violation — both are exactly what the filter exists to reject.
    """
    return (
        global_skew_bound(params, diameter)
        + 2 * params.delay_bound
        + 4 * params.kappa
    )


def max_faulty_neighbors(degree: int) -> int:
    """The largest ``f`` with ``f/degree`` strictly below one third.

    >>> [max_faulty_neighbors(d) for d in (1, 2, 3, 4, 6, 7)]
    [0, 0, 0, 1, 1, 2]
    """
    return max(0, (degree - 1) // 3)


class FtgcsNode(_FaultTolerantNode):
    """A^opt node with the Bund–Lenzen–Rosenbaum estimate filter."""

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Sequence[NodeId],
        params: SyncParams,
        staleness_timeout: float,
        rejection_window: float,
        max_faulty: Optional[int] = None,
    ):
        super().__init__(node_id, neighbors, params, staleness_timeout)
        self.rejection_window = rejection_window
        degree_cap = max_faulty_neighbors(len(self.neighbors))
        self.tolerated_faults = (
            degree_cap if max_faulty is None else min(int(max_faulty), degree_cap)
        )

    def skew_estimates(self, ctx: NodeContext) -> Optional[Tuple[float, float]]:
        if not self._estimates:
            return None
        hardware_now = ctx.hardware()
        logical_now = ctx.logical()
        offsets = sorted(
            value + (hardware_now - anchor) - logical_now
            for value, anchor in self._estimates.values()
        )
        window = self.rejection_window
        lo, hi = 0, len(offsets)
        for _ in range(self.tolerated_faults):
            if hi > lo and offsets[hi - 1] > window:
                hi -= 1
        for _ in range(self.tolerated_faults):
            if hi > lo and offsets[lo] < -window:
                lo += 1
        if hi == lo:
            # Every estimate looked Byzantine: no trustworthy information,
            # run at the nominal rate (same as the empty-estimate case).
            return None
        return offsets[hi - 1], -offsets[lo]


class FtgcsAlgorithm(FaultTolerantAoptAlgorithm):
    """Factory for the fault-tolerant GCS variant (name ``ftgcs``).

    Parameters
    ----------
    params:
        Validated :class:`~repro.core.params.SyncParams`.
    rejection_window:
        Honest-offset bound; calibrate with :func:`ftgcs_rejection_window`
        from the deployment diameter.
    staleness_timeout:
        Forwarded to the ``aopt-ft`` base (estimate expiry).
    max_faulty:
        Optional cap on the per-node tolerance ``f_v``; by default each
        node tolerates ``(deg − 1) // 3`` faulty neighbors.
    """

    def __init__(
        self,
        params: SyncParams,
        rejection_window: float,
        staleness_timeout: Optional[float] = None,
        max_faulty: Optional[int] = None,
    ):
        super().__init__(params, staleness_timeout)
        if rejection_window <= 0:
            raise ConfigurationError(
                f"rejection_window must be positive, got {rejection_window}"
            )
        self.rejection_window = float(rejection_window)
        self.max_faulty = None if max_faulty is None else int(max_faulty)
        self.name = "ftgcs"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]) -> FtgcsNode:
        return FtgcsNode(
            node_id,
            neighbors,
            self.params,
            self.staleness_timeout,
            self.rejection_window,
            self.max_faulty,
        )
