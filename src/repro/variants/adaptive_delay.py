"""§8.1 — running without prior knowledge of the delay bound ``T``.

The paper: *"Assuming that T is completely unknown to the algorithm is no
restriction.  In this case, nodes acknowledge every message, and
perpetually measure the corresponding round trip times by means of their
hardware clocks.  Multiplying the determined values by 1/(1 − ε̂) then
yields an estimate of the round trip times that is in O(T) and which
upper bounds the delays … If a larger (estimated) round trip time is
detected, it is flooded through the system and κ is adjusted accordingly
… it is not a problem if the nodes underestimate T because, until the
time when larger delays actually occur, the skew bounds hold with respect
to the smaller delays and thus the smaller κ.  In order to keep the
number of messages low, one could initially use an estimate of Θ(1/f)
and double it in every step, reducing the number of updates to at most
O(log(T·f))."*

Implementation:

* every synchronization message carries the sender's hardware send time;
  the receiver acknowledges it (acks are not themselves acknowledged);
* an ack closes the loop: ``rtt_hw/(1 − ε̂)`` upper-bounds the round trip
  in real time, hence the one-way delay;
* a node's working bound ``T̂`` is the largest *announced* estimate it
  knows; announcements are doubled (the next announcement is at least
  twice the previous), capping the number of floods at ``O(log(T/T̂₀))``;
* ``κ`` is recomputed from the current ``T̂`` via Inequality (4); ``H0``
  stays fixed (its choice only trades message frequency for skew and
  re-deriving it mid-run would disturb the mark bookkeeping).
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Sequence

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import AoptNode
from repro.core.params import SyncParams
from repro.core.rate_rule import clamped_rate_increase
from repro.errors import ConfigurationError

__all__ = ["AdaptiveDelayAoptAlgorithm"]

NodeId = Hashable

_INCREASE_EPS = 1e-12


class _AdaptiveDelayNode(AoptNode):
    def __init__(self, node_id, neighbors, params: SyncParams, initial_estimate: float):
        super().__init__(node_id, neighbors, params)
        # The working delay-bound estimate (starts deliberately small).
        self._delay_estimate = initial_estimate
        # Largest estimate already announced (flooded); announcements double.
        self._announced = initial_estimate

    # -- adaptive kappa ------------------------------------------------------

    def current_kappa(self) -> float:
        """Inequality (4) evaluated at the current delay estimate."""
        params = self.params
        return 2 * (
            (1 + params.epsilon_hat) * (1 + params.mu) * self._delay_estimate
            + params.h_bar_0
        )

    def _set_clock_rate(self, ctx: NodeContext) -> None:
        skews = self.skew_estimates(ctx)
        if skews is None:
            return
        lambda_up, lambda_down = skews
        headroom = self.l_max(ctx.hardware()) - ctx.logical()
        increase = clamped_rate_increase(
            lambda_up, lambda_down, self.current_kappa(), headroom
        )
        if increase > _INCREASE_EPS:
            ctx.set_rate_multiplier(1 + self.params.mu)
            ctx.set_alarm(
                "rate-reset", ctx.hardware() + increase / self.params.mu
            )
        else:
            ctx.set_rate_multiplier(1.0)
            ctx.cancel_alarm("rate-reset")

    # -- messaging with acks and estimate floods ------------------------------

    def _adopt_estimate(self, ctx: NodeContext, value: float) -> None:
        """Adopt a larger delay estimate; flood if it doubles the announced."""
        if value > self._delay_estimate:
            self._delay_estimate = value
        if self._delay_estimate >= 2 * self._announced:
            self._announced = self._delay_estimate
            ctx.send_all(("that", self._announced))

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        kind = payload[0]
        hardware_now = ctx.hardware()
        if kind == "ack":
            _, echoed_send_hw = payload
            rtt_hw = hardware_now - echoed_send_hw
            # One-way delay <= round trip; discount the worst-case slow
            # clock to over- rather than under-estimate.
            self._adopt_estimate(
                ctx, rtt_hw / (1 - self.params.epsilon_hat)
            )
            return
        if kind == "that":
            _, announced = payload
            if announced > self._announced:
                self._delay_estimate = max(self._delay_estimate, announced)
                self._announced = announced
                ctx.send_all(("that", announced))
            return
        # kind == "sync": ⟨L_w, L_w^max⟩ plus the sender's send time.
        _, their_logical, their_lmax, their_send_hw = payload
        ctx.send_to(sender, ("ack", their_send_hw))
        super().on_message(self._wrap(ctx), sender, (their_logical, their_lmax))

    # AoptNode broadcasts plain (L, L^max) tuples from three sites; wrap
    # the context so every outgoing sync message is tagged and timestamped.
    def _wrap(self, ctx: NodeContext) -> NodeContext:
        return _TaggingContext(ctx)

    def on_start(self, ctx: NodeContext) -> None:
        super().on_start(self._wrap(ctx))

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        super().on_alarm(self._wrap(ctx), name)


class _TaggingContext(NodeContext):
    """Tags tuple payloads from AoptNode as sync messages with send time."""

    def __init__(self, inner: NodeContext):
        self._inner = inner
        self.node_id = inner.node_id
        self.neighbors = inner.neighbors

    def _tag(self, payload: Any) -> Any:
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and not isinstance(payload[0], str)
        ):
            return ("sync", payload[0], payload[1], self._inner.hardware())
        return payload

    def hardware(self) -> float:
        return self._inner.hardware()

    def logical(self) -> float:
        return self._inner.logical()

    def set_rate_multiplier(self, rho: float) -> None:
        self._inner.set_rate_multiplier(rho)

    def rate_multiplier(self) -> float:
        return self._inner.rate_multiplier()

    def jump_logical(self, value: float) -> None:
        self._inner.jump_logical(value)

    def send_to(self, neighbor: NodeId, payload: Any) -> None:
        self._inner.send_to(neighbor, self._tag(payload))

    def send_all(self, payload: Any) -> None:
        self._inner.send_all(self._tag(payload))

    def set_alarm(self, name: str, hardware_value: float) -> None:
        self._inner.set_alarm(name, hardware_value)

    def cancel_alarm(self, name: str) -> None:
        self._inner.cancel_alarm(name)

    def probe(self, name: str, value: Any) -> None:
        self._inner.probe(name, value)


class AdaptiveDelayAoptAlgorithm(Algorithm):
    """A^opt without prior knowledge of ``T`` (§8.1).

    Parameters
    ----------
    params:
        ``params.delay_bound`` / ``delay_bound_hat`` are ignored for the
        rate rule — ``κ`` derives from the measured estimate — but still
        size ``H0`` and ``H̄0``.
    initial_estimate:
        The deliberately small starting ``T̂₀`` (the paper suggests
        ``Θ(1/f)``); it grows by measured round trips, doubling per
        announcement.
    """

    allows_jumps = False

    def __init__(self, params: SyncParams, initial_estimate: float):
        if initial_estimate <= 0:
            raise ConfigurationError(
                f"initial_estimate must be positive, got {initial_estimate}"
            )
        self.params = params
        self.initial_estimate = float(initial_estimate)
        self.name = "aopt-adaptive-delay"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _AdaptiveDelayNode(
            node_id, neighbors, self.params, self.initial_estimate
        )
