"""Ablations: removing individual design choices from A^opt.

The paper motivates each ingredient of the algorithm; these ablations
make the motivations measurable:

* :class:`NoMaxCapAopt` — drops the ``L^max`` cap in Algorithm 3 line 2
  (``R := min(..., L^max − L)``).  Without the cap, the "a skew of κ is
  always tolerated" rule lets neighbors bootstrap each other: both stay
  within κ of (over-extrapolated) estimates while their absolute values
  run away at rate ``(1+ε)(1+μ)``, violating the real-time envelope
  Condition (1).  This is why Corollary 5.2 needs ``L_v ≤ L^max_v``.

* :class:`LazyForwardAopt` — drops the immediate forwarding of larger
  ``L^max`` estimates (Algorithm 2 line 3); estimates only propagate with
  the regular mark-triggered sends.  Information then travels one hop per
  ``Θ(H0)`` instead of one hop per delay, and the global skew degrades by
  ``Θ(ε·D·H0)`` — the reason Algorithm 2 forwards eagerly.

Both are deliberately *broken* algorithms; they exist for the ablation
benchmark (``benchmarks/bench_ablations.py``) and should not be used
otherwise.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Sequence

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import AoptNode
from repro.core.params import SyncParams
from repro.core.rate_rule import clamped_rate_increase

__all__ = ["NoMaxCapAopt", "LazyForwardAopt"]

NodeId = Hashable

_INCREASE_EPS = 1e-12


class _NoMaxCapNode(AoptNode):
    def _set_clock_rate(self, ctx: NodeContext) -> None:
        skews = self.skew_estimates(ctx)
        if skews is None:
            return
        lambda_up, lambda_down = skews
        # Ablated: headroom = infinity (no L^max cap on the increase).
        increase = clamped_rate_increase(
            lambda_up, lambda_down, self.params.kappa, math.inf
        )
        if increase > _INCREASE_EPS:
            ctx.set_rate_multiplier(1 + self.params.mu)
            if math.isfinite(increase):
                ctx.set_alarm(
                    "rate-reset", ctx.hardware() + increase / self.params.mu
                )
        else:
            ctx.set_rate_multiplier(1.0)
            ctx.cancel_alarm("rate-reset")


class NoMaxCapAopt(Algorithm):
    """A^opt without the ``L^max − L`` cap (envelope-breaking ablation)."""

    allows_jumps = False

    def __init__(self, params: SyncParams):
        self.params = params
        self.name = "aopt-no-max-cap"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _NoMaxCapNode(node_id, neighbors, self.params)


class _LazyForwardNode(AoptNode):
    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        their_logical, their_lmax = payload
        hardware_now = ctx.hardware()
        forced_send = self._needs_init_send
        self._needs_init_send = False

        lmax_now = self.l_max(hardware_now)
        if their_lmax > lmax_now:
            # Ablated: adopt, but do NOT forward; the next mark-triggered
            # send (possibly a full H0 away) carries it onward.
            self._lmax_value = their_lmax
            self._lmax_anchor = hardware_now
            self._next_mark = their_lmax + self.params.h0
            self._arm_send_alarm(ctx, hardware_now)
        if forced_send:
            ctx.send_all((ctx.logical(), self.l_max(hardware_now)))
            self._next_mark = max(
                self._next_mark,
                math.floor(self.l_max(hardware_now) / self.params.h0)
                * self.params.h0
                + self.params.h0,
            )
            self._arm_send_alarm(ctx, hardware_now)

        if their_logical > self._raw_received.get(sender, -math.inf):
            self._raw_received[sender] = their_logical
            self._estimates[sender] = (their_logical, hardware_now)
        self._set_clock_rate(ctx)


class LazyForwardAopt(Algorithm):
    """A^opt without eager ``L^max`` forwarding (slow-information ablation)."""

    allows_jumps = False

    def __init__(self, params: SyncParams):
        self.params = params
        self.name = "aopt-lazy-forward"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _LazyForwardNode(node_id, neighbors, self.params)
