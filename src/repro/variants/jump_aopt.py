"""The instant-jump variant of A^opt (remark after Theorem 5.10).

The paper notes: *"this theorem also holds if each node v increases its
logical clock value by the value R_v computed in the subroutine
setClockRate at once instead of raising the logical clock rate"* — the
skew analysis (Lemmas 5.7 and 5.9) survives because jumping is a more
aggressive catch-up and the blocking case (``R_v = 0``) is unchanged.

What is lost is Condition (2)'s upper rate bound (β = ∞) and the smooth
clock behaviour motivating the rate-based design (footnote 3: clock jumps
deteriorate e.g. velocity measurements).  The benchmark compares the two:
same skew bounds, discontinuous vs smooth clocks.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import RATE_RESET_ALARM, AoptNode
from repro.core.params import SyncParams
from repro.core.rate_rule import clamped_rate_increase

__all__ = ["JumpAoptAlgorithm"]

NodeId = Hashable

_INCREASE_EPS = 1e-12


class _JumpAoptNode(AoptNode):
    def _set_clock_rate(self, ctx: NodeContext) -> None:
        """Apply the Algorithm 3 increase instantaneously."""
        skews = self.skew_estimates(ctx)
        if skews is None:
            return
        lambda_up, lambda_down = skews
        headroom = self.l_max(ctx.hardware()) - ctx.logical()
        increase = clamped_rate_increase(
            lambda_up, lambda_down, self.params.kappa, headroom
        )
        if increase > _INCREASE_EPS:
            ctx.jump_logical(ctx.logical() + increase)
        # The rate multiplier stays 1 at all times; no reset alarm needed.
        ctx.cancel_alarm(RATE_RESET_ALARM)


class JumpAoptAlgorithm(Algorithm):
    """A^opt with instantaneous clock increases (β = ∞)."""

    allows_jumps = True

    def __init__(self, params: SyncParams):
        self.params = params
        self.name = "aopt-jump"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _JumpAoptNode(node_id, neighbors, self.params)
