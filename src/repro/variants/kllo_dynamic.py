"""A^opt tuned for dynamic graphs (the KLLO setting).

"Optimal Gradient Clock Synchronization in Dynamic Networks"
(Kuhn–Lenzen–Locher–Oshman) studies the gradient algorithm when the
graph itself changes: edges appear and disappear, nodes join and leave,
and partitioned components re-merge.  Its central positive result is a
*stabilization* guarantee — once the topology stops changing, skews
re-converge to the static-graph bounds within a bounded settle period.

Mechanically, the two fault-tolerance amendments of
:class:`~repro.variants.fault_tolerant.FaultTolerantAoptAlgorithm` are
exactly what that setting needs:

* **staleness expiry** discards estimates of neighbors whose edge
  disappeared (or who left), so a node stops chasing a ghost across a
  severed link within one timeout; and
* **recovery re-initialization** (the ``on_recover`` hook, which the
  engine also fires when a node *rejoins* — see ``docs/DYNAMIC.md``)
  discards pre-departure neighbor state and immediately re-announces,
  so a rejoining node is re-learned within one message delay.

This subclass therefore changes no behaviour — it gives the dynamic
configuration its own algorithm name, so spec digests, certification
reports, and repro artifacts unambiguously identify dynamic-topology
runs, and so the ``kllo-stabilization`` certificate has a concrete
algorithm whose claim it states (see :mod:`repro.cert.certificates`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import SyncParams
from repro.variants.fault_tolerant import FaultTolerantAoptAlgorithm

__all__ = ["KlloDynamicAlgorithm"]


class KlloDynamicAlgorithm(FaultTolerantAoptAlgorithm):
    """Recovery-aware A^opt under its dynamic-networks name (``kllo-dynamic``).

    Claims the static A^opt conditions (envelope, rate bounds,
    monotonicity) on every execution, the Theorem 5.5/5.10 skew bounds
    on static executions, and — the point of the name — KLLO-style
    re-stabilization after the last topology change on dynamic ones.
    """

    def __init__(self, params: SyncParams, staleness_timeout: Optional[float] = None):
        super().__init__(params, staleness_timeout)
        self.name = "kllo-dynamic"
