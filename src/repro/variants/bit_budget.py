"""§6.2 — constant-size messages.

Plain A^opt sends two unbounded real numbers per message.  Section 6.2
shows the same guarantees survive three encoding tricks:

1. **Logical clock as progress deltas.**  Instead of ``L_v``, send the
   progress since the last send, *discretized down to multiples of
   q = μ·H0*.  The receiver accumulates deltas onto the first (full)
   value it heard.  Rounding loses at most ``q`` per message — but since
   the reconstruction only ever *underestimates*, correctness is
   unaffected and accuracy costs one extra ``q`` absorbed into ``κ``.
2. **Capped ``L^max`` increments.**  ``L^max`` is a multiple of ``H0``;
   send the increment in units of ``H0``, capped at
   ``c = ⌈(1 + ε̂)(1 + μ)/(1 − ε̂)⌉`` per message, carrying any excess to
   subsequent messages.  Since the true maximum grows at most at rate
   ``1 + ε`` while nodes send at least every ``H0/(1 − ε)``, the capped
   stream can never fall behind permanently.
3. The first message per edge carries full values (initialization);
   this amortizes away.

``payload_bits`` charges the honest encoding sizes, so the benchmark can
verify both the *skew* claim (bounds preserved) and the *bit* claim
(``O(log 1/μ)`` bits per steady-state message).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Sequence, Tuple

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import INIT_ALARM, RATE_RESET_ALARM, SEND_ALARM, AoptNode
from repro.core.params import SyncParams
from repro.core.rate_rule import clamped_rate_increase

__all__ = ["BitBudgetAoptAlgorithm", "bit_budget_params"]

NodeId = Hashable

_INCREASE_EPS = 1e-12

#: Bits for the full-value initialization message (two 64-bit floats).
_INIT_MESSAGE_BITS = 128


def bit_budget_params(epsilon: float, delay_bound: float, **overrides) -> SyncParams:
    """Parameters with ``κ`` enlarged by the discretization quantum.

    Each received logical value may be underestimated by up to
    ``q = μ·H0``; doubling it (both the ahead and the behind neighbor may
    be affected, as in Inequality (4)'s factor of two) sizes the slack.
    """
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound, **overrides)
    quantum = params.mu * params.h0
    return params.with_overrides(kappa=params.kappa + 2 * quantum)


class _BitBudgetNode(AoptNode):
    def __init__(self, node_id, neighbors, params: SyncParams):
        super().__init__(node_id, neighbors, params)
        self._quantum = params.mu * params.h0
        # Cap on the L^max increment (in units of H0) per message.
        self._cap_units = math.ceil(
            (1 + params.epsilon_hat) * (1 + params.mu) / (1 - params.epsilon_hat)
        )
        # Sending side: what we have already told the neighbors.
        self._sent_logical_base: float = None  # last announced L (quantized)
        self._announced_lmax_units: int = 0  # L^max/H0 announced so far
        self._sent_init_values = False
        # Receiving side: reconstruction state per neighbor.
        self._their_logical: Dict[NodeId, float] = {}
        self._their_lmax_units: Dict[NodeId, int] = {}

    # -- encoding ------------------------------------------------------------

    def _encode(self, ctx: NodeContext) -> Any:
        logical_now = ctx.logical()
        # Only whole multiples of H0 are ever announced (§6.2: "the
        # estimate L^max is a multiple of H0"); the fractional growth
        # between marks is local bookkeeping.
        lmax_units_now = int(
            math.floor(self.l_max(ctx.hardware()) / self.params.h0 + 1e-9)
        )
        if not self._sent_init_values:
            self._sent_init_values = True
            self._sent_logical_base = logical_now
            self._announced_lmax_units = lmax_units_now
            return ("init", logical_now, lmax_units_now)
        delta_steps = int(
            math.floor((logical_now - self._sent_logical_base) / self._quantum + 1e-9)
        )
        delta_steps = max(delta_steps, 0)
        self._sent_logical_base += delta_steps * self._quantum
        lmax_step = min(
            lmax_units_now - self._announced_lmax_units, self._cap_units
        )
        lmax_step = max(lmax_step, 0)
        self._announced_lmax_units += lmax_step
        return ("delta", delta_steps, lmax_step)

    def _broadcast(self, ctx: NodeContext) -> None:
        ctx.send_all(self._encode(ctx))

    # -- A^opt hooks rewritten for the encoded wire format --------------------

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        hardware_now = ctx.hardware()
        forced_send = self._needs_init_send
        self._needs_init_send = False

        kind = payload[0]
        if kind == "init":
            _, their_logical, their_lmax_units = payload
            self._their_logical[sender] = their_logical
            self._their_lmax_units[sender] = their_lmax_units
        else:
            _, delta_steps, lmax_step = payload
            # A delta before the init message cannot happen on a reliable
            # FIFO-free channel only if reordering swapped them; guard by
            # treating it as zero knowledge.
            if sender in self._their_logical:
                self._their_logical[sender] += delta_steps * self._quantum
                self._their_lmax_units[sender] += lmax_step
            else:  # pragma: no cover - defensive (reordered init)
                return
        their_logical = self._their_logical[sender]
        their_lmax = self._their_lmax_units[sender] * self.params.h0

        lmax_now = self.l_max(hardware_now)
        if their_lmax > lmax_now + 1e-9:
            self._lmax_value = their_lmax
            self._lmax_anchor = hardware_now
            self._next_mark = their_lmax + self.params.h0
            self._broadcast(ctx)
            self._arm_send_alarm(ctx, hardware_now)
        elif forced_send:
            self._next_mark = (
                math.floor(lmax_now / self.params.h0) * self.params.h0 + self.params.h0
            )
            self._broadcast(ctx)
            self._arm_send_alarm(ctx, hardware_now)

        if their_logical > self._raw_received.get(sender, -math.inf):
            self._raw_received[sender] = their_logical
            self._estimates[sender] = (their_logical, hardware_now)
        self._set_clock_rate(ctx)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == INIT_ALARM:
            if self._needs_init_send:
                self._needs_init_send = False
                self._next_mark = self.params.h0
                self._broadcast(ctx)
                self._arm_send_alarm(ctx, ctx.hardware())
        elif name == SEND_ALARM:
            hardware_now = ctx.hardware()
            self._lmax_value = self._next_mark
            self._lmax_anchor = hardware_now
            self._next_mark += self.params.h0
            self._broadcast(ctx)
            self._arm_send_alarm(ctx, hardware_now)
        elif name == RATE_RESET_ALARM:
            ctx.set_rate_multiplier(1.0)


class BitBudgetAoptAlgorithm(Algorithm):
    """A^opt with §6.2 constant-size message encoding.

    Build params with :func:`bit_budget_params` so ``κ`` absorbs the
    quantization slack.
    """

    allows_jumps = False

    def __init__(self, params: SyncParams):
        self.params = params
        self.name = "aopt-bit-budget"
        quantum = params.mu * params.h0
        # Steady-state field widths (bits), charged honestly:
        # delta_steps ranges over the logical progress between sends,
        # at most (1+ε)(1+μ)·(H0/(1−ε)) per send period, in units of μH0.
        max_delta_steps = math.ceil(
            (1 + params.epsilon_hat)
            * (1 + params.mu)
            * params.h0
            / ((1 - params.epsilon_hat) * quantum)
        )
        cap_units = math.ceil(
            (1 + params.epsilon_hat) * (1 + params.mu) / (1 - params.epsilon_hat)
        )
        self._delta_bits = max(1, math.ceil(math.log2(max_delta_steps + 1)))
        self._lmax_bits = max(1, math.ceil(math.log2(cap_units + 1)))

    def steady_state_bits(self) -> int:
        """Bits per non-initialization message (plus a 1-bit type tag)."""
        return 1 + self._delta_bits + self._lmax_bits

    def payload_bits(self, payload: Any) -> int:
        if payload and payload[0] == "init":
            return 1 + _INIT_MESSAGE_BITS
        return self.steady_state_bits()

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _BitBudgetNode(node_id, neighbors, self.params)
