"""Recovery-aware A^opt for the fault-injection subsystem.

Plain A^opt (Section 4) assumes reliable links and ever-live nodes, so
its neighbor estimates ``L_v^w`` never expire: a neighbor that crashed,
or whose messages a partition swallowed, keeps influencing *setClockRate*
through an estimate that advances at ``h_v`` while the true clock it
tracks does not.  Under long outages that stale information both
(a) holds ``Λ↑`` artificially high, making the node chase a ghost, and
(b) after the neighbor recovers far behind, drags ``Λ↓`` up and freezes
the whole neighborhood at rate 1.

This variant makes two paper-compatible amendments (they only *remove*
information, so all upper-bound arguments that tolerate message loss
still apply — see ``docs/FAULTS.md``):

* **Staleness expiry** — an estimate not refreshed within
  ``staleness_timeout`` of hardware time is discarded (together with its
  raw-value guard ``ℓ_v^w``, so the neighbor is re-learned from scratch).
  The timeout defaults to ``4·H0``: a live neighbor refreshes roughly
  every ``H0``, so four consecutive misses distinguish an outage from
  ordinary loss.  Expiry is evaluated on every message receipt and on
  every Algorithm 1 send event, i.e. at least once per ``H0``.
* **Recovery re-initialization** — :meth:`on_recover` discards all
  neighbor state, cancels a stale rate increase, re-anchors the send
  schedule to the current ``L^max`` (which kept advancing at ``h_v``
  through the outage), and immediately broadcasts, so neighbors re-learn
  this node within one message delay instead of one ``H0`` period.

``benchmarks/bench_faults.py`` measures the payoff as time-to-resync
after a cleared partition.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Optional, Sequence

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import RATE_RESET_ALARM, AoptNode
from repro.core.params import SyncParams
from repro.errors import ConfigurationError

__all__ = ["FaultTolerantAoptAlgorithm", "DEFAULT_STALENESS_MULTIPLE"]

NodeId = Hashable

#: Default staleness timeout as a multiple of ``H0`` (four missed refreshes).
DEFAULT_STALENESS_MULTIPLE = 4.0


class _FaultTolerantNode(AoptNode):
    def __init__(self, node_id, neighbors, params: SyncParams, staleness_timeout: float):
        super().__init__(node_id, neighbors, params)
        self.staleness_timeout = staleness_timeout

    # -- staleness expiry -----------------------------------------------------

    def _expire_stale(self, ctx: NodeContext, hardware_now: float) -> None:
        """Discard estimates not refreshed within the staleness timeout.

        Clearing the raw guard alongside the estimate means a recovered
        neighbor (whose logical clock fell behind during the outage) is
        re-learned from its next message instead of being rejected as
        stale by Algorithm 2 line 5.
        """
        cutoff = hardware_now - self.staleness_timeout
        expired = [
            neighbor
            for neighbor, (_, anchor) in self._estimates.items()
            if anchor < cutoff
        ]
        if not expired:
            return
        for neighbor in expired:
            del self._estimates[neighbor]
            self._raw_received.pop(neighbor, None)
        if self._estimates:
            self._set_clock_rate(ctx)
        else:
            # No information left: run at the nominal rate (Algorithm 3
            # with an empty estimate set).
            ctx.set_rate_multiplier(1.0)
            ctx.cancel_alarm(RATE_RESET_ALARM)

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        # Expire before Algorithm 2 runs so a cleared raw guard lets the
        # incoming value through, and so _set_clock_rate never sees a
        # mixture of fresh and expired estimates.
        self._expire_stale(ctx, ctx.hardware())
        super().on_message(ctx, sender, payload)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        super().on_alarm(ctx, name)
        # Algorithm 1 fires at least once per H0 of L^max progress, which
        # makes it the periodic expiry sweep: a node that stops *receiving*
        # still stops chasing ghosts within one timeout plus one period.
        from repro.core.node import SEND_ALARM

        if name == SEND_ALARM:
            self._expire_stale(ctx, ctx.hardware())

    # -- recovery -------------------------------------------------------------

    def on_recover(self, ctx: NodeContext) -> None:
        hardware_now = ctx.hardware()
        self._estimates.clear()
        self._raw_received.clear()
        # The engine already pinned ρ to 1 at the crash; a pending rate
        # reset from before the outage is meaningless now.
        ctx.set_rate_multiplier(1.0)
        ctx.cancel_alarm(RATE_RESET_ALARM)
        # L^max kept advancing at h_v through the outage (it is anchored to
        # the hardware clock), so only the mark schedule needs re-anchoring.
        lmax_now = self.l_max(hardware_now)
        h0 = self.params.h0
        self._next_mark = math.floor(lmax_now / h0) * h0 + h0
        # Announce immediately: neighbors whose estimate of us expired (or
        # who will reject our stale raw values) re-learn us within one
        # message delay.  Re-arming the send alarm bumps its generation,
        # superseding any alarm the engine deferred across the outage.
        ctx.send_all((ctx.logical(), lmax_now))
        self._arm_send_alarm(ctx, hardware_now)


class FaultTolerantAoptAlgorithm(Algorithm):
    """A^opt with estimate expiry and recovery re-initialization.

    Parameters
    ----------
    params:
        Validated :class:`~repro.core.params.SyncParams`.
    staleness_timeout:
        Hardware-time age beyond which a neighbor estimate is discarded;
        defaults to ``DEFAULT_STALENESS_MULTIPLE · H0``.  Must exceed
        ``H0``, otherwise estimates of healthy neighbors would routinely
        expire between refreshes.
    """

    allows_jumps = False

    def __init__(self, params: SyncParams, staleness_timeout: Optional[float] = None):
        self.params = params
        if staleness_timeout is None:
            staleness_timeout = DEFAULT_STALENESS_MULTIPLE * params.h0
        if staleness_timeout <= params.h0:
            raise ConfigurationError(
                f"staleness_timeout {staleness_timeout} must exceed H0="
                f"{params.h0}; healthy neighbors refresh once per H0"
            )
        self.staleness_timeout = float(staleness_timeout)
        self.name = "aopt-ft"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _FaultTolerantNode(
            node_id, neighbors, self.params, self.staleness_timeout
        )
