"""§6.1 — bounding the message frequency from above *and* below.

Plain A^opt guarantees an amortized frequency of ``Θ(1/H0)`` but no burst
bound: a node may receive (and forward) ``Θ(G/H0)`` estimates in quick
succession.  The paper's fix: a node must let its hardware clock advance
by at least ``H0`` between consecutive sends.  Forwarding a large estimate
may therefore be deferred; the price is that information travels one hop
per ``H0`` in the worst case, adding ``Θ(ε·D·H0)`` to the global skew —
the tunable trade-off of §6.1 that ``benchmarks/bench_min_gap.py``
measures.

Implementation: all of A^opt's send sites funnel through a gate that
either sends immediately or arms a ``gap-send`` alarm at
``last_send_H + H0``; a deferred send transmits the *current* values at
fire time.  Because deferred ``L^max`` values are no longer exact
multiples of ``H0``, mark bookkeeping floors to the enclosing multiple.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Sequence

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import INIT_ALARM, RATE_RESET_ALARM, SEND_ALARM, AoptNode
from repro.core.params import SyncParams

__all__ = ["MinGapAoptAlgorithm"]

NodeId = Hashable

GAP_SEND_ALARM = "gap-send"


class _MinGapNode(AoptNode):
    def __init__(self, node_id, neighbors, params: SyncParams):
        super().__init__(node_id, neighbors, params)
        self._last_send_hw = -math.inf
        self._pending_send = False

    # -- gated sending -------------------------------------------------------

    def _gated_send(self, ctx: NodeContext) -> None:
        """Send now if the gap allows, otherwise defer to the gap alarm."""
        hardware_now = ctx.hardware()
        if hardware_now - self._last_send_hw >= self.params.h0 - 1e-12:
            self._last_send_hw = hardware_now
            self._pending_send = False
            ctx.send_all((ctx.logical(), self.l_max(hardware_now)))
        elif not self._pending_send:
            self._pending_send = True
            ctx.set_alarm(GAP_SEND_ALARM, self._last_send_hw + self.params.h0)

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        their_logical, their_lmax = payload
        hardware_now = ctx.hardware()
        forced_send = self._needs_init_send
        self._needs_init_send = False

        lmax_now = self.l_max(hardware_now)
        if their_lmax > lmax_now:
            self._lmax_value = their_lmax
            self._lmax_anchor = hardware_now
            self._next_mark = (
                math.floor(their_lmax / self.params.h0 + 1e-9) * self.params.h0
                + self.params.h0
            )
            self._gated_send(ctx)
            self._arm_send_alarm(ctx, hardware_now)
        elif forced_send:
            self._next_mark = (
                math.floor(lmax_now / self.params.h0) * self.params.h0 + self.params.h0
            )
            self._gated_send(ctx)
            self._arm_send_alarm(ctx, hardware_now)

        if their_logical > self._raw_received.get(sender, -math.inf):
            self._raw_received[sender] = their_logical
            self._estimates[sender] = (their_logical, hardware_now)
            if self.record_estimates:
                ctx.probe("estimate", (sender, their_logical))
        self._set_clock_rate(ctx)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == INIT_ALARM:
            if self._needs_init_send:
                self._needs_init_send = False
                self._next_mark = self.params.h0
                self._gated_send(ctx)
                self._arm_send_alarm(ctx, ctx.hardware())
        elif name == SEND_ALARM:
            hardware_now = ctx.hardware()
            self._lmax_value = self._next_mark
            self._lmax_anchor = hardware_now
            self._next_mark += self.params.h0
            self._gated_send(ctx)
            self._arm_send_alarm(ctx, hardware_now)
        elif name == GAP_SEND_ALARM:
            if self._pending_send:
                self._pending_send = False
                hardware_now = ctx.hardware()
                self._last_send_hw = hardware_now
                ctx.send_all((ctx.logical(), self.l_max(hardware_now)))
        elif name == RATE_RESET_ALARM:
            ctx.set_rate_multiplier(1.0)


class MinGapAoptAlgorithm(Algorithm):
    """A^opt with a minimum hardware-time gap of ``H0`` between sends.

    Guarantees both directions of the message-frequency bound: at most one
    send per ``H0`` hardware time (hard) and at least one per ``H0`` of
    ``L^max`` progress (amortized, inherited from A^opt).
    """

    allows_jumps = False

    def __init__(self, params: SyncParams):
        self.params = params
        self.name = "aopt-min-gap"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _MinGapNode(node_id, neighbors, self.params)
