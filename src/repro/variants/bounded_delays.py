"""§8.3 — message delays bounded away from zero: ``[T1, T2]``.

Many systems have a large known minimum delay and a small jitter
(``T2 − T1 ≪ T1``).  The paper notes that the skew bounds then hold with
``T`` replaced by the *uncertainty* ``T2 − T1``, provided the algorithm
adds the known minimum to every received value, and that mark-triggered
sending no longer works — nodes simply send every ``H0`` of hardware time
instead.  The reaction-time penalty adds ``O(ε·D·T1)`` to the global skew.

Deviation from the paper (documented per DESIGN.md): we compensate with
``(1 − ε̂)·T1`` rather than ``T1``.  The sender's clock provably advances
at least ``(1 − ε)·T1`` while the message is in flight, so this
compensation can never overestimate a clock and Conditions (1)/(2) and
Corollary 5.2 are preserved verbatim; compensating the full ``T1`` could
overestimate ``L^max`` by up to ``ε·T1``.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Sequence

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import INIT_ALARM, RATE_RESET_ALARM, AoptNode
from repro.core.params import SyncParams
from repro.errors import ConfigurationError

__all__ = ["BoundedDelayAoptAlgorithm", "bounded_delay_params"]

NodeId = Hashable

PERIODIC_SEND_ALARM = "periodic-send"


def bounded_delay_params(
    epsilon: float,
    min_delay: float,
    max_delay: float,
    **overrides,
) -> SyncParams:
    """Parameters for the ``[T1, T2]`` model.

    ``κ`` and ``H0`` are sized from the *uncertainty* ``T2 − T1`` (that is
    the paper's point), with an extra ``2ε·T1`` term in ``κ`` covering the
    residual error of the minimum-delay compensation.
    """
    if not (0 <= min_delay <= max_delay):
        raise ConfigurationError(
            f"need 0 <= T1 <= T2, got T1={min_delay}, T2={max_delay}"
        )
    uncertainty = max_delay - min_delay
    params = SyncParams.recommended(
        epsilon=epsilon,
        delay_bound=uncertainty if uncertainty > 0 else max_delay * 1e-3 + 1e-9,
        **overrides,
    )
    return params.with_overrides(kappa=params.kappa + 2 * epsilon * min_delay)


class _BoundedDelayNode(AoptNode):
    def __init__(self, node_id, neighbors, params: SyncParams, min_delay: float):
        super().__init__(node_id, neighbors, params)
        self._compensation = (1 - params.epsilon_hat) * min_delay

    def on_start(self, ctx: NodeContext) -> None:
        super().on_start(ctx)

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        their_logical, their_lmax = payload
        their_logical += self._compensation
        their_lmax += self._compensation
        hardware_now = ctx.hardware()
        self._needs_init_send = False

        if their_lmax > self.l_max(hardware_now):
            # Adopt, but do not forward: with compensation the values are
            # no longer multiples of H0 and mark-based deduplication does
            # not apply; propagation rides on the periodic sends (§8.3).
            self._lmax_value = their_lmax
            self._lmax_anchor = hardware_now
        if their_logical > self._raw_received.get(sender, -math.inf):
            self._raw_received[sender] = their_logical
            self._estimates[sender] = (their_logical, hardware_now)
        self._set_clock_rate(ctx)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == INIT_ALARM:
            if self._needs_init_send:
                self._needs_init_send = False
            self._periodic_send(ctx)
        elif name == PERIODIC_SEND_ALARM:
            self._periodic_send(ctx)
        elif name == RATE_RESET_ALARM:
            ctx.set_rate_multiplier(1.0)

    def _periodic_send(self, ctx: NodeContext) -> None:
        hardware_now = ctx.hardware()
        ctx.send_all((ctx.logical(), self.l_max(hardware_now)))
        ctx.set_alarm(PERIODIC_SEND_ALARM, hardware_now + self.params.h0)


class BoundedDelayAoptAlgorithm(Algorithm):
    """A^opt adapted to delays in ``[T1, T2]``.

    Parameters
    ----------
    params:
        Use :func:`bounded_delay_params` so that ``κ`` reflects the
        uncertainty ``T2 − T1`` plus the compensation residual.
    min_delay:
        The known minimum delay ``T1`` added (drift-discounted) to every
        received value.
    """

    allows_jumps = False

    def __init__(self, params: SyncParams, min_delay: float):
        if min_delay < 0:
            raise ConfigurationError(f"min_delay must be >= 0, got {min_delay}")
        self.params = params
        self.min_delay = float(min_delay)
        self.name = "aopt-bounded-delays"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _BoundedDelayNode(node_id, neighbors, self.params, self.min_delay)
