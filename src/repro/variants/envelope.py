"""§8.6 — the hardware-clock envelope condition.

Variant requirement: every logical clock must stay between the smallest
and the largest *hardware* clock value in the system,

    ``min_w H_w(t) ≤ L_v(t) ≤ max_w H_w(t)``.

The paper's technique: increase ``L^max`` at the damped rate
``(1 − ε̂)·h_v/(1 + ε̂)`` whenever it exceeds the local hardware clock
(so it can never outrun the fastest hardware clock), at the normal rate
``h_v`` otherwise, and never let ``L_v`` exceed ``L^max_v``.  Because a
node only runs slower than its hardware clock while ``L_v = L^max_v >
H_v``, the invariant ``L_v ≥ H_v ≥ min_w H_w`` is preserved, which gives
the lower side for free.

State machine per node: ``L^max`` carries a growth *factor* (damped or
normal); a ``lmax-cross`` alarm fires when the damped ``L^max`` decays to
the hardware clock, after which the two advance in lockstep until a
message lifts ``L^max`` again.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import RATE_RESET_ALARM, SEND_ALARM, AoptNode
from repro.core.params import SyncParams
from repro.core.rate_rule import clamped_rate_increase

__all__ = ["HardwareEnvelopeAoptAlgorithm"]

NodeId = Hashable

LMAX_CROSS_ALARM = "lmax-cross"
CATCH_LMAX_ALARM = "catch-lmax"

_INCREASE_EPS = 1e-12


class _HardwareEnvelopeNode(AoptNode):
    def __init__(self, node_id, neighbors, params: SyncParams):
        super().__init__(node_id, neighbors, params)
        self._damped = (1 - params.epsilon_hat) / (1 + params.epsilon_hat)
        self._lmax_factor = 1.0  # growth of L^max in units of h_v

    def l_max(self, hardware_now: float) -> float:
        return self._lmax_value + self._lmax_factor * (
            hardware_now - self._lmax_anchor
        )

    def _arm_send_alarm(self, ctx: NodeContext, hardware_now: float) -> None:
        gap = (self._next_mark - self.l_max(hardware_now)) / self._lmax_factor
        ctx.set_alarm(SEND_ALARM, hardware_now + gap)

    def _refresh_lmax_mode(self, ctx: NodeContext) -> None:
        """Pick the L^max growth factor from its position vs. ``H_v``."""
        hardware_now = ctx.hardware()
        lmax = self.l_max(hardware_now)
        self._lmax_value = lmax
        self._lmax_anchor = hardware_now
        if lmax > hardware_now + 1e-9:
            self._lmax_factor = self._damped
            # The damped estimate loses (1 − damped) per unit of hardware
            # time against H_v; it crosses after (lmax − H)/(1 − damped).
            ctx.set_alarm(
                LMAX_CROSS_ALARM,
                hardware_now + (lmax - hardware_now) / (1 - self._damped),
            )
        else:
            self._lmax_factor = 1.0
            ctx.cancel_alarm(LMAX_CROSS_ALARM)

    def on_message(self, ctx: NodeContext, sender, payload) -> None:
        lmax_before = self.l_max(ctx.hardware())
        super().on_message(ctx, sender, payload)
        if self.l_max(ctx.hardware()) > lmax_before + 1e-12:
            self._refresh_lmax_mode(ctx)
            self._arm_send_alarm(ctx, ctx.hardware())
            self._set_clock_rate(ctx)

    def _set_clock_rate(self, ctx: NodeContext) -> None:
        skews = self.skew_estimates(ctx)
        if skews is None:
            return
        lambda_up, lambda_down = skews
        hardware_now = ctx.hardware()
        headroom = self.l_max(hardware_now) - ctx.logical()
        increase = clamped_rate_increase(
            lambda_up, lambda_down, self.params.kappa, headroom
        )
        if increase > _INCREASE_EPS:
            ctx.set_rate_multiplier(1 + self.params.mu)
            budget_hw = increase / self.params.mu
            catch_hw = headroom / (1 + self.params.mu - self._lmax_factor)
            ctx.set_alarm(RATE_RESET_ALARM, hardware_now + min(budget_hw, catch_hw))
        else:
            ctx.set_rate_multiplier(1.0)
            ctx.cancel_alarm(RATE_RESET_ALARM)
            self._track_lmax_if_caught(ctx)

    def _track_lmax_if_caught(self, ctx: NodeContext) -> None:
        hardware_now = ctx.hardware()
        gap = self.l_max(hardware_now) - ctx.logical()
        if gap <= 1e-9:
            ctx.set_rate_multiplier(max(self._lmax_factor, _minimum_rho(self)))
            ctx.cancel_alarm(CATCH_LMAX_ALARM)
        elif self._lmax_factor < 1.0:
            ctx.set_alarm(
                CATCH_LMAX_ALARM, hardware_now + gap / (1 - self._lmax_factor)
            )

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == LMAX_CROSS_ALARM:
            # L^max decayed to H_v: advance in lockstep from here on.
            hardware_now = ctx.hardware()
            self._lmax_value = hardware_now
            self._lmax_anchor = hardware_now
            self._lmax_factor = 1.0
            self._arm_send_alarm(ctx, hardware_now)
            if ctx.rate_multiplier() < 1.0:
                ctx.set_rate_multiplier(1.0)
        elif name == CATCH_LMAX_ALARM:
            if self.l_max(ctx.hardware()) - ctx.logical() <= 1e-9:
                ctx.set_rate_multiplier(self._lmax_factor)
        elif name == RATE_RESET_ALARM:
            ctx.set_rate_multiplier(1.0)
            self._track_lmax_if_caught(ctx)
        else:
            super().on_alarm(ctx, name)


def _minimum_rho(node: "_HardwareEnvelopeNode") -> float:
    """L^max never grows slower than the damped factor."""
    return node._damped


class HardwareEnvelopeAoptAlgorithm(Algorithm):
    """A^opt under the §8.6 hardware-clock envelope condition.

    Rate factors change only by ``1 − O(ε̂)``, so ``κ`` and ``μ`` keep
    their usual sizing (the paper's closing remark of §8.6).
    """

    allows_jumps = False

    def __init__(self, params: SyncParams):
        self.params = params
        self.name = "aopt-hw-envelope"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _HardwareEnvelopeNode(node_id, neighbors, self.params)
