"""§8.5 — external synchronization to a real-time source.

One distinguished node ``v0`` has access to real time: its logical clock,
hardware clock and real time coincide.  Every other node must satisfy
``t − d(v, v0)·T − τ ≤ L_v(t) ≤ t``: never ahead of real time, and behind
by at most its information horizon.

The paper's adaptation: the source floods its clock value periodically;
all other nodes run A^opt, except that they increase ``L^max`` (and
``L_v`` whenever ``L_v = L^max_v``) at the *damped* rate ``h_v/(1 + ε̂)``.
Damping makes every logical rate at most 1 whenever the node holds the
largest clock value, which pins ``L_v(t) ≤ t``; fresh estimates from the
source keep pulling clocks up at rate ``1 + μ``.

Implementation notes: the damped ``L^max`` means the headroom
``L^max − L`` closes at hardware rate ``1 + μ − 1/(1 + ε̂)`` during a
boost (not ``μ``), and a node at ``ρ = 1`` *catches up to* ``L^max``
(which now grows slower than ``L``), at which point it must drop to the
damped rate ``1/(1 + ε̂)`` — handled by a ``catch-lmax`` alarm.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Sequence

from repro.core.interfaces import Algorithm, AlgorithmNode, NodeContext
from repro.core.node import INIT_ALARM, RATE_RESET_ALARM, SEND_ALARM, AoptNode
from repro.core.params import SyncParams
from repro.core.rate_rule import clamped_rate_increase
from repro.errors import ConfigurationError

__all__ = ["ExternalAoptAlgorithm"]

NodeId = Hashable

CATCH_LMAX_ALARM = "catch-lmax"
SOURCE_SEND_ALARM = "source-send"

_INCREASE_EPS = 1e-12


class _SourceNode(AlgorithmNode):
    """The real-time reference ``v0``: ``L = H = t``; periodic floods.

    The experiment must give this node a drift-free hardware clock (rate
    exactly 1) — that is what "access to real time" means in the model.
    """

    def __init__(self, send_period: float):
        self._send_period = send_period

    def on_start(self, ctx: NodeContext) -> None:
        ctx.set_alarm(SOURCE_SEND_ALARM, 0.0)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == SOURCE_SEND_ALARM:
            ctx.send_all((ctx.logical(), ctx.logical()))
            ctx.set_alarm(SOURCE_SEND_ALARM, ctx.hardware() + self._send_period)

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        # The source ignores the network; it *is* the reference.
        pass


class _ExternalNode(AoptNode):
    """A^opt node with damped ``L^max`` growth (rate ``h_v/(1 + ε̂)``)."""

    def __init__(self, node_id, neighbors, params: SyncParams):
        super().__init__(node_id, neighbors, params)
        self._damping = 1.0 / (1 + params.epsilon_hat)

    # L^max = value + damping · (H − anchor).
    def l_max(self, hardware_now: float) -> float:
        return self._lmax_value + self._damping * (hardware_now - self._lmax_anchor)

    def _arm_send_alarm(self, ctx: NodeContext, hardware_now: float) -> None:
        gap = (self._next_mark - self.l_max(hardware_now)) / self._damping
        ctx.set_alarm(SEND_ALARM, hardware_now + gap)

    def _set_clock_rate(self, ctx: NodeContext) -> None:
        skews = self.skew_estimates(ctx)
        if skews is None:
            self._enter_tracking_if_caught(ctx)
            return
        lambda_up, lambda_down = skews
        hardware_now = ctx.hardware()
        headroom = self.l_max(hardware_now) - ctx.logical()
        increase = clamped_rate_increase(
            lambda_up, lambda_down, self.params.kappa, headroom
        )
        if increase > _INCREASE_EPS:
            ctx.set_rate_multiplier(1 + self.params.mu)
            # The boost gains (1 + μ − damping) per unit of hardware time
            # over L^max; cap the boost at whichever ends first: spending
            # the increase budget R (at rate μ over the *hardware* clock,
            # as in Algorithm 3) or hitting L^max.
            budget_hw = increase / self.params.mu
            catch_hw = headroom / (1 + self.params.mu - self._damping)
            ctx.set_alarm(RATE_RESET_ALARM, hardware_now + min(budget_hw, catch_hw))
        else:
            ctx.set_rate_multiplier(1.0)
            ctx.cancel_alarm(RATE_RESET_ALARM)
            self._enter_tracking_if_caught(ctx)

    def _enter_tracking_if_caught(self, ctx: NodeContext) -> None:
        """At ``L = L^max`` drop to the damped rate; otherwise arm a catch
        alarm for when the undamped clock reaches the damped ``L^max``."""
        hardware_now = ctx.hardware()
        gap = self.l_max(hardware_now) - ctx.logical()
        if gap <= 1e-9:
            ctx.set_rate_multiplier(self._damping)
            ctx.cancel_alarm(CATCH_LMAX_ALARM)
        else:
            ctx.set_alarm(
                CATCH_LMAX_ALARM, hardware_now + gap / (1 - self._damping)
            )

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == CATCH_LMAX_ALARM:
            if self.l_max(ctx.hardware()) - ctx.logical() <= 1e-9:
                ctx.set_rate_multiplier(self._damping)
        elif name == RATE_RESET_ALARM:
            ctx.set_rate_multiplier(1.0)
            self._enter_tracking_if_caught(ctx)
        else:
            super().on_alarm(ctx, name)


class ExternalAoptAlgorithm(Algorithm):
    """A^opt adapted for external synchronization (§8.5).

    Parameters
    ----------
    params:
        Protocol parameters; the effective minimum rate drops to
        ``(1 − ε)/(1 + ε̂)``, which the caller should account for when
        interpreting ``α``.
    source:
        Identifier of the real-time reference node ``v0``; the experiment
        must give it hardware rate exactly 1.
    source_period:
        Hardware time between source floods (the ``Θ(τ/ε̂)`` of §8.5 —
        smaller values tighten the ``τ`` term of the guarantee).
    """

    allows_jumps = False

    def __init__(self, params: SyncParams, source: NodeId, source_period: float = None):
        self.params = params
        self.source = source
        if source_period is None:
            source_period = params.h0
        if source_period <= 0:
            raise ConfigurationError(
                f"source_period must be positive, got {source_period}"
            )
        self.source_period = float(source_period)
        self.name = "aopt-external"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        if node_id == self.source:
            return _SourceNode(self.source_period)
        return _ExternalNode(node_id, neighbors, self.params)
