"""Practically-constant-local-skew GCS (Lenzen 2025) — the PCLS rate discipline.

"Gradient Clock Synchronization with Practically Constant Local Skew"
(PAPERS.md) observes that GCS algorithms of the A^opt family leave most
of their worst-case local-skew budget unused in practice: the logarithmic
``κ·⌈log_σ(2G/κ)⌉`` term is driven by adversarial estimate timing, and a
rate rule that is re-evaluated *continuously* — rather than only at
message receipts — tracks the legal-state levels tightly enough that the
observed local skew stays practically constant in ``D``.

This variant implements the continuous-evaluation discipline on top of
the A^opt machinery: :class:`PclsNode` re-runs *setClockRate* on every
Algorithm 1 send event in addition to every message receipt, so the rate
decision is refreshed at least once per ``H0`` of ``L^max`` progress even
on a node that stops hearing from its neighbors.  By Lemma 5.1 the extra
evaluations never *worsen* a decision (between events the admissible
increase and the reset target ``H^R`` are invariant), so every A^opt
worst-case bound — Theorem 5.5 global skew, Theorem 5.10 local skew, the
``[α, β]`` rate band, and the envelope condition — carries over verbatim;
the payoff is robustness of the boost schedule against float drift in
long executions and the practically-constant observed skew the paper
documents.  The ``gcs-pcls-local-skew`` certificate holds the variant to
the Theorem 5.10 claim on fault-free executions, and the differential
harness pins its verdict-agreement with ``aopt`` there.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.interfaces import NodeContext
from repro.core.node import SEND_ALARM, AoptAlgorithm, AoptNode
from repro.core.params import SyncParams

__all__ = ["PclsAlgorithm", "PclsNode"]

NodeId = Hashable


class PclsNode(AoptNode):
    """A^opt node with the PCLS continuous rate-rule evaluation."""

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        super().on_alarm(ctx, name)
        if name == SEND_ALARM:
            # The PCLS discipline: refresh the rate decision on the
            # periodic send tick too, so it is re-derived from current
            # estimates at least once per H0 even without any receipt.
            self._set_clock_rate(ctx)


class PclsAlgorithm(AoptAlgorithm):
    """Factory for the PCLS variant (name ``gcs-pcls``)."""

    def __init__(self, params: SyncParams, record_estimates: bool = False):
        super().__init__(params, record_estimates=record_estimates)
        self.name = "gcs-pcls"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]) -> PclsNode:
        return PclsNode(
            node_id, neighbors, self.params, record_estimates=self.record_estimates
        )
