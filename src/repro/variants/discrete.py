"""§8.4 — discrete hardware clocks with tick granularity ``1/f``.

Real hardware clocks tick at a finite frequency ``f``: a node can only
act on (and communicate) clock readings quantized to multiples of
``1/f``.  The paper (citing the PODC'09 version) shows this effectively
replaces ``T`` by ``max(1/f, T)`` in the bounds — negligible whenever
``1/f < T``.

Implementation: a context proxy rounds every alarm target *up* to the
next tick (actions only happen on ticks) and every transmitted clock
value *down* to a tick (readings are quantized), while the node's
internal bookkeeping stays exact.  ``κ`` must absorb the extra
uncertainty; :func:`discrete_params` sizes it.
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Sequence

from repro.core.interfaces import NodeContext
from repro.core.node import AoptAlgorithm, AoptNode
from repro.core.params import SyncParams
from repro.errors import ConfigurationError

__all__ = ["DiscreteAoptAlgorithm", "discrete_params"]

NodeId = Hashable


def discrete_params(epsilon: float, delay_bound: float, frequency: float, **overrides) -> SyncParams:
    """Parameters with ``κ`` enlarged for tick granularity ``1/f``.

    One tick of quantization on each of the sender's value and the
    receiver's reaction adds up to ``2·(1 + ε)(1 + μ)/f`` of extra
    estimate error — the ``T → max(1/f, T)`` effect of §8.4.

    ``H0`` is rounded *up* to a multiple of the tick: transmitted values
    are floored to ticks, so a misaligned ``H0`` would make the announced
    ``L^max`` marks fall below receivers' local estimates and stall the
    estimate flood entirely.
    """
    if frequency <= 0:
        raise ConfigurationError(f"frequency must be positive, got {frequency}")
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound, **overrides)
    tick = 1.0 / frequency
    aligned_h0 = math.ceil(params.h0 / tick - 1e-9) * tick
    params = SyncParams.recommended(
        epsilon=epsilon, delay_bound=delay_bound, h0=aligned_h0,
        **{k: v for k, v in overrides.items() if k != "h0"},
    )
    extra = 2 * (1 + params.epsilon_hat) * (1 + params.mu) / frequency
    return params.with_overrides(kappa=params.kappa + extra)


class _TickContext(NodeContext):
    """Proxy quantizing alarms up and outgoing values down to ticks."""

    def __init__(self, inner: NodeContext, tick: float):
        self._inner = inner
        self._tick = tick
        self.node_id = inner.node_id
        self.neighbors = inner.neighbors

    def _floor_tick(self, value: float) -> float:
        return math.floor(value / self._tick + 1e-9) * self._tick

    def _ceil_tick(self, value: float) -> float:
        return math.ceil(value / self._tick - 1e-9) * self._tick

    def hardware(self) -> float:
        return self._inner.hardware()

    def logical(self) -> float:
        return self._inner.logical()

    def set_rate_multiplier(self, rho: float) -> None:
        self._inner.set_rate_multiplier(rho)

    def rate_multiplier(self) -> float:
        return self._inner.rate_multiplier()

    def jump_logical(self, value: float) -> None:
        self._inner.jump_logical(value)

    def _quantize_payload(self, payload: Any) -> Any:
        if isinstance(payload, tuple):
            return tuple(
                self._floor_tick(v) if isinstance(v, float) else v for v in payload
            )
        return payload

    def send_to(self, neighbor: NodeId, payload: Any) -> None:
        self._inner.send_to(neighbor, self._quantize_payload(payload))

    def send_all(self, payload: Any) -> None:
        self._inner.send_all(self._quantize_payload(payload))

    def set_alarm(self, name: str, hardware_value: float) -> None:
        self._inner.set_alarm(name, self._ceil_tick(hardware_value))

    def cancel_alarm(self, name: str) -> None:
        self._inner.cancel_alarm(name)

    def probe(self, name: str, value: Any) -> None:
        self._inner.probe(name, value)


class _DiscreteNode(AoptNode):
    def __init__(self, node_id, neighbors, params: SyncParams, tick: float):
        super().__init__(node_id, neighbors, params)
        self._tick = tick

    def _wrap(self, ctx: NodeContext) -> _TickContext:
        return _TickContext(ctx, self._tick)

    def on_start(self, ctx: NodeContext) -> None:
        super().on_start(self._wrap(ctx))

    def on_message(self, ctx: NodeContext, sender, payload) -> None:
        super().on_message(self._wrap(ctx), sender, payload)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        super().on_alarm(self._wrap(ctx), name)


class DiscreteAoptAlgorithm(AoptAlgorithm):
    """A^opt on hardware that ticks at frequency ``f``.

    Use :func:`discrete_params` for a ``κ`` that absorbs the granularity.
    ``H0`` should be (close to) a multiple of the tick for exact
    mark-based sending; small misalignment only costs extra slack.
    """

    def __init__(self, params: SyncParams, frequency: float):
        super().__init__(params)
        if frequency <= 0:
            raise ConfigurationError(f"frequency must be positive, got {frequency}")
        self.frequency = float(frequency)
        self.name = "aopt-discrete"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _DiscreteNode(node_id, neighbors, self.params, 1.0 / self.frequency)
