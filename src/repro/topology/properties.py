"""Graph distance computations (BFS-based, exact).

The paper's bounds are stated in terms of hop distances ``d(v, w)`` and
the diameter ``D``; the legal-state condition (Definition 5.6) and the
gradient experiments need all-pairs distances.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import TopologyError
from repro.topology.generators import Topology

__all__ = [
    "bfs_distances",
    "all_pairs_distances",
    "diameter",
    "eccentricity",
    "shortest_path",
    "nodes_at_distance",
]

NodeId = Hashable


def bfs_distances(topology: Topology, source: NodeId) -> Dict[NodeId, int]:
    """Hop distance from ``source`` to every node."""
    if source not in topology:
        raise TopologyError(f"unknown source node {source!r}")
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nb in topology.neighbors(node):
            if nb not in distances:
                distances[nb] = distances[node] + 1
                queue.append(nb)
    return distances


def all_pairs_distances(topology: Topology) -> Dict[NodeId, Dict[NodeId, int]]:
    """All-pairs hop distances (one BFS per node)."""
    return {node: bfs_distances(topology, node) for node in topology.nodes}


def eccentricity(topology: Topology, node: NodeId) -> int:
    """Maximum distance from ``node`` to any other node."""
    return max(bfs_distances(topology, node).values())


def diameter(topology: Topology) -> int:
    """The graph diameter ``D`` (maximum pairwise hop distance)."""
    return max(eccentricity(topology, node) for node in topology.nodes)


def shortest_path(topology: Topology, source: NodeId, target: NodeId) -> List[NodeId]:
    """One shortest path from ``source`` to ``target`` (inclusive)."""
    if target not in topology:
        raise TopologyError(f"unknown target node {target!r}")
    parents: Dict[NodeId, Optional[NodeId]] = {source: None}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if node == target:
            break
        for nb in topology.neighbors(node):
            if nb not in parents:
                parents[nb] = node
                queue.append(nb)
    if target not in parents:
        raise TopologyError(f"no path from {source!r} to {target!r}")
    path = [target]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def nodes_at_distance(
    topology: Topology, source: NodeId, distance: int
) -> Tuple[NodeId, ...]:
    """All nodes exactly ``distance`` hops from ``source``."""
    dist = bfs_distances(topology, source)
    return tuple(node for node in topology.nodes if dist.get(node) == distance)
