"""Declarative dynamic-topology schedules.

The paper's gradient bounds hold on a *static* connected graph
(Section 3), but the dynamic-networks extension — "Optimal Gradient
Clock Synchronization in Dynamic Networks" (Kuhn–Lenzen–Locher–Oshman)
— asks what happens when the graph itself changes: edges appear and
disappear, nodes join and leave mid-execution, and partitioned
components re-merge.  A :class:`TopologySchedule` describes such an
execution over a fixed *union graph* (the static
:class:`~repro.topology.generators.Topology` holding every node and
edge that ever exists):

* **edge dynamics** — an undirected edge is *absent* for one or more
  ``[start, end)`` intervals; a message sent while its edge is absent
  is lost (exactly the link-fault semantics of :mod:`repro.faults`);
* **node dynamics** — a node may be absent for ``[start, end)``
  intervals.  A node that is absent from time 0 *joins* the network at
  the end of its first interval and is integrated by the first message
  it receives, per the paper's Section 4.2 initialization rule.  A
  started node that *leaves* free-runs at multiplier 1 (its hardware
  oscillator keeps ticking) and, on rejoining, is reintegrated through
  the ``AlgorithmNode.on_recover`` hook.

A schedule is *pure data*, exactly like
:class:`~repro.faults.schedule.FaultSchedule`: building one performs no
randomness and holds no caches, so it pickles, deep-copies, and enters
the canonical :class:`~repro.exec.spec.ExecutionSpec` digest — any
change to an appear/disappear time changes the digest, and two sweeps
with the same schedule replay byte-identically.  The engine-side
runtime queries live in :class:`CompiledTopologySchedule`, which never
enters a digest and may precompute freely.

Interval semantics match the fault layer: an edge or node is absent on
``[start, end)``; an absence with no clearing event lasts forever.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError
from repro.topology._intervals import (
    INFINITY as _INFINITY,
    compile_intervals as _compile_intervals,
    is_down as _is_down,
)

__all__ = [
    "TopologySchedule",
    "CompiledTopologySchedule",
    "merged_downtime",
    "EDGE_DOWN",
    "EDGE_UP",
    "NODE_LEAVE",
    "NODE_JOIN",
]

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]

EDGE_DOWN = "edge-down"
EDGE_UP = "edge-up"
NODE_LEAVE = "leave"
NODE_JOIN = "join"


def _check_time(name: str, value: float) -> float:
    value = float(value)
    if value < 0:
        raise ScheduleError(f"{name} must be non-negative, got {value}")
    return value


class TopologySchedule:  # reprolint: digest-critical
    """A timeline of edge appear/disappear and node join/leave events.

    Events are added with the chainable builder methods::

        schedule = (TopologySchedule()
                    .edge_appears(3, 4, at=40.0)     # bridge absent on [0, 40)
                    .leaves(7, at=90.0, until=120.0) # node 7 gone for a while
                    .joins(9, at=60.0))              # node 9 exists from 60.0

    The schedule is interpreted against the execution's *union graph*:
    every node and edge it names must exist in the static topology, and
    the static topology must stay connected (the engine validates this
    at compile time via :class:`CompiledTopologySchedule`).
    """

    def __init__(self, seed: int = 0):
        #: Keys the deterministic :meth:`churn` generator.
        self.seed = int(seed)
        #: ``(time, (u, v), kind)`` tuples in insertion order.
        self.edge_events: List[Tuple[float, Edge, str]] = []
        #: ``(time, node, kind)`` tuples in insertion order.
        self.node_events: List[Tuple[float, NodeId, str]] = []

    # -- builder API: edges --------------------------------------------------

    def edge_disappears(
        self, u: NodeId, v: NodeId, at: float, until: Optional[float] = None
    ) -> "TopologySchedule":
        """Remove the undirected edge ``{u, v}`` at ``at`` (back at ``until``)."""
        at = _check_time("edge-disappear time", at)
        self.edge_events.append((at, (u, v), EDGE_DOWN))
        if until is not None:
            self.edge_reappears(u, v, until)
        return self

    def edge_reappears(self, u: NodeId, v: NodeId, at: float) -> "TopologySchedule":
        """Restore the undirected edge ``{u, v}`` at time ``at``."""
        self.edge_events.append(
            (_check_time("edge-reappear time", at), (u, v), EDGE_UP)
        )
        return self

    def edge_appears(self, u: NodeId, v: NodeId, at: float) -> "TopologySchedule":
        """The edge ``{u, v}`` does not exist until time ``at``.

        Sugar for an absence interval ``[0, at)`` — this is how a network
        *merge* is expressed: the bridge edges appear at the merge time.
        """
        return self.edge_disappears(u, v, 0.0, until=at)

    def partition(
        self, edges: Iterable[Edge], at: float, until: Optional[float] = None
    ) -> "TopologySchedule":
        """Remove every edge of a cut for ``[at, until)`` — a partition."""
        for u, v in edges:
            self.edge_disappears(u, v, at, until)
        return self

    def merge(self, edges: Iterable[Edge], at: float) -> "TopologySchedule":
        """The cut ``edges`` does not exist before ``at`` — a network merge.

        Components on either side of the cut run independently from time
        0 and are joined when the bridge edges appear at ``at``.
        """
        for u, v in edges:
            self.edge_appears(u, v, at)
        return self

    # -- builder API: nodes --------------------------------------------------

    def leaves(
        self, node: NodeId, at: float, until: Optional[float] = None
    ) -> "TopologySchedule":
        """``node`` leaves the network at ``at``; rejoins at ``until`` if given."""
        at = _check_time("leave time", at)
        self.node_events.append((at, node, NODE_LEAVE))
        if until is not None:
            self.rejoins(node, until)
        return self

    def rejoins(self, node: NodeId, at: float) -> "TopologySchedule":
        """``node`` re-enters the network at time ``at`` (must follow a leave)."""
        self.node_events.append((_check_time("join time", at), node, NODE_JOIN))
        return self

    def joins(self, node: NodeId, at: float) -> "TopologySchedule":
        """``node`` does not exist until time ``at`` (absent on ``[0, at)``).

        The joining node is integrated by the first message it receives
        after ``at`` (Section 4.2 semantics); give the flood enough
        horizon headroom or the engine reports it as never initialized.
        """
        return self.leaves(node, 0.0, until=at)

    # -- generators ----------------------------------------------------------

    @classmethod
    def churn(
        cls,
        edges: Sequence[Edge],
        churn_rate: float,
        mean_outage: float,
        horizon: float,
        start: float = 0.0,
        seed: int = 0,
    ) -> "TopologySchedule":
        """Independent edge flap cycles (deterministic per seed).

        Each edge alternates present-times ``~ Exp(churn_rate)`` and
        absent-times ``~ Exp(1/mean_outage)``, drawn from a per-edge
        stream seeded by ``(seed, u, v)`` — edge iteration order does not
        matter.  No edge disappears before ``start`` (leave room for the
        initialization flood), and every outage is eventually closed
        (possibly after ``horizon``), so no edge is absent forever.
        """
        import random

        if churn_rate <= 0:
            raise ScheduleError(f"churn_rate must be positive, got {churn_rate}")
        if mean_outage <= 0:
            raise ScheduleError(f"mean_outage must be positive, got {mean_outage}")
        schedule = cls(seed=seed)
        for u, v in edges:
            rng = random.Random(f"churn:{seed}:{u!r}:{v!r}")
            t = start + rng.expovariate(churn_rate)
            while t < horizon:
                reappear_at = t + rng.expovariate(1.0 / mean_outage)
                schedule.edge_disappears(u, v, at=t, until=reappear_at)
                t = reappear_at + rng.expovariate(churn_rate)
        return schedule

    # -- queries -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.edge_events and not self.node_events

    def boundaries(self, horizon: float) -> List[float]:
        """Sorted unique topology-event times within ``[0, horizon]``."""
        times = {t for t, _, _ in self.edge_events if t <= horizon}
        times.update(t for t, _, _ in self.node_events if t <= horizon)
        return sorted(times)

    def last_change_time(self, horizon: Optional[float] = None) -> float:
        """The time of the last topology change (0.0 if none).

        After this instant the graph is static; the stabilization bound
        of the dynamic-networks analysis is anchored here.  With a
        ``horizon``, events beyond it are ignored.
        """
        last = 0.0
        for t, _, _ in self.edge_events:
            if horizon is None or t <= horizon:
                last = max(last, t)
        for t, _, _ in self.node_events:
            if horizon is None or t <= horizon:
                last = max(last, t)
        return last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopologySchedule(edge_events={len(self.edge_events)}, "
            f"node_events={len(self.node_events)}, seed={self.seed})"
        )


def merged_downtime(
    interval_lists: Sequence[Sequence[Tuple[float, float]]], a: float, b: float
) -> float:
    """Length of the union of ``[start, end)`` intervals overlapping ``[a, b]``.

    Used by the engine to report per-node downtime when *both* a fault
    schedule and a topology schedule cover a node — a crash during an
    absence must not be counted twice.  With a single source this sums
    the same per-interval overlaps, in the same order, as
    :meth:`~repro.faults.injector.FaultInjector.downtime_in`.
    """
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(
        interval for intervals in interval_lists for interval in intervals
    ):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    total = 0.0
    for start, end in merged:
        overlap = min(end, b) - max(start, a)
        if overlap > 0.0:
            total += overlap
    return total


class CompiledTopologySchedule:
    """Fast interval lookups over a :class:`TopologySchedule`.

    Engine-side runtime state, the analogue of
    :class:`~repro.faults.injector.FaultInjector`: it never enters a
    spec digest and may precompute freely.

    Parameters
    ----------
    schedule:
        The declarative timeline.
    topology:
        Optional union graph; when given, every node and edge the
        schedule names is validated against it so a typo'd target fails
        loudly instead of silently never firing.
    """

    def __init__(self, schedule: TopologySchedule, topology=None):
        self.schedule = schedule
        per_node: Dict[NodeId, List[Tuple[float, str]]] = {}
        for time, node, kind in schedule.node_events:
            per_node.setdefault(node, []).append((time, kind))
        per_edge: Dict[Edge, List[Tuple[float, str]]] = {}
        edge_keys: Dict[Edge, Edge] = {}
        for time, (u, v), kind in schedule.edge_events:
            # Normalize to whichever orientation was seen first.
            key = edge_keys.get((u, v)) or edge_keys.get((v, u)) or (u, v)
            edge_keys[(u, v)] = edge_keys[(v, u)] = key
            per_edge.setdefault(key, []).append((time, kind))

        if topology is not None:
            known = set(topology.nodes)
            for node in per_node:
                if node not in known:
                    raise ScheduleError(
                        f"topology schedule names unknown node {node!r}"
                    )
            for u, v in per_edge:
                if v not in topology.neighbors(u):
                    raise ScheduleError(
                        f"topology schedule names unknown edge ({u!r}, {v!r})"
                    )

        self._node_intervals: Dict[NodeId, List[Tuple[float, float]]] = {
            node: _compile_intervals(
                events, NODE_LEAVE, NODE_JOIN, f"node {node!r}"
            )
            for node, events in per_node.items()
        }
        both_ways: Dict[Edge, List[Tuple[float, float]]] = {}
        for (u, v), events in per_edge.items():
            intervals = _compile_intervals(
                events, EDGE_DOWN, EDGE_UP, f"edge ({u!r}, {v!r})"
            )
            both_ways[(u, v)] = both_ways[(v, u)] = intervals
        self._edge_intervals = both_ways

    # -- node state ----------------------------------------------------------

    def node_timeline(self) -> List[Tuple[float, NodeId, str]]:
        """All node leave/join transitions, time-sorted.

        The engine turns these into queue events; join transitions at
        infinity (nodes that leave forever) are not included.
        """
        timeline: List[Tuple[float, NodeId, str]] = []
        for node, intervals in self._node_intervals.items():
            for start, end in intervals:
                timeline.append((start, node, NODE_LEAVE))
                if end != _INFINITY:
                    timeline.append((end, node, NODE_JOIN))
        timeline.sort(key=lambda item: item[0])
        return timeline

    def is_node_absent(self, node: NodeId, t: float) -> bool:
        intervals = self._node_intervals.get(node)
        return intervals is not None and _is_down(intervals, t)

    def next_presence(self, node: NodeId, t: float) -> Optional[float]:
        """The end of the absence interval covering ``t``, or None.

        ``None`` means the node is either present at ``t`` or absent
        forever.
        """
        intervals = self._node_intervals.get(node)
        if not intervals:
            return None
        i = bisect_right(intervals, (t, _INFINITY)) - 1
        if i < 0 or t >= intervals[i][1]:
            return None
        end = intervals[i][1]
        return None if end == _INFINITY else end

    def node_absence_intervals(self, node: NodeId) -> Tuple[Tuple[float, float], ...]:
        """The compiled ``[start, end)`` absence intervals of ``node``."""
        return tuple(self._node_intervals.get(node, ()))

    def absence_in(self, node: NodeId, a: float, b: float) -> float:
        """Total scheduled absence of ``node`` overlapping ``[a, b]``."""
        total = 0.0
        for start, end in self._node_intervals.get(node, ()):
            overlap = min(end, b) - max(start, a)
            if overlap > 0.0:
                total += overlap
        return total

    def absent_nodes(self) -> Tuple[NodeId, ...]:
        return tuple(self._node_intervals)

    # -- edge state ----------------------------------------------------------

    def is_edge_absent(self, u: NodeId, v: NodeId, t: float) -> bool:
        intervals = self._edge_intervals.get((u, v))
        return intervals is not None and _is_down(intervals, t)

    def dynamic_edges(self) -> Tuple[Edge, ...]:
        """Each dynamic undirected edge once (first-seen orientation)."""
        seen = []
        emitted = set()
        for key, intervals in self._edge_intervals.items():
            ident = id(intervals)
            if ident not in emitted:
                emitted.add(ident)
                seen.append(key)
        return tuple(seen)
