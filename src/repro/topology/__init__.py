"""Network topologies for clock synchronization experiments."""

from repro.topology.dynamic import CompiledTopologySchedule, TopologySchedule
from repro.topology.generators import (
    Topology,
    barbell,
    binary_tree,
    caterpillar,
    circulant,
    complete_graph,
    grid,
    hypercube,
    line,
    random_connected,
    ring,
    star,
    torus,
)
from repro.topology.properties import bfs_distances, diameter, eccentricity

__all__ = [
    "Topology",
    "TopologySchedule",
    "CompiledTopologySchedule",
    "line",
    "ring",
    "star",
    "complete_graph",
    "grid",
    "torus",
    "binary_tree",
    "hypercube",
    "random_connected",
    "barbell",
    "caterpillar",
    "circulant",
    "bfs_distances",
    "diameter",
    "eccentricity",
]
