"""Graph generators.

The paper's bounds hold on arbitrary connected graphs and depend on the
diameter ``D`` (and, for the gradient property, on pairwise distances).
The *line* graph is the extremal topology for both lower bounds — the
constructions of Theorems 7.2 and 7.7 operate on a shortest path between
two nodes at distance ``D`` — so experiments default to lines, with the
other generators providing the "typical case" coverage.

Graphs are plain adjacency structures (:class:`Topology`); no external
graph library is required, though :meth:`Topology.from_edges` accepts any
edge iterable, including ``networkx.Graph.edges``.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.errors import TopologyError

__all__ = [
    "Topology",
    "line",
    "ring",
    "star",
    "complete_graph",
    "grid",
    "torus",
    "binary_tree",
    "hypercube",
    "random_connected",
    "barbell",
    "caterpillar",
    "circulant",
]

NodeId = Hashable


class Topology:
    """An undirected connected graph given by its adjacency structure.

    Nodes may be any hashable identifiers.  The node order given at
    construction is preserved and used for deterministic iteration.
    """

    def __init__(self, adjacency: Dict[NodeId, Sequence[NodeId]], name: str = "graph"):
        if not adjacency:
            raise TopologyError("topology must contain at least one node")
        self.name = name
        self._nodes: Tuple[NodeId, ...] = tuple(adjacency)
        node_set = set(self._nodes)
        if len(node_set) != len(self._nodes):
            raise TopologyError("duplicate node identifiers")
        self._adjacency: Dict[NodeId, Tuple[NodeId, ...]] = {}
        for node, neighbors in adjacency.items():
            seen = set()
            cleaned = []
            for nb in neighbors:
                if nb == node:
                    raise TopologyError(f"self-loop at node {node!r}")
                if nb not in node_set:
                    raise TopologyError(f"edge to unknown node {nb!r} from {node!r}")
                if nb not in seen:
                    seen.add(nb)
                    cleaned.append(nb)
            self._adjacency[node] = tuple(cleaned)
        for node in self._nodes:
            for nb in self._adjacency[node]:
                if node not in self._adjacency[nb]:
                    raise TopologyError(f"edge {node!r}-{nb!r} is not symmetric")
        self._check_connected()

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], name: str = "graph"
    ) -> "Topology":
        """Build from an iterable of undirected edges."""
        adjacency: Dict[NodeId, List[NodeId]] = {}
        for u, v in edges:
            adjacency.setdefault(u, [])
            adjacency.setdefault(v, [])
            if v not in adjacency[u]:
                adjacency[u].append(v)
            if u not in adjacency[v]:
                adjacency[v].append(u)
        return cls(adjacency, name=name)

    def _check_connected(self) -> None:
        seen = {self._nodes[0]}
        frontier = [self._nodes[0]]
        while frontier:
            node = frontier.pop()
            for nb in self._adjacency[node]:
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        if len(seen) != len(self._nodes):
            missing = [n for n in self._nodes if n not in seen]
            raise TopologyError(f"graph is disconnected; unreachable: {missing[:5]}")

    # -- queries -----------------------------------------------------------

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        return self._nodes

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        return self._adjacency[node]

    def degree(self, node: NodeId) -> int:
        return len(self._adjacency[node])

    def max_degree(self) -> int:
        return max(len(nbs) for nbs in self._adjacency.values())

    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Each undirected edge once, in deterministic order."""
        index = {node: i for i, node in enumerate(self._nodes)}
        result = []
        for node in self._nodes:
            for nb in self._adjacency[node]:
                if index[node] < index[nb]:
                    result.append((node, nb))
        return result

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.name!r}, n={len(self)}, m={len(self.edges())})"


def line(n: int) -> Topology:
    """A path ``0 - 1 - ... - (n-1)`` of diameter ``n − 1``."""
    if n < 1:
        raise TopologyError(f"line needs at least 1 node, got {n}")
    return Topology.from_edges(((i, i + 1) for i in range(n - 1)), name=f"line-{n}") \
        if n > 1 else Topology({0: ()}, name="line-1")


def ring(n: int) -> Topology:
    """A cycle of ``n ≥ 3`` nodes, diameter ``⌊n/2⌋``."""
    if n < 3:
        raise TopologyError(f"ring needs at least 3 nodes, got {n}")
    return Topology.from_edges(
        itertools.chain(((i, i + 1) for i in range(n - 1)), [(n - 1, 0)]),
        name=f"ring-{n}",
    )


def star(n: int) -> Topology:
    """A hub node 0 connected to ``n − 1`` leaves, diameter 2."""
    if n < 2:
        raise TopologyError(f"star needs at least 2 nodes, got {n}")
    return Topology.from_edges(((0, i) for i in range(1, n)), name=f"star-{n}")


def complete_graph(n: int) -> Topology:
    """All pairs connected, diameter 1."""
    if n < 2:
        raise TopologyError(f"complete graph needs at least 2 nodes, got {n}")
    return Topology.from_edges(
        itertools.combinations(range(n), 2), name=f"complete-{n}"
    )


def grid(width: int, height: int) -> Topology:
    """A ``width × height`` grid; nodes are ``(x, y)`` tuples."""
    if width < 1 or height < 1:
        raise TopologyError(f"grid dimensions must be positive: {width}x{height}")
    if width * height < 2:
        raise TopologyError("grid needs at least 2 nodes")
    edges = []
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                edges.append(((x, y), (x + 1, y)))
            if y + 1 < height:
                edges.append(((x, y), (x, y + 1)))
    return Topology.from_edges(edges, name=f"grid-{width}x{height}")


def torus(width: int, height: int) -> Topology:
    """A grid with wrap-around edges in both dimensions."""
    if width < 3 or height < 3:
        raise TopologyError("torus needs both dimensions >= 3")
    edges = []
    for x in range(width):
        for y in range(height):
            edges.append(((x, y), ((x + 1) % width, y)))
            edges.append(((x, y), (x, (y + 1) % height)))
    return Topology.from_edges(edges, name=f"torus-{width}x{height}")


def binary_tree(depth: int) -> Topology:
    """A complete binary tree of the given depth (depth 0 = just the root).

    Nodes are integers in heap order (root 1, children ``2i`` and
    ``2i + 1``); diameter ``2 · depth``.
    """
    if depth < 1:
        raise TopologyError(f"binary tree needs depth >= 1, got {depth}")
    edges = []
    for node in range(1, 2 ** depth):
        edges.append((node, 2 * node))
        edges.append((node, 2 * node + 1))
    return Topology.from_edges(edges, name=f"tree-depth-{depth}")


def hypercube(dimension: int) -> Topology:
    """A ``dimension``-dimensional hypercube on ``2^dimension`` nodes."""
    if dimension < 1:
        raise TopologyError(f"hypercube dimension must be >= 1, got {dimension}")
    edges = []
    for node in range(2 ** dimension):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if node < other:
                edges.append((node, other))
    return Topology.from_edges(edges, name=f"hypercube-{dimension}")


def barbell(clique_size: int, path_length: int) -> Topology:
    """Two cliques of ``clique_size`` joined by a path of ``path_length``.

    An interesting gradient-property case: most pairs are either at
    distance ≤ 1 (inside a clique) or at distance ≈ path_length + 2
    (across the bar), so the skew-vs-distance curve is bimodal.  Nodes
    are ``("a", i)``, ``("bar", j)``, ``("b", i)``.
    """
    if clique_size < 2:
        raise TopologyError(f"clique_size must be >= 2, got {clique_size}")
    if path_length < 1:
        raise TopologyError(f"path_length must be >= 1, got {path_length}")
    edges = []
    for side in ("a", "b"):
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append(((side, i), (side, j)))
    bar = [("bar", j) for j in range(path_length)]
    edges.append((("a", 0), bar[0]))
    edges.extend((bar[j], bar[j + 1]) for j in range(path_length - 1))
    edges.append((bar[-1], ("b", 0)))
    return Topology.from_edges(
        edges, name=f"barbell-{clique_size}-{path_length}"
    )


def caterpillar(spine: int, legs_per_node: int) -> Topology:
    """A path of ``spine`` nodes, each with ``legs_per_node`` leaf legs.

    High-degree low-diameter tree; spine nodes are integers, legs are
    ``(i, k)`` tuples.
    """
    if spine < 2:
        raise TopologyError(f"spine must be >= 2, got {spine}")
    if legs_per_node < 0:
        raise TopologyError(f"legs_per_node must be >= 0, got {legs_per_node}")
    edges = [(i, i + 1) for i in range(spine - 1)]
    for i in range(spine):
        for k in range(legs_per_node):
            edges.append((i, (i, k)))
    return Topology.from_edges(edges, name=f"caterpillar-{spine}x{legs_per_node}")


def circulant(n: int, offsets: Sequence[int]) -> Topology:
    """The circulant graph ``C_n(offsets)``: ``i ~ i ± o`` for each offset.

    With offsets like ``(1, k)`` for ``k ≈ √n`` this gives a low-diameter
    expander-like graph — a contrast case to the line for the local-skew
    experiments.
    """
    if n < 3:
        raise TopologyError(f"circulant needs at least 3 nodes, got {n}")
    if not offsets:
        raise TopologyError("circulant needs at least one offset")
    for offset in offsets:
        if not (1 <= offset <= n // 2):
            raise TopologyError(
                f"offsets must be in [1, n//2] = [1, {n // 2}], got {offset}"
            )
    edges = set()
    for i in range(n):
        for offset in offsets:
            edges.add(tuple(sorted((i, (i + offset) % n))))
    return Topology.from_edges(
        sorted(edges), name=f"circulant-{n}-{'-'.join(map(str, offsets))}"
    )


def random_connected(n: int, p: float, seed: int = 0) -> Topology:
    """An Erdős–Rényi ``G(n, p)`` graph made connected.

    Edges are sampled with probability ``p``; a random spanning-path
    backbone guarantees connectivity regardless of ``p``.  Deterministic
    for a given seed.
    """
    if n < 2:
        raise TopologyError(f"random graph needs at least 2 nodes, got {n}")
    if not (0 <= p <= 1):
        raise TopologyError(f"edge probability must be in [0, 1], got {p}")
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    edges = {tuple(sorted(pair)) for pair in zip(order, order[1:])}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                edges.add((u, v))
    return Topology.from_edges(sorted(edges), name=f"gnp-{n}-{p}-{seed}")
