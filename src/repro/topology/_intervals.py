"""Alternating-event interval compilation shared by schedules.

Both the fault layer (:mod:`repro.faults.injector`) and the
dynamic-topology layer (:mod:`repro.topology.dynamic`) describe outages
as alternating down/up event lists and query them as sorted
``[start, end)`` intervals.  The machinery lives here, below both
layers, so neither package needs to import the other.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Tuple

from repro.errors import ScheduleError

__all__ = ["compile_intervals", "is_down", "INFINITY"]

INFINITY = float("inf")


def compile_intervals(
    events: List[Tuple[float, str]], down_kind: str, up_kind: str, subject: str
) -> List[Tuple[float, float]]:
    """Alternating down/up events → sorted ``[start, end)`` intervals."""
    events = sorted(events, key=lambda pair: pair[0])
    intervals: List[Tuple[float, float]] = []
    down_since: Optional[float] = None
    for time, kind in events:
        if kind == down_kind:
            if down_since is not None:
                raise ScheduleError(
                    f"{subject}: {down_kind!r} at t={time} while already down "
                    f"since t={down_since}"
                )
            down_since = time
        elif kind == up_kind:
            if down_since is None:
                raise ScheduleError(
                    f"{subject}: {up_kind!r} at t={time} without a prior "
                    f"{down_kind!r}"
                )
            if time < down_since:
                raise ScheduleError(
                    f"{subject}: {up_kind!r} at t={time} precedes "
                    f"{down_kind!r} at t={down_since}"
                )
            intervals.append((down_since, time))
            down_since = None
        else:  # pragma: no cover - defensive
            raise ScheduleError(f"{subject}: unknown fault kind {kind!r}")
    if down_since is not None:
        intervals.append((down_since, INFINITY))
    return intervals


def is_down(intervals: List[Tuple[float, float]], t: float) -> bool:
    """Whether ``t`` falls inside any ``[start, end)`` interval."""
    i = bisect_right(intervals, (t, INFINITY)) - 1
    return i >= 0 and t < intervals[i][1]
