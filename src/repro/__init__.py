"""repro — reproduction of *Tight Bounds for Clock Synchronization*.

Lenzen, Locher, Wattenhofer (PODC 2009 / J. ACM 57(2), 2010).

The package implements the paper's gradient clock synchronization
algorithm A^opt, the asynchronous bounded-drift/bounded-delay system model
as a discrete-event simulation with *exact* piecewise-linear skew
measurement, the baseline algorithms the paper compares against, the
adversarial executions from the lower-bound proofs, and the model variants
of Sections 6 and 8.

Quickstart::

    from repro import SyncParams, simulate_aopt, topology

    params = SyncParams.recommended(epsilon=1e-4, delay_bound=1.0)
    trace = simulate_aopt(topology.line(16), params)
    print(trace.global_skew().value, trace.local_skew().value)
"""

from repro import topology
from repro.core.bounds import (
    global_skew_bound,
    global_skew_lower_bound,
    gradient_bound,
    local_skew_bound,
    local_skew_lower_bound,
)
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    ReproError,
    ScheduleError,
    SimulationError,
    TopologyError,
    TraceError,
)
from repro.exec import ExecutionSpec, ResultCache, SweepExecutor
from repro.faults import FaultInjector, FaultSchedule
from repro.sim.runner import run_execution, simulate_aopt
from repro.variants.fault_tolerant import FaultTolerantAoptAlgorithm

__version__ = "1.0.0"

__all__ = [
    "SyncParams",
    "AoptAlgorithm",
    "FaultTolerantAoptAlgorithm",
    "FaultSchedule",
    "FaultInjector",
    "simulate_aopt",
    "run_execution",
    "ExecutionSpec",
    "SweepExecutor",
    "ResultCache",
    "topology",
    "global_skew_bound",
    "local_skew_bound",
    "gradient_bound",
    "global_skew_lower_bound",
    "local_skew_lower_bound",
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "SimulationError",
    "ScheduleError",
    "TraceError",
    "InvariantViolation",
    "__version__",
]
