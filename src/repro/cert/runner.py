"""The certification campaign driver.

:func:`certify` is the engine behind ``repro certify``:

1. draw a deterministic scenario stream from the seed
   (:mod:`repro.cert.fuzzer`), compile every scenario to an
   :class:`~repro.exec.spec.ExecutionSpec`, and sweep them through a
   :class:`~repro.exec.pool.SweepExecutor` — fuzzing parallelizes,
   caches, and replays byte-identically like any other sweep;
2. evaluate every *applicable* execution certificate against every
   summary (skew bounds only on faultless runs, monitor conditions
   everywhere — see
   :meth:`~repro.cert.certificates.Certificate.applies_to`), collecting
   margin-to-bound statistics;
3. run the Section 7 construction certificates once per campaign;
4. for each violated certificate, shrink the *first* violating scenario
   to a minimal counterexample (:mod:`repro.cert.shrink`) and package it
   as a repro artifact (:mod:`repro.cert.artifact`), optionally written
   to ``artifact_dir``.

The report separates deterministic content (:meth:`CertificationReport.as_dict`
is stable for a fixed seed/budget/build, apart from the wall-clock
``duration_seconds`` field) from presentation (:meth:`~CertificationReport.format_text`).
A ``budget_seconds`` cap stops dispatching new scenario batches once the
wall-time budget is spent — already-dispatched work still completes, so
the processed prefix is always a deterministic function of how many
scenarios ran.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cert.artifact import ReproArtifact
from repro.cert.certificates import (
    Certificate,
    CertificateVerdict,
    resolve_certificates,
)
from repro.cert.fuzzer import generate_scenarios
from repro.cert.scenario import CertScenario
from repro.cert.shrink import shrink_scenario
from repro.exec.manifest import CampaignManifest
from repro.exec.pool import SweepExecutor

__all__ = ["CertificateStats", "CertificationReport", "certify"]

#: Scenarios dispatched per executor batch when a time budget applies.
_BATCH = 8


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample (deterministic)."""
    if not sorted_values:
        raise ValueError("percentile of empty sample")
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


@dataclass
class CertificateStats:
    """Per-certificate tallies across a campaign."""

    name: str
    checks: int = 0
    violations: int = 0
    margins: List[float] = field(default_factory=list)

    def record(self, verdict: CertificateVerdict) -> None:
        self.checks += 1
        if not verdict.satisfied:
            self.violations += 1
        if verdict.margin is not None:
            self.margins.append(verdict.margin)

    def margin_percentiles(self) -> Optional[Dict[str, float]]:
        """min/p5/p50/p95 of margin-to-bound (positive = slack held)."""
        if not self.margins:
            return None
        ordered = sorted(self.margins)
        return {
            "min": ordered[0],
            "p5": _percentile(ordered, 0.05),
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "certificate": self.name,
            "checks": self.checks,
            "violations": self.violations,
            "margin_percentiles": self.margin_percentiles(),
        }


@dataclass
class CertificationReport:
    """Everything a campaign established, JSON- and text-renderable."""

    algorithm: str
    seed: int
    budget: int
    scenarios_run: int
    include_faults: bool
    include_churn: bool
    include_byzantine: bool
    certificates: Tuple[str, ...]
    stats: Dict[str, CertificateStats]
    violations: List[Dict[str, object]]
    constructions: List[Dict[str, object]]
    errors: List[Dict[str, object]]
    duration_seconds: float
    unfinished: int = 0

    @property
    def clean(self) -> bool:
        """No execution violations, no failed constructions, no run errors."""
        return (
            not self.violations
            and not self.errors
            and all(c["satisfied"] for c in self.constructions)
        )

    @property
    def complete(self) -> bool:
        """Every fuzzed scenario actually ran (or was quarantined).

        An interrupted campaign — workers lost faster than the backend
        could replace them — leaves specs unfinished; those scenarios
        were never checked, so the campaign must not certify.
        """
        return self.unfinished == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "report": "certification",
            "algorithm": self.algorithm,
            "seed": self.seed,
            "budget": self.budget,
            "scenarios_run": self.scenarios_run,
            "include_faults": self.include_faults,
            "include_churn": self.include_churn,
            "include_byzantine": self.include_byzantine,
            "certificates": list(self.certificates),
            "clean": self.clean,
            "complete": self.complete,
            "unfinished": self.unfinished,
            "stats": [
                self.stats[name].as_dict() for name in sorted(self.stats)
            ],
            "violations": self.violations,
            "constructions": self.constructions,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
        }

    def format_text(self) -> str:
        lines = [
            f"certification: algorithm={self.algorithm} seed={self.seed} "
            f"scenarios={self.scenarios_run}/{self.budget} "
            f"faults={'on' if self.include_faults else 'off'} "
            f"churn={'on' if self.include_churn else 'off'} "
            f"byzantine={'on' if self.include_byzantine else 'off'}",
            "",
            f"{'certificate':<24} {'checks':>6} {'viols':>5}  margin min/p50/p95",
        ]
        for name in sorted(self.stats):
            stat = self.stats[name]
            pct = stat.margin_percentiles()
            margins = (
                f"{pct['min']:.4g} / {pct['p50']:.4g} / {pct['p95']:.4g}"
                if pct
                else "-"
            )
            lines.append(
                f"{name:<24} {stat.checks:>6} {stat.violations:>5}  {margins}"
            )
        for construction in self.constructions:
            status = "ok" if construction["satisfied"] else "FAILED"
            lines.append(
                f"{construction['certificate']:<24} {'1':>6} "
                f"{'0' if construction['satisfied'] else '1':>5}  "
                f"construction {status}"
            )
        if self.errors:
            lines.append("")
            lines.append(f"{len(self.errors)} scenario(s) failed to execute:")
            for error in self.errors:
                lines.append(f"  [{error['index']}] {error['error']}")
        if self.violations:
            lines.append("")
            lines.append(f"{len(self.violations)} VIOLATION(S):")
            for violation in self.violations:
                lines.append(
                    f"  {violation['certificate']}: {violation['verdict']['detail']}"
                )
                shrunk = violation.get("shrunk_scenario")
                if shrunk:
                    lines.append(
                        f"    shrunk to {shrunk['topology_kind']}-{shrunk['nodes']} "
                        f"horizon={shrunk['horizon']} "
                        f"via {' '.join(violation['shrink_steps']) or '(already minimal)'}"
                    )
                path = violation.get("artifact_path")
                if path:
                    lines.append(f"    repro artifact: {path}")
        if self.unfinished:
            lines.append("")
            lines.append(
                f"INCOMPLETE campaign: {self.unfinished} scenario(s) "
                "unchecked; resume with --resume MANIFEST"
            )
        lines.append("")
        if not self.clean:
            result = "VIOLATIONS FOUND"
        elif not self.complete:
            result = "INCOMPLETE"
        else:
            result = "CERTIFIED"
        lines.append("RESULT: " + result)
        return "\n".join(lines)


def _violation_evaluator(certificate: Certificate):
    """Build the shrinker's oracle: does this scenario still violate?"""

    def evaluate(scenario: CertScenario) -> Optional[CertificateVerdict]:
        summary = scenario.build_spec().run_summary()
        verdict = certificate.check_summary(
            summary, scenario.build_params(), scenario.diameter()
        )
        return None if verdict.satisfied else verdict

    return evaluate


def certify(
    theorems: Optional[Sequence[str]] = None,
    budget: int = 50,
    budget_seconds: Optional[float] = None,
    seed: int = 0,
    algorithm: str = "aopt",
    include_faults: bool = True,
    include_churn: bool = False,
    include_byzantine: bool = False,
    shrink: bool = True,
    max_shrink_evals: int = 160,
    artifact_dir: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
    manifest_path: Optional[str] = None,
    resume: bool = False,
) -> CertificationReport:
    """Run a certification campaign; see the module docstring for phases.

    ``theorems`` selects certificates by name (``None`` = the full
    catalog).  Construction certificates in the selection run once with
    the campaign's ε = 0.05, T = 1.0 reference parameters; execution
    certificates are checked against every fuzzed scenario they govern.

    ``include_churn`` switches the fuzzer to partition-then-merge
    dynamic-topology scenarios (see :mod:`repro.cert.fuzzer`); the
    ``kllo-stabilization`` certificate only ever applies there, and the
    static skew bounds drop out (they are vacuous under churn).

    ``include_byzantine`` switches it to Byzantine corruption scenarios
    instead: the ``ftgcs-byzantine-skew`` certificate only ever applies
    there, the fault-free skew bounds drop out (an unfiltered victim is
    *expected* to exceed them), and the monitor certificates keep
    applying (corruption rewrites messages, never clocks).

    ``manifest_path`` makes the campaign resumable: a
    :class:`~repro.exec.manifest.CampaignManifest` over every fuzzed
    spec is kept up to date on disk as batches complete.  With
    ``resume=True`` an existing manifest at that path is loaded first,
    so completed digests are served from the result cache (or the
    work-queue results store) and quarantined ones are skipped — the
    scenario stream itself is a pure function of ``seed``/``budget``,
    which is what makes the digests line up across invocations.
    """
    started = time.monotonic()
    selected = resolve_certificates(theorems)
    execution = [c for c in selected if c.kind == "execution"]
    construction = [c for c in selected if c.kind == "construction"]
    if executor is None:
        executor = SweepExecutor()

    scenarios = list(
        generate_scenarios(
            seed,
            budget,
            algorithm=algorithm,
            include_faults=include_faults,
            include_churn=include_churn,
            include_byzantine=include_byzantine,
        )
    )
    specs = [scenario.build_spec() for scenario in scenarios]
    manifest = None
    if manifest_path is not None:
        if resume and os.path.exists(manifest_path):
            manifest = CampaignManifest.load(manifest_path)
            for spec in specs:
                manifest.ensure(spec.digest(), spec.label)
        else:
            manifest = CampaignManifest.for_specs(
                specs,
                meta={
                    "command": "certify",
                    "seed": seed,
                    "budget": budget,
                    "algorithm": algorithm,
                    "include_faults": include_faults,
                    "include_churn": include_churn,
                    "include_byzantine": include_byzantine,
                },
                path=manifest_path,
            )
            manifest.save()
    stats = {c.name: CertificateStats(c.name) for c in execution}
    first_violation: Dict[str, Tuple[CertScenario, CertificateVerdict]] = {}
    errors: List[Dict[str, object]] = []
    scenarios_run = 0
    unfinished = 0

    for start in range(0, len(scenarios), _BATCH):
        if budget_seconds is not None and time.monotonic() - started > budget_seconds:
            break
        batch = scenarios[start : start + _BATCH]
        outcomes = executor.run(specs[start : start + _BATCH], manifest=manifest)
        # An interrupted backend (chaos, lost workers) returns only the
        # outcomes it finished; the gap is unchecked work, not success.
        unfinished += len(batch) - len(outcomes)
        for outcome in outcomes:
            scenario = batch[outcome.index]
            offset = outcome.index
            scenarios_run += 1
            if not outcome.ok:
                errors.append(
                    {"index": start + offset, "error": outcome.error,
                     "scenario": scenario.as_dict()}
                )
                continue
            params = scenario.build_params()
            diameter = scenario.diameter()
            for certificate in execution:
                if not certificate.applies_to(
                    algorithm,
                    scenario.has_faults,
                    scenario.has_topology_schedule,
                    scenario.has_byzantine,
                ):
                    continue
                verdict = certificate.check_summary(outcome.summary, params, diameter)
                stats[certificate.name].record(verdict)
                if not verdict.satisfied:
                    first_violation.setdefault(
                        certificate.name, (scenario, verdict)
                    )

    violations: List[Dict[str, object]] = []
    for name in sorted(first_violation):
        scenario, verdict = first_violation[name]
        certificate = resolve_certificates([name])[0]
        record: Dict[str, object] = {
            "certificate": name,
            "scenario": scenario.as_dict(),
            "verdict": verdict.as_dict(),
            "shrunk_scenario": None,
            "shrink_steps": [],
            "shrink_evaluations": 0,
            "artifact_path": None,
        }
        final_scenario, final_verdict, steps = scenario, verdict, ()
        if shrink:
            result = shrink_scenario(
                scenario, _violation_evaluator(certificate), max_evals=max_shrink_evals
            )
            final_scenario, final_verdict = result.scenario, result.verdict
            steps = result.steps
            record["shrunk_scenario"] = final_scenario.as_dict()
            record["shrink_steps"] = list(steps)
            record["shrink_evaluations"] = result.evaluations
            record["verdict"] = final_verdict.as_dict()
        artifact = ReproArtifact.from_verdict(final_scenario, final_verdict, steps)
        record["spec_digest"] = artifact.spec_digest
        if artifact_dir is not None:
            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(artifact_dir, f"repro-{name}.json")
            artifact.save(path)
            record["artifact_path"] = path
        violations.append(record)

    constructions: List[Dict[str, object]] = []
    if construction:
        from repro.core.params import SyncParams

        reference = SyncParams.recommended(0.05, 1.0)
        for certificate in construction:
            constructions.append(certificate.run(reference).as_dict())

    return CertificationReport(
        algorithm=algorithm,
        seed=seed,
        budget=budget,
        scenarios_run=scenarios_run,
        include_faults=include_faults,
        include_churn=include_churn,
        include_byzantine=include_byzantine,
        certificates=tuple(c.name for c in selected),
        stats=stats,
        violations=violations,
        constructions=constructions,
        errors=errors,
        duration_seconds=time.monotonic() - started,
        unfinished=unfinished,
    )
