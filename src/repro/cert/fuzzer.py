"""Seeded, fully deterministic scenario sampling.

The fuzzer is a pure function of ``(seed, index)``: scenario *i* of a
campaign is drawn from ``random.Random(f"cert:{seed}:{i}")``, so

* the same ``--seed`` always yields the same scenario stream, on any
  machine and regardless of worker count (the stream is generated before
  the sweep is dispatched);
* any single scenario can be regenerated without replaying the stream,
  which is how repro artifacts stay self-contained; and
* scenario seeds feed through to every seeded model component
  (random topologies, uniform delays, random-walk drift, fault hashing),
  so two campaigns with different seeds explore genuinely different
  executions.

Sampling ranges are chosen to stay in the regimes where the theorems
bind with visible margins: small-to-medium topologies (the shrinker's
job is to go smaller, not the fuzzer's), ε across an order of magnitude,
horizons several multiples of the initialization flood.  Fault injection
(when enabled) draws small crash/link-outage timelines; scenarios with
faults are certified only against the fault-compatible certificates (see
:meth:`~repro.cert.certificates.Certificate.applies_to`).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.cert.scenario import CertScenario, DELAY_KINDS, DRIFT_KINDS

__all__ = ["sample_scenario", "generate_scenarios"]

#: (topology_kind, weight) — line/ring dominate because path-like graphs
#: are where the gradient property is hardest.
_TOPOLOGY_WEIGHTS = (
    ("line", 3),
    ("ring", 2),
    ("star", 1),
    ("grid", 2),
    ("random", 2),
)

_EPSILONS = (0.02, 0.05, 0.1)
_DELAY_BOUNDS = (0.5, 1.0)


def _weighted_choice(rng: random.Random, pairs) -> str:
    total = sum(weight for _, weight in pairs)
    pick = rng.randrange(total)
    for value, weight in pairs:
        pick -= weight
        if pick < 0:
            return value
    raise AssertionError("unreachable")


def _sample_faults(
    rng: random.Random, nodes: int, horizon: float
) -> Tuple[Tuple, Tuple]:
    """Draw a small crash/link-outage timeline over the middle of the run."""
    crash_events: List[Tuple[int, float, Optional[float]]] = []
    link_events: List[Tuple[int, int, float, Optional[float]]] = []
    for _ in range(rng.randrange(0, 3)):
        node = rng.randrange(nodes)
        at = round(rng.uniform(0.2, 0.7) * horizon, 3)
        down_for = round(rng.uniform(0.05, 0.25) * horizon, 3)
        crash_events.append((node, at, at + down_for))
    for _ in range(rng.randrange(0, 2)):
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u == v:
            continue
        at = round(rng.uniform(0.2, 0.7) * horizon, 3)
        down_for = round(rng.uniform(0.05, 0.25) * horizon, 3)
        # Indices may not form an edge of the sampled topology; the
        # scenario build drops non-edges deterministically, so this stays
        # a valid (possibly weaker) schedule on every topology family.
        link_events.append((u, v, at, at + down_for))
    return tuple(crash_events), tuple(link_events)


def sample_scenario(
    seed: int,
    index: int,
    algorithm: str = "aopt",
    include_faults: bool = True,
) -> CertScenario:
    """Draw scenario ``index`` of the ``seed`` campaign (pure function)."""
    rng = random.Random(f"cert:{seed}:{index}")
    topology_kind = _weighted_choice(rng, _TOPOLOGY_WEIGHTS)
    if topology_kind == "grid":
        nodes = 2 * rng.randrange(2, 6)  # 4..10, even
    else:
        nodes = rng.randrange(4, 11)
    epsilon = rng.choice(_EPSILONS)
    delay_bound = rng.choice(_DELAY_BOUNDS)
    horizon = round(rng.uniform(40.0, 120.0), 1)
    drift_kind = rng.choice(DRIFT_KINDS[:-1])  # skip the trivial constant drift
    delay_kind = rng.choice(DELAY_KINDS)
    crash_events: Tuple = ()
    link_events: Tuple = ()
    if include_faults and rng.random() < 0.4:
        crash_events, link_events = _sample_faults(rng, nodes, horizon)
    return CertScenario(
        topology_kind=topology_kind,
        nodes=nodes,
        algorithm=algorithm,
        epsilon=epsilon,
        delay_bound=delay_bound,
        horizon=horizon,
        seed=seed * 100_003 + index,
        drift_kind=drift_kind,
        delay_kind=delay_kind,
        crash_events=crash_events,
        link_events=link_events,
    )


def generate_scenarios(
    seed: int,
    budget: int,
    algorithm: str = "aopt",
    include_faults: bool = True,
) -> Iterator[CertScenario]:
    """The first ``budget`` scenarios of the ``seed`` campaign, in order."""
    for index in range(budget):
        yield sample_scenario(
            seed, index, algorithm=algorithm, include_faults=include_faults
        )
