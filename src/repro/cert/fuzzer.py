"""Seeded, fully deterministic scenario sampling.

The fuzzer is a pure function of ``(seed, index)``: scenario *i* of a
campaign is drawn from ``random.Random(f"cert:{seed}:{i}")``, so

* the same ``--seed`` always yields the same scenario stream, on any
  machine and regardless of worker count (the stream is generated before
  the sweep is dispatched);
* any single scenario can be regenerated without replaying the stream,
  which is how repro artifacts stay self-contained; and
* scenario seeds feed through to every seeded model component
  (random topologies, uniform delays, random-walk drift, fault hashing),
  so two campaigns with different seeds explore genuinely different
  executions.

Sampling ranges are chosen to stay in the regimes where the theorems
bind with visible margins: small-to-medium topologies (the shrinker's
job is to go smaller, not the fuzzer's), ε across an order of magnitude,
horizons several multiples of the initialization flood.  Fault injection
(when enabled) draws small crash/link-outage timelines; scenarios with
faults are certified only against the fault-compatible certificates (see
:meth:`~repro.cert.certificates.Certificate.applies_to`).

Churn campaigns (``include_churn=True``) instead draw partition-then-
merge timelines aimed at the ``kllo-stabilization`` certificate: the
topology is restricted to line/ring (families with an analytically known
balanced cut), drift to two-group aligned with that cut (the adversary
that actually drives the components apart), and the partition duration
is sized from the drift rate so the components separate by well over the
static bound ``G`` before re-merging.  The horizon is then derived from
:func:`~repro.core.bounds.stabilization_settle_bound` so every scenario
runs comfortably past its own settle deadline ``t_s`` — a violation that
exists is always observable.  Fault injection is disabled under churn:
the settle bound only accounts for *topology* changes, so a crash
recovering after ``t_s`` could fail the claim spuriously.

Byzantine campaigns (``include_byzantine=True``) draw the adversary the
``ftgcs-byzantine-skew`` certificate is about: a star whose hub has
degree ≥ 4 (so ``f_v ≥ 1`` under the < 1/3 rule), one Byzantine *slow*
leaf, and tail-aligned two-group drift that puts the hub in the slow
group — the configuration where the Byzantine laggard estimates pin the
unfiltered hub's rate rule while the honest fast leaves pull away at
``2ε``.  The horizon is sized from the corruption magnitude so an
unfiltered victim's lag settles well past the certified bound before
the run ends.  Crash/link faults and churn are disabled: the Byzantine
certificate's claim is about corruption alone.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.cert.scenario import CertScenario, DELAY_KINDS, DRIFT_KINDS

__all__ = ["sample_scenario", "generate_scenarios"]

#: (topology_kind, weight) — line/ring dominate because path-like graphs
#: are where the gradient property is hardest.
_TOPOLOGY_WEIGHTS = (
    ("line", 3),
    ("ring", 2),
    ("star", 1),
    ("grid", 2),
    ("random", 2),
)

_EPSILONS = (0.02, 0.05, 0.1)
_DELAY_BOUNDS = (0.5, 1.0)


def _weighted_choice(rng: random.Random, pairs) -> str:
    total = sum(weight for _, weight in pairs)
    pick = rng.randrange(total)
    for value, weight in pairs:
        pick -= weight
        if pick < 0:
            return value
    raise AssertionError("unreachable")


def _sample_faults(
    rng: random.Random, nodes: int, horizon: float
) -> Tuple[Tuple, Tuple]:
    """Draw a small crash/link-outage timeline over the middle of the run."""
    crash_events: List[Tuple[int, float, Optional[float]]] = []
    link_events: List[Tuple[int, int, float, Optional[float]]] = []
    for _ in range(rng.randrange(0, 3)):
        node = rng.randrange(nodes)
        at = round(rng.uniform(0.2, 0.7) * horizon, 3)
        down_for = round(rng.uniform(0.05, 0.25) * horizon, 3)
        crash_events.append((node, at, at + down_for))
    for _ in range(rng.randrange(0, 2)):
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u == v:
            continue
        at = round(rng.uniform(0.2, 0.7) * horizon, 3)
        down_for = round(rng.uniform(0.05, 0.25) * horizon, 3)
        # Indices may not form an edge of the sampled topology; the
        # scenario build drops non-edges deterministically, so this stays
        # a valid (possibly weaker) schedule on every topology family.
        link_events.append((u, v, at, at + down_for))
    return tuple(crash_events), tuple(link_events)


#: Churn campaigns skip ε = 0.02: the partition duration needed to
#: separate components past the filter-sized gap scales as 1/ε, and the
#: settle bound on top of that would make every scenario a marathon.
_CHURN_EPSILONS = (0.05, 0.1)


def _sample_churn(
    rng: random.Random,
    topology_kind: str,
    nodes: int,
    epsilon: float,
    delay_bound: float,
) -> Tuple[Tuple, Tuple, float]:
    """Draw a partition-then-merge timeline plus a horizon that covers it.

    The cut splits the node order at ``n // 2`` — exactly the fast/slow
    boundary of the two-group drift the caller forces — so the components
    genuinely diverge at rate ``2ε`` while separated.  The duration is
    sized so the divergence clears the diameter-calibrated re-integration
    window of the planted ``kllo-frozen`` variant with margin, which also
    means it clears ``G`` (the window exceeds ``G``).
    """
    from repro.core.bounds import stabilization_settle_bound
    from repro.core.params import SyncParams

    params = SyncParams.recommended(epsilon, delay_bound)
    half = nodes // 2
    diameter = nodes - 1 if topology_kind == "line" else nodes // 2
    window = (diameter + 2) * delay_bound + params.h0
    at = round(rng.uniform(8.0, 20.0), 1)
    duration = round(window / (2 * epsilon) * rng.uniform(1.15, 1.6), 1)
    until = at + duration
    edge_outages = [(half - 1, half, at, until)]
    if topology_kind == "ring":
        # A ring needs both cut edges removed to actually partition.
        edge_outages.append((nodes - 1, 0, at, until))
    node_absences = []
    if rng.random() < 0.3:
        # One mid-partition leave/rejoin exercises the §4.2 rejoin path
        # without moving t_last past the merge.
        node = rng.randrange(nodes)
        leave_at = round(rng.uniform(0.3, 0.6) * until, 1)
        absent_for = round(rng.uniform(3.0, 10.0) * params.h0, 1)
        node_absences.append((node, leave_at, min(leave_at + absent_for, until)))
    t_last = max([until] + [rejoin for _, _, rejoin in node_absences])
    t_s = t_last + stabilization_settle_bound(params, diameter, t_last)
    horizon = round(t_s + rng.uniform(20.0, 50.0), 1)
    return tuple(edge_outages), tuple(node_absences), horizon


#: Byzantine campaigns reuse the churn ε pool: the victim's stalled lag
#: settles at a fixed multiple of the filter window, and the time to get
#: there scales as 1/ε — ε = 0.02 scenarios would be marathons for no
#: extra discrimination.
_BYZANTINE_EPSILONS = _CHURN_EPSILONS


def _sample_byzantine(
    rng: random.Random, nodes: int, epsilon: float, delay_bound: float
) -> Tuple[Tuple, float]:
    """Draw a one-Byzantine-leaf timeline plus a horizon that resolves it.

    The leaf index is drawn from the *slow* half (``[1, n // 2)``) so the
    lie direction matches the drift: the Byzantine node's honest clock is
    slow, its corrupted estimates are slower still, and the hub — also
    slow under tail-aligned two-group drift — is the node that needs the
    boost the lie suppresses.  An unfiltered victim's lag settles well
    past the certified ``G + κ`` bound, but it gets there much slower
    than the raw ``2ε`` divergence rate: corruption acceptance is
    episodic (the raw-value guard only admits a lie when it beats every
    earlier one), so the victim boosts in the gaps.  Empirically the lag
    needs around five ``window / 2ε`` units to settle; the horizon below
    grants that with margin.
    """
    from repro.core.params import SyncParams
    from repro.variants.ftgcs import ftgcs_rejection_window

    params = SyncParams.recommended(epsilon, delay_bound)
    window = ftgcs_rejection_window(params, 2)  # star diameter
    byz = rng.randrange(1, max(2, nodes // 2))
    at = round(rng.uniform(0.0, 2.0), 1)
    horizon = round(at + window / (2 * epsilon) * rng.uniform(5.0, 6.5), 1)
    return ((byz, at, None),), horizon


def sample_scenario(
    seed: int,
    index: int,
    algorithm: str = "aopt",
    include_faults: bool = True,
    include_churn: bool = False,
    include_byzantine: bool = False,
) -> CertScenario:
    """Draw scenario ``index`` of the ``seed`` campaign (pure function)."""
    rng = random.Random(f"cert:{seed}:{index}")
    topology_kind = _weighted_choice(rng, _TOPOLOGY_WEIGHTS)
    if topology_kind == "grid":
        nodes = 2 * rng.randrange(2, 6)  # 4..10, even
    else:
        nodes = rng.randrange(4, 11)
    epsilon = rng.choice(_EPSILONS)
    delay_bound = rng.choice(_DELAY_BOUNDS)
    horizon = round(rng.uniform(40.0, 120.0), 1)
    drift_kind = rng.choice(DRIFT_KINDS[:-1])  # skip the trivial constant drift
    delay_kind = rng.choice(DELAY_KINDS)
    crash_events: Tuple = ()
    link_events: Tuple = ()
    edge_outages: Tuple = ()
    node_absences: Tuple = ()
    byzantine_events: Tuple = ()
    if include_churn:
        # Churn redraws the scenario shape (see module docstring): a
        # cuttable family, the cut-aligned divergence adversary, no
        # faults, and a horizon derived from the settle bound.
        topology_kind = rng.choice(("line", "ring"))
        nodes = rng.randrange(4, 11)
        epsilon = rng.choice(_CHURN_EPSILONS)
        drift_kind = "two-group"
        edge_outages, node_absences, horizon = _sample_churn(
            rng, topology_kind, nodes, epsilon, delay_bound
        )
    elif include_byzantine:
        # Byzantine redraws likewise (see module docstring): a star with
        # a high-degree hub, one Byzantine slow leaf, drift putting the
        # hub in the slow group, no crash/link faults, and a horizon
        # sized so the unfiltered victim's stall is fully settled.
        topology_kind = "star"
        nodes = rng.randrange(5, 10)  # hub degree 4..8 → f_v ≥ 1
        epsilon = rng.choice(_BYZANTINE_EPSILONS)
        drift_kind = "two-group-tail"
        byzantine_events, horizon = _sample_byzantine(
            rng, nodes, epsilon, delay_bound
        )
    elif include_faults and rng.random() < 0.4:
        crash_events, link_events = _sample_faults(rng, nodes, horizon)
    return CertScenario(
        topology_kind=topology_kind,
        nodes=nodes,
        algorithm=algorithm,
        epsilon=epsilon,
        delay_bound=delay_bound,
        horizon=horizon,
        seed=seed * 100_003 + index,
        drift_kind=drift_kind,
        delay_kind=delay_kind,
        crash_events=crash_events,
        link_events=link_events,
        edge_outages=edge_outages,
        node_absences=node_absences,
        byzantine_events=byzantine_events,
    )


def generate_scenarios(
    seed: int,
    budget: int,
    algorithm: str = "aopt",
    include_faults: bool = True,
    include_churn: bool = False,
    include_byzantine: bool = False,
) -> Iterator[CertScenario]:
    """The first ``budget`` scenarios of the ``seed`` campaign, in order."""
    for index in range(budget):
        yield sample_scenario(
            seed,
            index,
            algorithm=algorithm,
            include_faults=include_faults,
            include_churn=include_churn,
            include_byzantine=include_byzantine,
        )
