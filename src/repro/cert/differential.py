"""Differential certification across A^opt variants.

The A^opt variants prove the *same* theorems wherever their model
assumptions overlap: on faultless executions, ``aopt``, ``aopt-jump``
(discrete jumps instead of rate boosts — the rate *upper* bound is
waived by its monitors, everything else stands), and ``aopt-ft`` (the
recovery-aware variant, which degenerates to A^opt when nothing fails)
must all satisfy or all violate each certificate on the same scenario.

:func:`differential_certify` runs the same faultless scenario stream
under every variant and flags any (scenario, certificate) cell where the
variants disagree on satisfaction.  Disagreement is itself a finding:
either a variant breaks a bound the baseline keeps (a bug in the
variant) or the baseline breaks one the variant keeps (a bug in the
baseline or the harness).  Margins legitimately differ — only the
boolean verdicts must agree.

Byzantine mode (``byzantine=True``) is the one place the harness
*expects* asymmetry.  The scenario stream switches to the fuzzer's
Byzantine corruption campaigns, and the certificates split in two:
symmetric ones (the monitors, which hold regardless of what messages
claim) are still required to agree across variants, while the
``requires_byzantine`` skew certificate is scored as a *survival
matrix* — per variant, how many scenarios it satisfied.  The expected
picture, pinned by the regression tests, is that ``ftgcs`` survives
every < 1/3-Byzantine scenario while the unfiltered ``aopt``/``aopt-ft``
survive none: the differential harness certifying the filter itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cert.certificates import execution_certificates
from repro.cert.fuzzer import generate_scenarios
from repro.exec.pool import SweepExecutor

__all__ = [
    "DifferentialReport",
    "differential_certify",
    "BYZANTINE_VARIANTS",
    "DEFAULT_VARIANTS",
]

#: The variants whose guarantees overlap on faultless executions.
DEFAULT_VARIANTS = ("aopt", "aopt-jump", "aopt-ft")

#: The variants compared under Byzantine corruption: the filtered
#: algorithm against the unfiltered baselines it is supposed to beat.
BYZANTINE_VARIANTS = ("aopt", "aopt-ft", "ftgcs")


@dataclass(frozen=True)
class DifferentialReport:
    """Per-cell agreement matrix outcome."""

    variants: Tuple[str, ...]
    seed: int
    scenarios_run: int
    certificates: Tuple[str, ...]
    disagreements: Tuple[Dict[str, object], ...]
    errors: Tuple[Dict[str, object], ...]
    byzantine: bool = False
    #: Byzantine mode only — ``{certificate: {variant: [satisfied, checks]}}``.
    survival: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)

    @property
    def agree(self) -> bool:
        """No errors and no disagreement on the *symmetric* certificates.

        The Byzantine survival matrix is intentionally excluded: its
        asymmetry is the expected finding, not a harness failure.
        """
        return not self.disagreements and not self.errors

    def survivors(self, certificate: str) -> Tuple[str, ...]:
        """Variants that satisfied ``certificate`` on every checked scenario."""
        cells = self.survival.get(certificate, {})
        return tuple(
            variant
            for variant in self.variants
            if variant in cells
            and cells[variant][1] > 0
            and cells[variant][0] == cells[variant][1]
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "report": "differential-certification",
            "variants": list(self.variants),
            "seed": self.seed,
            "scenarios_run": self.scenarios_run,
            "byzantine": self.byzantine,
            "certificates": list(self.certificates),
            "agree": self.agree,
            "disagreements": [dict(d) for d in self.disagreements],
            "errors": [dict(e) for e in self.errors],
            "survival": {
                name: {variant: list(counts) for variant, counts in cells.items()}
                for name, cells in self.survival.items()
            },
        }

    def format_text(self) -> str:
        lines = [
            f"differential certification: {' vs '.join(self.variants)} "
            f"seed={self.seed} scenarios={self.scenarios_run}"
            + (" byzantine=on" if self.byzantine else ""),
        ]
        if self.agree:
            lines.append(
                f"all {len(self.certificates)} certificates agree on every scenario"
                if not self.byzantine
                else "all symmetric certificates agree on every scenario"
            )
        for error in self.errors:
            lines.append(f"  ERROR [{error['index']}] {error['error']}")
        for cell in self.disagreements:
            verdicts = ", ".join(
                f"{variant}={'ok' if ok else 'VIOLATED'}"
                for variant, ok in sorted(cell["satisfied_by"].items())
            )
            lines.append(
                f"  DISAGREE [{cell['index']}] {cell['certificate']}: {verdicts}"
            )
        for name in sorted(self.survival):
            cells = self.survival[name]
            scores = ", ".join(
                f"{variant}={cells[variant][0]}/{cells[variant][1]}"
                for variant in self.variants
                if variant in cells
            )
            survivors = self.survivors(name) or ("none",)
            lines.append(f"  SURVIVAL {name}: {scores} -> {'/'.join(survivors)}")
        lines.append(
            "RESULT: " + ("VARIANTS AGREE" if self.agree else "DISAGREEMENT FOUND")
        )
        return "\n".join(lines)


def differential_certify(
    budget: int = 20,
    seed: int = 0,
    variants: Optional[Sequence[str]] = None,
    executor: Optional[SweepExecutor] = None,
    byzantine: bool = False,
) -> DifferentialReport:
    """Certify the same scenario stream under every variant.

    Scenarios are drawn faultless (fault handling is exactly where the
    variants' model assumptions stop overlapping) and every execution
    certificate is evaluated per variant; only satisfaction booleans are
    compared.

    With ``byzantine=True`` the stream switches to Byzantine corruption
    scenarios and the default comparison set to
    :data:`BYZANTINE_VARIANTS`; ``requires_byzantine`` certificates are
    scored into the survival matrix instead of the agreement check (see
    module docstring).
    """
    if executor is None:
        executor = SweepExecutor()
    if variants is None:
        variants = BYZANTINE_VARIANTS if byzantine else DEFAULT_VARIANTS
    variants = tuple(variants)
    base = list(
        generate_scenarios(
            seed, budget, include_faults=False, include_byzantine=byzantine
        )
    )
    per_variant = {
        variant: [s.with_changes(algorithm=variant) for s in base]
        for variant in variants
    }
    # One flat sweep over variants × scenarios: maximal executor parallelism.
    flat = [s for variant in variants for s in per_variant[variant]]
    outcomes = executor.run([s.build_spec() for s in flat])

    certificates = execution_certificates()
    disagreements: List[Dict[str, object]] = []
    errors: List[Dict[str, object]] = []
    survival: Dict[str, Dict[str, List[int]]] = {}
    for index, scenario in enumerate(base):
        cell_verdicts: Dict[str, Dict[str, bool]] = {}
        failed = False
        for v_index, variant in enumerate(variants):
            outcome = outcomes[v_index * len(base) + index]
            if not outcome.ok:
                errors.append(
                    {"index": index, "variant": variant, "error": outcome.error}
                )
                failed = True
                continue
            params = scenario.build_params()
            diameter = scenario.diameter()
            for certificate in certificates:
                if not certificate.applies_to(
                    variant,
                    has_faults=False,
                    has_byzantine=scenario.has_byzantine,
                ):
                    continue
                verdict = certificate.check_summary(outcome.summary, params, diameter)
                if certificate.requires_byzantine:
                    counts = survival.setdefault(certificate.name, {}).setdefault(
                        variant, [0, 0]
                    )
                    counts[0] += 1 if verdict.satisfied else 0
                    counts[1] += 1
                    continue
                cell_verdicts.setdefault(certificate.name, {})[variant] = (
                    verdict.satisfied
                )
        if failed:
            continue
        for name, satisfied_by in cell_verdicts.items():
            if len(satisfied_by) == len(variants) and len(set(satisfied_by.values())) > 1:
                disagreements.append(
                    {
                        "index": index,
                        "certificate": name,
                        "scenario": scenario.as_dict(),
                        "satisfied_by": satisfied_by,
                    }
                )
    return DifferentialReport(
        variants=variants,
        seed=seed,
        scenarios_run=len(base),
        certificates=tuple(c.name for c in certificates),
        disagreements=tuple(disagreements),
        errors=tuple(errors),
        byzantine=byzantine,
        survival=survival,
    )
