"""Differential certification across A^opt variants.

The A^opt variants prove the *same* theorems wherever their model
assumptions overlap: on faultless executions, ``aopt``, ``aopt-jump``
(discrete jumps instead of rate boosts — the rate *upper* bound is
waived by its monitors, everything else stands), and ``aopt-ft`` (the
recovery-aware variant, which degenerates to A^opt when nothing fails)
must all satisfy or all violate each certificate on the same scenario.

:func:`differential_certify` runs the same faultless scenario stream
under every variant and flags any (scenario, certificate) cell where the
variants disagree on satisfaction.  Disagreement is itself a finding:
either a variant breaks a bound the baseline keeps (a bug in the
variant) or the baseline breaks one the variant keeps (a bug in the
baseline or the harness).  Margins legitimately differ — only the
boolean verdicts must agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cert.certificates import execution_certificates
from repro.cert.fuzzer import generate_scenarios
from repro.exec.pool import SweepExecutor

__all__ = ["DifferentialReport", "differential_certify", "DEFAULT_VARIANTS"]

#: The variants whose guarantees overlap on faultless executions.
DEFAULT_VARIANTS = ("aopt", "aopt-jump", "aopt-ft")


@dataclass(frozen=True)
class DifferentialReport:
    """Per-cell agreement matrix outcome."""

    variants: Tuple[str, ...]
    seed: int
    scenarios_run: int
    certificates: Tuple[str, ...]
    disagreements: Tuple[Dict[str, object], ...]
    errors: Tuple[Dict[str, object], ...]

    @property
    def agree(self) -> bool:
        return not self.disagreements and not self.errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "report": "differential-certification",
            "variants": list(self.variants),
            "seed": self.seed,
            "scenarios_run": self.scenarios_run,
            "certificates": list(self.certificates),
            "agree": self.agree,
            "disagreements": [dict(d) for d in self.disagreements],
            "errors": [dict(e) for e in self.errors],
        }

    def format_text(self) -> str:
        lines = [
            f"differential certification: {' vs '.join(self.variants)} "
            f"seed={self.seed} scenarios={self.scenarios_run}",
        ]
        if self.agree:
            lines.append(
                f"all {len(self.certificates)} certificates agree on every scenario"
            )
        for error in self.errors:
            lines.append(f"  ERROR [{error['index']}] {error['error']}")
        for cell in self.disagreements:
            verdicts = ", ".join(
                f"{variant}={'ok' if ok else 'VIOLATED'}"
                for variant, ok in sorted(cell["satisfied_by"].items())
            )
            lines.append(
                f"  DISAGREE [{cell['index']}] {cell['certificate']}: {verdicts}"
            )
        lines.append(
            "RESULT: " + ("VARIANTS AGREE" if self.agree else "DISAGREEMENT FOUND")
        )
        return "\n".join(lines)


def differential_certify(
    budget: int = 20,
    seed: int = 0,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    executor: Optional[SweepExecutor] = None,
) -> DifferentialReport:
    """Certify the same faultless scenario stream under every variant.

    Scenarios are drawn faultless (fault handling is exactly where the
    variants' model assumptions stop overlapping) and every execution
    certificate is evaluated per variant; only satisfaction booleans are
    compared.
    """
    if executor is None:
        executor = SweepExecutor()
    variants = tuple(variants)
    base = list(generate_scenarios(seed, budget, include_faults=False))
    per_variant = {
        variant: [s.with_changes(algorithm=variant) for s in base]
        for variant in variants
    }
    # One flat sweep over variants × scenarios: maximal executor parallelism.
    flat = [s for variant in variants for s in per_variant[variant]]
    outcomes = executor.run([s.build_spec() for s in flat])

    certificates = execution_certificates()
    disagreements: List[Dict[str, object]] = []
    errors: List[Dict[str, object]] = []
    for index, scenario in enumerate(base):
        cell_verdicts: Dict[str, Dict[str, bool]] = {}
        failed = False
        for v_index, variant in enumerate(variants):
            outcome = outcomes[v_index * len(base) + index]
            if not outcome.ok:
                errors.append(
                    {"index": index, "variant": variant, "error": outcome.error}
                )
                failed = True
                continue
            params = scenario.build_params()
            diameter = scenario.diameter()
            for certificate in certificates:
                if not certificate.applies_to(variant, has_faults=False):
                    continue
                verdict = certificate.check_summary(outcome.summary, params, diameter)
                cell_verdicts.setdefault(certificate.name, {})[variant] = (
                    verdict.satisfied
                )
        if failed:
            continue
        for name, satisfied_by in cell_verdicts.items():
            if len(satisfied_by) == len(variants) and len(set(satisfied_by.values())) > 1:
                disagreements.append(
                    {
                        "index": index,
                        "certificate": name,
                        "scenario": scenario.as_dict(),
                        "satisfied_by": satisfied_by,
                    }
                )
    return DifferentialReport(
        variants=variants,
        seed=seed,
        scenarios_run=len(base),
        certificates=tuple(c.name for c in certificates),
        disagreements=tuple(disagreements),
        errors=tuple(errors),
    )
