"""Theorem certification: adversarial fuzzing with counterexample shrinking.

The paper's results are quantitative theorems; every execution the model
admits must satisfy them.  This package turns each theorem into a
machine-checkable :class:`~repro.cert.certificates.Certificate` and
*searches* for violations instead of spot-checking hand-picked runs:

* :mod:`repro.cert.certificates` — the certificate registry: one entry per
  theorem bound (Theorem 5.5 global skew, Theorem 5.10 local skew, the
  Corollary 5.3 envelope/rate conditions, monotonicity) plus the Section 7
  lower-bound constructions (Theorems 7.2 and 7.7) as self-contained
  *construction* certificates.  Tests and the certifier share the same
  bound formulas through this registry, so they can never disagree.
* :mod:`repro.cert.scenario` — :class:`CertScenario`, a pure-data,
  JSON-round-trippable description of one fuzz case (topology, drift,
  delay, params regime, horizon, fault events) that compiles to an
  :class:`~repro.exec.spec.ExecutionSpec`.
* :mod:`repro.cert.fuzzer` — seeded, fully deterministic scenario
  sampling; the same seed always yields the same scenario stream.
* :mod:`repro.cert.shrink` — a deterministic delta-debugging minimizer
  that reduces a violating scenario (fewer nodes, shorter horizon,
  simpler drift/delay, fewer fault events) while preserving the
  violation.
* :mod:`repro.cert.artifact` — self-contained repro artifacts (scenario +
  spec digest + canonical violation record) that replay byte-identically
  under ``repro certify --replay``.
* :mod:`repro.cert.runner` — the certification campaign driver: fuzzes
  through the parallel :class:`~repro.exec.pool.SweepExecutor`, evaluates
  every applicable certificate per run, shrinks violations, and reports
  margin-to-bound percentiles.
* :mod:`repro.cert.differential` — cross-variant certification: variants
  whose model assumptions overlap must agree on bound satisfaction.
* :mod:`repro.cert.planted` — a deliberately broken rate-rule variant,
  the planted violation used to prove the harness finds and shrinks real
  counterexamples.

See ``docs/CERTIFICATION.md`` for the certificate catalog and the repro
artifact format.
"""

from repro.cert.artifact import ReplayResult, ReproArtifact, replay_artifact
from repro.cert.certificates import (
    CERTIFICATES,
    Certificate,
    CertificateVerdict,
    certificate_bound,
    construction_certificates,
    execution_certificates,
    resolve_certificates,
)
from repro.cert.differential import DifferentialReport, differential_certify
from repro.cert.fuzzer import generate_scenarios, sample_scenario
from repro.cert.planted import BrokenRateRuleAoptAlgorithm
from repro.cert.runner import CertificationReport, CertificateStats, certify
from repro.cert.scenario import CertScenario
from repro.cert.shrink import ShrinkResult, shrink_scenario

__all__ = [
    "CERTIFICATES",
    "Certificate",
    "CertificateVerdict",
    "certificate_bound",
    "construction_certificates",
    "execution_certificates",
    "resolve_certificates",
    "CertScenario",
    "generate_scenarios",
    "sample_scenario",
    "shrink_scenario",
    "ShrinkResult",
    "ReproArtifact",
    "ReplayResult",
    "replay_artifact",
    "certify",
    "CertificationReport",
    "CertificateStats",
    "differential_certify",
    "DifferentialReport",
    "BrokenRateRuleAoptAlgorithm",
]
