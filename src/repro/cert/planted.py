"""Deliberately broken A^opt variants — the planted violations.

The certification harness's own correctness claim is "it finds real
counterexamples and shrinks them."  That claim needs positive controls:
algorithms that *look* like A^opt (same messages, same estimates, same
name-shaped interface) but carry one plausible bug each, visible only to
the certificate whose discrimination is under test.

:class:`BrokenRateRuleNode` overrides ``_set_clock_rate`` (Algorithm 3)
to never engage the fast multiplier.  Every clock then free-runs at its
hardware rate, so under a two-group drift adversary the global skew grows
like ``2εt`` without bound — past ``G`` once the horizon exceeds roughly
``G / (2ε)`` — while each clock individually stays inside the
``[(1−ε)t, (1+ε)t]`` envelope and the ``[α, β]`` rate band.  The planted
bug is thus visible *only* to the Theorem 5.5/5.10 skew certificates,
which is exactly the discrimination the shrinker tests need.

:class:`FrozenIntegrationNode` plants the dynamic-topology analogue: a
"sanity filter" that silently discards any message whose ``L^max`` runs
more than ``(D + 2)·T + H0`` ahead of the node's own estimate — a
plausible guard, since in static operation a legitimate value is at most
one flood plus one broadcast period away (Lemma 5.4 territory), so the
filter never fires and the variant is indistinguishable from
``kllo-dynamic`` on every static certificate.  But after a partition
long enough for the components to drift past the window (duration
``≳ ((D+2)T + H0) / 2ε``), the lagging component's first contact with
the leading one carries an ``L^max`` outside it — the lagging side drops
the message, never adopts the larger value, never boosts, and the spread
stays above ``G`` forever: exactly the bug class the
``kllo-stabilization`` certificate exists to catch.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

from repro.core.interfaces import NodeContext
from repro.core.node import AoptAlgorithm, AoptNode, RATE_RESET_ALARM
from repro.core.params import SyncParams
from repro.variants.fault_tolerant import _FaultTolerantNode
from repro.variants.ftgcs import FtgcsAlgorithm, FtgcsNode
from repro.variants.kllo_dynamic import KlloDynamicAlgorithm

__all__ = [
    "BrokenRateRuleAoptAlgorithm",
    "BrokenRateRuleNode",
    "FrozenIntegrationAlgorithm",
    "FrozenIntegrationNode",
    "REJECTION_SLACK_HOPS",
    "TrustingFtgcsAlgorithm",
    "TrustingFtgcsNode",
]

NodeId = Hashable

#: Extra hops of headroom the planted filter grants beyond the diameter.
REJECTION_SLACK_HOPS = 2


class BrokenRateRuleNode(AoptNode):
    """A^opt node whose *setClockRate* never boosts (planted bug)."""

    def _set_clock_rate(self, ctx: NodeContext) -> None:
        # The bug: ignore the admissible increase entirely and stay at the
        # base multiplier, as if Algorithm 3 always computed R_v = 0.
        ctx.set_rate_multiplier(1.0)
        ctx.cancel_alarm(RATE_RESET_ALARM)


class BrokenRateRuleAoptAlgorithm(AoptAlgorithm):
    """Factory for the planted-violation variant (name ``aopt-broken-rate``).

    Registered under its own algorithm name so certification reports,
    spec digests, and repro artifacts unambiguously identify planted-bug
    runs; it claims the A^opt guarantees (it is in every certificate's
    ``governs`` set) precisely so the certifier will hold it to them.
    """

    def __init__(self, params: SyncParams, record_estimates: bool = False):
        super().__init__(params, record_estimates=record_estimates)
        self.name = "aopt-broken-rate"

    def make_node(
        self, node_id: NodeId, neighbors: Sequence[NodeId]
    ) -> BrokenRateRuleNode:
        return BrokenRateRuleNode(
            node_id, neighbors, self.params, record_estimates=self.record_estimates
        )


class FrozenIntegrationNode(_FaultTolerantNode):
    """kllo-dynamic node with a planted re-integration bug.

    The "sanity filter" drops any message whose ``L^max`` leads this
    node's own estimate by more than ``rejection_window``.  In static
    operation a legitimate lead is bounded by flood latency plus one
    broadcast period, so a window of ``(D + 2)·T + H0`` never fires —
    but after a partition of duration ``≳ window / 2ε`` the re-merge
    messages are *correct* and still get dropped, so the lagging
    component never re-integrates.
    """

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Sequence[NodeId],
        params: SyncParams,
        staleness_timeout: float,
        rejection_window: float,
    ):
        super().__init__(node_id, neighbors, params, staleness_timeout)
        self.rejection_window = rejection_window

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        _, their_lmax = payload
        if (
            not self._needs_init_send
            and their_lmax - self.l_max(ctx.hardware()) > self.rejection_window
        ):
            # The bug: "a value this far ahead must be corrupt."  After a
            # long partition it is merely true.  (§4.2 first-message
            # integration is exempted via _needs_init_send, which is what
            # makes the bug survive every static certificate.)
            return
        super().on_message(ctx, sender, payload)


class TrustingFtgcsNode(FtgcsNode):
    """ftgcs node that trusts every neighbor estimate (planted bug).

    The fault-tolerant filter is the *only* thing standing between a
    Byzantine neighbor's fabricated laggard estimates and the rate rule:
    an offset ``magnitude`` below the true clock drags ``Λ↓`` up past
    ``κ``, so ``clamped_rate_increase`` goes non-positive and the victim
    never boosts again — under a two-group drift adversary the honest
    fast nodes then pull away at ``2εt`` without bound.  Skipping the
    filter re-exposes exactly that channel while staying byte-identical
    to ``ftgcs`` on every fault-free execution, which is what makes the
    shrunk counterexample land on a star with a Byzantine center of
    attention and nothing else.
    """

    def skew_estimates(self, ctx: NodeContext):
        # The bug: bypass FtgcsNode's trimming filter and use the raw
        # A^opt estimate set, extremes and all.
        return AoptNode.skew_estimates(self, ctx)


class TrustingFtgcsAlgorithm(FtgcsAlgorithm):
    """Factory for the planted Byzantine-vulnerable variant (``ftgcs-trusting``).

    Registered under its own name for the same reason as
    ``aopt-broken-rate``: reports and repro artifacts must unambiguously
    identify planted-bug runs, while the certifier holds the variant to
    the full ``ftgcs`` claim set — including the Byzantine skew
    certificate it is built to fail.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.name = "ftgcs-trusting"

    def make_node(
        self, node_id: NodeId, neighbors: Sequence[NodeId]
    ) -> TrustingFtgcsNode:
        return TrustingFtgcsNode(
            node_id,
            neighbors,
            self.params,
            self.staleness_timeout,
            self.rejection_window,
            self.max_faulty,
        )


class FrozenIntegrationAlgorithm(KlloDynamicAlgorithm):
    """Factory for the planted dynamic-topology variant (``kllo-frozen``).

    Registered under its own name for the same reason as
    ``aopt-broken-rate``: certification reports and repro artifacts must
    unambiguously identify planted-bug runs, while the certifier holds
    the variant to the full ``kllo-dynamic`` claim set — including the
    stabilization certificate it is built to fail.

    The filter window is calibrated from the deployment ``diameter``
    (the bug's author "knew" legitimate ``L^max`` leads are at most one
    flood away), so the factory needs the diameter at construction time.
    """

    def __init__(
        self,
        params: SyncParams,
        diameter: int,
        staleness_timeout: Optional[float] = None,
    ):
        super().__init__(params, staleness_timeout)
        self.name = "kllo-frozen"
        self.diameter = int(diameter)
        self.rejection_window = (
            (self.diameter + REJECTION_SLACK_HOPS) * params.delay_bound + params.h0
        )

    def make_node(
        self, node_id: NodeId, neighbors: Sequence[NodeId]
    ) -> FrozenIntegrationNode:
        return FrozenIntegrationNode(
            node_id,
            neighbors,
            self.params,
            self.staleness_timeout,
            self.rejection_window,
        )
