"""A deliberately broken A^opt variant — the planted violation.

The certification harness's own correctness claim is "it finds real
counterexamples and shrinks them."  That claim needs a positive control:
an algorithm that *looks* like A^opt (same messages, same estimates, same
name-shaped interface) but whose rate rule is disabled, so it provably
violates Theorem 5.5 while still satisfying the envelope and rate-bound
conditions.

:class:`BrokenRateRuleNode` overrides ``_set_clock_rate`` (Algorithm 3)
to never engage the fast multiplier.  Every clock then free-runs at its
hardware rate, so under a two-group drift adversary the global skew grows
like ``2εt`` without bound — past ``G`` once the horizon exceeds roughly
``G / (2ε)`` — while each clock individually stays inside the
``[(1−ε)t, (1+ε)t]`` envelope and the ``[α, β]`` rate band.  The planted
bug is thus visible *only* to the Theorem 5.5/5.10 skew certificates,
which is exactly the discrimination the shrinker tests need.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.interfaces import NodeContext
from repro.core.node import AoptAlgorithm, AoptNode, RATE_RESET_ALARM
from repro.core.params import SyncParams

__all__ = ["BrokenRateRuleAoptAlgorithm", "BrokenRateRuleNode"]

NodeId = Hashable


class BrokenRateRuleNode(AoptNode):
    """A^opt node whose *setClockRate* never boosts (planted bug)."""

    def _set_clock_rate(self, ctx: NodeContext) -> None:
        # The bug: ignore the admissible increase entirely and stay at the
        # base multiplier, as if Algorithm 3 always computed R_v = 0.
        ctx.set_rate_multiplier(1.0)
        ctx.cancel_alarm(RATE_RESET_ALARM)


class BrokenRateRuleAoptAlgorithm(AoptAlgorithm):
    """Factory for the planted-violation variant (name ``aopt-broken-rate``).

    Registered under its own algorithm name so certification reports,
    spec digests, and repro artifacts unambiguously identify planted-bug
    runs; it claims the A^opt guarantees (it is in every certificate's
    ``governs`` set) precisely so the certifier will hold it to them.
    """

    def __init__(self, params: SyncParams, record_estimates: bool = False):
        super().__init__(params, record_estimates=record_estimates)
        self.name = "aopt-broken-rate"

    def make_node(
        self, node_id: NodeId, neighbors: Sequence[NodeId]
    ) -> BrokenRateRuleNode:
        return BrokenRateRuleNode(
            node_id, neighbors, self.params, record_estimates=self.record_estimates
        )
