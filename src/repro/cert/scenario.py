"""``CertScenario`` — one fuzz case as pure, JSON-round-trippable data.

A scenario is the fuzzer's and shrinker's unit of work: a flat record of
topology family and size, algorithm variant, parameter regime, drift and
delay adversary kinds, horizon, and fault events.  It is deliberately
*more abstract* than :class:`~repro.exec.spec.ExecutionSpec` — every
field is a number, a short string, or a tuple of those — so that

* the shrinker can transform it structurally (swap the topology family,
  halve the horizon, drop a crash) without touching model objects;
* it serializes canonically (:meth:`CertScenario.canonical_json`) into
  repro artifacts that replay byte-identically; and
* fault events reference nodes *by index into the topology's node
  order*, which keeps a schedule meaningful while the shrinker removes
  nodes — events whose indices fall outside the shrunk topology are
  dropped deterministically at build time.

Dynamic-topology events (``edge_outages``, ``node_absences``) follow the
same index-based convention and compile to a
:class:`~repro.topology.dynamic.TopologySchedule`; each tuple is
self-contained (one outage interval), so the churn shrink pass can drop
them individually without orphaning a reappear event.

:meth:`CertScenario.build_spec` compiles a scenario to a fully concrete
``ExecutionSpec`` (with ``check_invariants=True`` so the envelope/rate/
monotonicity monitors ride along); everything downstream — digesting,
caching, parallel execution — is the existing exec layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core.params import SyncParams
from repro.errors import ConfigurationError
from repro.exec.spec import ExecutionSpec
from repro.faults.schedule import FaultSchedule
from repro.sim.delays import ConstantDelay, UniformDelay, ZeroDelay
from repro.sim.drift import (
    AlternatingDrift,
    ConstantDrift,
    RandomWalkDrift,
    SinusoidalDrift,
    TwoGroupDrift,
)
from repro.topology.generators import (
    Topology,
    grid,
    line,
    random_connected,
    ring,
    star,
)

__all__ = [
    "CertScenario",
    "TOPOLOGY_KINDS",
    "DRIFT_KINDS",
    "DELAY_KINDS",
    "min_nodes",
    "valid_nodes",
]

#: ``(node_index, crash_at, recover_at_or_None)``
CrashEvent = Tuple[int, float, Optional[float]]
#: ``(node_index, byzantine_at, end_at_or_None)``
ByzantineEvent = Tuple[int, float, Optional[float]]
#: ``(u_index, v_index, down_at, up_at_or_None)``
LinkEvent = Tuple[int, int, float, Optional[float]]
#: ``(u_index, v_index, disappear_at, reappear_at_or_None)``
EdgeOutage = Tuple[int, int, float, Optional[float]]
#: ``(node_index, leave_at, rejoin_at_or_None)``
NodeAbsence = Tuple[int, float, Optional[float]]

#: Smallest node count each topology family supports.
_TOPOLOGY_MIN = {"line": 2, "ring": 3, "star": 2, "grid": 4, "random": 3}

TOPOLOGY_KINDS = tuple(_TOPOLOGY_MIN)
#: Drift kinds in decreasing adversarial complexity (shrink order).
#: ``two-group-tail`` mirrors ``two-group`` with the *tail* half fast, so
#: Byzantine scenarios can put a star's hub (node 0) in the slow group.
DRIFT_KINDS = (
    "random-walk",
    "sinusoidal",
    "alternating",
    "two-group-tail",
    "two-group",
    "constant",
)
#: Delay kinds in decreasing complexity (shrink order).
DELAY_KINDS = ("uniform", "constant", "zero")


def min_nodes(topology_kind: str) -> int:
    """Smallest valid node count for a topology family."""
    try:
        return _TOPOLOGY_MIN[topology_kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology kind {topology_kind!r}; "
            f"known: {', '.join(TOPOLOGY_KINDS)}"
        )


def valid_nodes(topology_kind: str, nodes: int) -> bool:
    """Is ``nodes`` a buildable size for the family? (grids must be even)"""
    if nodes < min_nodes(topology_kind):
        return False
    if topology_kind == "grid":
        return nodes % 2 == 0
    return True


@dataclass(frozen=True)
class CertScenario:
    """One fuzz case: everything needed to rebuild its ``ExecutionSpec``."""

    topology_kind: str
    nodes: int
    algorithm: str
    epsilon: float
    delay_bound: float
    horizon: float
    seed: int
    drift_kind: str = "two-group"
    delay_kind: str = "constant"
    crash_events: Tuple[CrashEvent, ...] = field(default_factory=tuple)
    link_events: Tuple[LinkEvent, ...] = field(default_factory=tuple)
    edge_outages: Tuple[EdgeOutage, ...] = field(default_factory=tuple)
    node_absences: Tuple[NodeAbsence, ...] = field(default_factory=tuple)
    byzantine_events: Tuple[ByzantineEvent, ...] = field(default_factory=tuple)

    # -- derived model objects ----------------------------------------------

    @property
    def has_faults(self) -> bool:
        return bool(self.crash_events or self.link_events)

    @property
    def has_byzantine(self) -> bool:
        return bool(self.byzantine_events)

    @property
    def has_topology_schedule(self) -> bool:
        return bool(self.edge_outages or self.node_absences)

    def build_topology(self) -> Topology:
        if not valid_nodes(self.topology_kind, self.nodes):
            raise ConfigurationError(
                f"{self.nodes} nodes is not a valid {self.topology_kind!r} size"
            )
        if self.topology_kind == "line":
            return line(self.nodes)
        if self.topology_kind == "ring":
            return ring(self.nodes)
        if self.topology_kind == "star":
            return star(self.nodes)
        if self.topology_kind == "grid":
            return grid(2, self.nodes // 2)
        return random_connected(self.nodes, p=0.4, seed=self.seed)

    def build_params(self) -> SyncParams:
        return SyncParams.recommended(self.epsilon, self.delay_bound)

    def _build_drift(self, topology: Topology):
        if self.drift_kind == "two-group":
            half = max(1, len(topology.nodes) // 2)
            return TwoGroupDrift(self.epsilon, fast_nodes=topology.nodes[:half])
        if self.drift_kind == "two-group-tail":
            half = max(1, len(topology.nodes) // 2)
            return TwoGroupDrift(self.epsilon, fast_nodes=topology.nodes[half:])
        if self.drift_kind == "random-walk":
            return RandomWalkDrift(
                self.epsilon,
                step_period=self.horizon / 8,
                step_size=self.epsilon / 2,
                seed=self.seed,
            )
        if self.drift_kind == "alternating":
            # Antiphase adjacent indices: the worst-case local-skew pattern.
            phases = {node: i % 2 for i, node in enumerate(topology.nodes)}
            return AlternatingDrift(
                self.epsilon, period=self.horizon / 4, phases=phases
            )
        if self.drift_kind == "sinusoidal":
            return SinusoidalDrift(self.epsilon, period=self.horizon / 2)
        if self.drift_kind == "constant":
            return ConstantDrift(self.epsilon, rate=1.0)
        raise ConfigurationError(
            f"unknown drift kind {self.drift_kind!r}; known: {', '.join(DRIFT_KINDS)}"
        )

    def _build_delay(self):
        if self.delay_kind == "constant":
            return ConstantDelay(self.delay_bound)
        if self.delay_kind == "uniform":
            return UniformDelay(0.0, self.delay_bound, seed=self.seed)
        if self.delay_kind == "zero":
            return ZeroDelay(max_delay=self.delay_bound)
        raise ConfigurationError(
            f"unknown delay kind {self.delay_kind!r}; known: {', '.join(DELAY_KINDS)}"
        )

    def _build_algorithm(self, params: SyncParams, topology: Topology):
        if self.algorithm == "aopt":
            from repro.core.node import AoptAlgorithm

            return AoptAlgorithm(params)
        if self.algorithm == "aopt-jump":
            from repro.variants.jump_aopt import JumpAoptAlgorithm

            return JumpAoptAlgorithm(params)
        if self.algorithm == "aopt-ft":
            from repro.variants.fault_tolerant import FaultTolerantAoptAlgorithm

            return FaultTolerantAoptAlgorithm(params)
        if self.algorithm == "aopt-broken-rate":
            from repro.cert.planted import BrokenRateRuleAoptAlgorithm

            return BrokenRateRuleAoptAlgorithm(params)
        if self.algorithm == "kllo-dynamic":
            from repro.variants.kllo_dynamic import KlloDynamicAlgorithm

            return KlloDynamicAlgorithm(params)
        if self.algorithm == "kllo-frozen":
            from repro.cert.planted import FrozenIntegrationAlgorithm
            from repro.topology.properties import diameter

            # The planted filter window is diameter-calibrated; compute it
            # from the *built* topology so shrinking the node count also
            # shrinks the window consistently.
            return FrozenIntegrationAlgorithm(params, diameter(topology))
        if self.algorithm in ("ftgcs", "ftgcs-trusting"):
            from repro.topology.properties import diameter
            from repro.variants.ftgcs import ftgcs_rejection_window

            # Like kllo-frozen, the rejection window is calibrated from
            # the *built* topology so shrinking stays consistent.
            window = ftgcs_rejection_window(params, diameter(topology))
            if self.algorithm == "ftgcs":
                from repro.variants.ftgcs import FtgcsAlgorithm

                return FtgcsAlgorithm(params, window)
            from repro.cert.planted import TrustingFtgcsAlgorithm

            return TrustingFtgcsAlgorithm(params, window)
        if self.algorithm == "gcs-pcls":
            from repro.variants.pcls import PclsAlgorithm

            return PclsAlgorithm(params)
        raise ConfigurationError(
            f"unknown certifiable algorithm {self.algorithm!r}; known: "
            "aopt, aopt-jump, aopt-ft, aopt-broken-rate, kllo-dynamic, "
            "kllo-frozen, ftgcs, ftgcs-trusting, gcs-pcls"
        )

    def build_faults(self, topology: Topology) -> Optional[FaultSchedule]:
        """Compile fault events, dropping those that reference absent nodes.

        Index-based references plus deterministic dropping make fault
        schedules *robust to shrinking*: removing nodes simply prunes the
        events that mentioned them.
        """
        n = len(topology.nodes)
        crashes = [e for e in self.crash_events if e[0] < n]
        links = [
            e
            for e in self.link_events
            if e[0] < n
            and e[1] < n
            and topology.nodes[e[1]] in topology.neighbors(topology.nodes[e[0]])
        ]
        byzantine = [e for e in self.byzantine_events if e[0] < n]
        if not crashes and not links and not byzantine:
            return None
        magnitude = 0.0
        if byzantine:
            from repro.topology.properties import diameter
            from repro.variants.ftgcs import ftgcs_rejection_window

            # Corrupt estimates six honest-offset windows out: even the
            # shallowest per-message draw (magnitude/4, the equivocation
            # floor) lands far past any legitimate value, so the ftgcs
            # filter always rejects it while an unfiltered victim's rate
            # rule stalls until it lags by well over the certified bound.
            # Recomputed from the *built* topology (like the filter's own
            # window) so shrinking stays consistent.
            magnitude = 6.0 * ftgcs_rejection_window(
                self.build_params(), diameter(topology)
            )
        schedule = FaultSchedule(seed=self.seed, byzantine_magnitude=magnitude)
        for idx, at, until in crashes:
            schedule.crash(topology.nodes[idx], at=at, until=until)
        for u, v, at, until in links:
            schedule.link_down(
                topology.nodes[u], topology.nodes[v], at=at, until=until
            )
        for idx, at, until in byzantine:
            schedule.byzantine(topology.nodes[idx], at=at, until=until)
        return schedule

    def build_topology_schedule(self, topology: Topology):
        """Compile churn events to a ``TopologySchedule`` (or None if empty).

        Index-based and deterministically pruned exactly like
        :meth:`build_faults`: outages on edges the (possibly shrunk)
        topology no longer has, and absences of nodes it no longer has,
        are dropped rather than rejected.
        """
        from repro.topology.dynamic import TopologySchedule

        n = len(topology.nodes)
        outages = [
            e
            for e in self.edge_outages
            if e[0] < n
            and e[1] < n
            and topology.nodes[e[1]] in topology.neighbors(topology.nodes[e[0]])
        ]
        absences = [e for e in self.node_absences if e[0] < n]
        if not outages and not absences:
            return None
        schedule = TopologySchedule(seed=self.seed)
        for u, v, at, until in outages:
            schedule.edge_disappears(
                topology.nodes[u], topology.nodes[v], at=at, until=until
            )
        for idx, at, until in absences:
            schedule.leaves(topology.nodes[idx], at=at, until=until)
        return schedule

    def label(self) -> str:
        tag = "+faults" if self.has_faults else ""
        if self.has_topology_schedule:
            tag += "+dyn"
        if self.has_byzantine:
            tag += "+byz"
        return (
            f"cert:{self.algorithm}:{self.topology_kind}-{self.nodes}"
            f":{self.drift_kind}/{self.delay_kind}:s{self.seed}{tag}"
        )

    def build_spec(self) -> ExecutionSpec:
        """Compile to a concrete, digestable, monitor-carrying spec."""
        topology = self.build_topology()
        params = self.build_params()
        return ExecutionSpec(
            topology=topology,
            algorithm=self._build_algorithm(params, topology),
            drift=self._build_drift(topology),
            delay=self._build_delay(),
            horizon=self.horizon,
            seed=self.seed,
            check_invariants=True,
            params=params,
            faults=self.build_faults(topology),
            topology_schedule=self.build_topology_schedule(topology),
            label=self.label(),
        )

    def diameter(self) -> int:
        from repro.topology.properties import diameter

        return diameter(self.build_topology())

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "topology_kind": self.topology_kind,
            "nodes": self.nodes,
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "delay_bound": self.delay_bound,
            "horizon": self.horizon,
            "seed": self.seed,
            "drift_kind": self.drift_kind,
            "delay_kind": self.delay_kind,
            "crash_events": [list(e) for e in self.crash_events],
            "link_events": [list(e) for e in self.link_events],
            "edge_outages": [list(e) for e in self.edge_outages],
            "node_absences": [list(e) for e in self.node_absences],
            "byzantine_events": [list(e) for e in self.byzantine_events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CertScenario":
        return cls(
            topology_kind=str(data["topology_kind"]),
            nodes=int(data["nodes"]),
            algorithm=str(data["algorithm"]),
            epsilon=float(data["epsilon"]),
            delay_bound=float(data["delay_bound"]),
            horizon=float(data["horizon"]),
            seed=int(data["seed"]),
            drift_kind=str(data["drift_kind"]),
            delay_kind=str(data["delay_kind"]),
            crash_events=tuple(
                (int(n), float(at), None if until is None else float(until))
                for n, at, until in data.get("crash_events", [])
            ),
            link_events=tuple(
                (int(u), int(v), float(at), None if until is None else float(until))
                for u, v, at, until in data.get("link_events", [])
            ),
            edge_outages=tuple(
                (int(u), int(v), float(at), None if until is None else float(until))
                for u, v, at, until in data.get("edge_outages", [])
            ),
            node_absences=tuple(
                (int(n), float(at), None if until is None else float(until))
                for n, at, until in data.get("node_absences", [])
            ),
            byzantine_events=tuple(
                (int(n), float(at), None if until is None else float(until))
                for n, at, until in data.get("byzantine_events", [])
            ),
        )

    def canonical_json(self) -> str:
        """Compact, key-sorted JSON — the scenario's canonical identity."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def with_changes(self, **changes) -> "CertScenario":
        return replace(self, **changes)
